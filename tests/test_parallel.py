"""Parallel campaign executor: serial≡parallel byte-identity, stop/resume
draining, and the SIGKILL kill-matrix (worker and parent)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from polygraphmr.cache import PLANE_PREFIX
from polygraphmr.campaign import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    shard_journals,
    shard_name,
    verify_campaign,
)
from polygraphmr.errors import CampaignError
from polygraphmr.faults import corrupt_file_truncate
from polygraphmr.metrics import METRICS_NAME, load_registry, metrics_shards
from polygraphmr.parallel import ParallelCampaignRunner, trial_owner, worker_assignments

N_TRIALS = 16


def _shm_entries() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(PLANE_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


def _config(cache, **overrides) -> CampaignConfig:
    base = dict(cache=str(cache), n_trials=N_TRIALS, seed=7, timeout_s=60.0)
    base.update(overrides)
    return CampaignConfig(**base)


def _fake_trial(spec):
    return {"model": spec.model, "kind": spec.kind}


class TestAssignment:
    def test_every_trial_owned_exactly_once(self):
        for workers in (1, 2, 3, 4, 7):
            assignments = worker_assignments(N_TRIALS, 4, workers)
            flat = sorted(i for idxs in assignments.values() for i in idxs)
            assert flat == list(range(N_TRIALS))

    def test_all_trials_of_a_model_share_one_worker(self):
        n_models = 4
        for workers in (2, 3, 4):
            for index in range(N_TRIALS):
                same_model = index % n_models
                assert trial_owner(index, n_models, workers) == trial_owner(
                    same_model, n_models, workers
                )

    def test_assignments_are_in_increasing_order_and_skip_done(self):
        assignments = worker_assignments(N_TRIALS, 4, 2, done={0, 5, 9})
        for idxs in assignments.values():
            assert idxs == sorted(idxs)
            assert not {0, 5, 9} & set(idxs)

    def test_bad_worker_count_is_refused(self, tmp_path):
        with pytest.raises(CampaignError) as exc_info:
            ParallelCampaignRunner(_config(tmp_path), tmp_path / "out", workers=0)
        assert exc_info.value.reason == "bad-workers"


class TestSerialParallelEquivalence:
    def test_merged_journal_checkpoint_and_summary_match_serial(self, multi_model_cache, tmp_path):
        """The tentpole guarantee: workers=1 and workers=4 produce the same
        bytes on disk as a plain serial run — journal and final checkpoint —
        and the same summary counts."""

        config = _config(multi_model_cache)
        serial = CampaignRunner(config, tmp_path / "serial").run()
        one = ParallelCampaignRunner(config, tmp_path / "w1", workers=1).run()
        four = ParallelCampaignRunner(config, tmp_path / "w4", workers=4).run()

        reference = (tmp_path / "serial" / JOURNAL_NAME).read_bytes()
        assert (tmp_path / "w1" / JOURNAL_NAME).read_bytes() == reference
        assert (tmp_path / "w4" / JOURNAL_NAME).read_bytes() == reference
        reference_ckpt = (tmp_path / "serial" / CHECKPOINT_NAME).read_bytes()
        assert (tmp_path / "w1" / CHECKPOINT_NAME).read_bytes() == reference_ckpt
        assert (tmp_path / "w4" / CHECKPOINT_NAME).read_bytes() == reference_ckpt

        for key in ("n_trials", "completed", "outcomes", "breakers"):
            assert one[key] == serial[key], key
            assert four[key] == serial[key], key
        assert four["failed_workers"] == []
        # shards were folded into the canonical journal and removed
        assert not shard_journals(tmp_path / "w4")
        # the acceptance criterion: the 4-worker merged journal verifies —
        # the re-linked chain, checkpoint-sealed head, and replay all hold
        for out in ("serial", "w1", "w4"):
            audit = verify_campaign(tmp_path / out)
            assert audit["ok"], (out, audit["first_bad"])
            assert audit["complete"] and audit["trials"] == N_TRIALS

    def test_scenario_sweep_is_byte_identical_across_workers(self, multi_model_cache, tmp_path):
        """A 3-scenario sweep inherits the guarantee unchanged: the scenario
        draw lives in derive_trial_spec, so workers=4 produces the same
        journal and checkpoint bytes as a serial run, and the merged
        directory still verifies exit 0."""

        from polygraphmr.campaign import scenarios_config_field
        from polygraphmr.scenarios import resolve_scenarios

        config = _config(
            multi_model_cache,
            n_trials=12,
            scenarios=scenarios_config_field(
                resolve_scenarios(["channel-bitflip-10pct", "quantize-4bit", "stuck-at-zero-1pct"])
            ),
        )
        serial = CampaignRunner(config, tmp_path / "serial").run()
        four = ParallelCampaignRunner(config, tmp_path / "w4", workers=4).run()

        assert (tmp_path / "w4" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "serial" / JOURNAL_NAME
        ).read_bytes()
        assert (tmp_path / "w4" / CHECKPOINT_NAME).read_bytes() == (
            tmp_path / "serial" / CHECKPOINT_NAME
        ).read_bytes()
        assert four["completed"] == serial["completed"] == 12
        audit = verify_campaign(tmp_path / "w4")
        assert audit["exit_code"] == 0, audit["first_bad"]
        specs = [
            r["spec"]
            for r in CampaignJournal(tmp_path / "w4" / JOURNAL_NAME).trial_records().values()
        ]
        assert all(s.get("scenario") and s.get("scenario_sha256") for s in specs)

    def test_equivalence_survives_tripping_breakers(self, multi_model_cache, tmp_path):
        """Corrupt one member of one model so its circuit breaker trips
        mid-campaign: breaker evolution is per-model, so the parallel journal
        must still match the serial one byte for byte."""

        victim_dir = multi_model_cache / "net-01"
        for split in ("val", "test"):
            target = victim_dir / f"pp-Gamma_2.{split}.probs.npz"
            corrupt_file_truncate(target, target, keep_fraction=0.2, seed=5)
        config = _config(multi_model_cache, failure_threshold=2, cooldown_ticks=1)

        serial = CampaignRunner(config, tmp_path / "serial").run()
        four = ParallelCampaignRunner(config, tmp_path / "w4", workers=4).run()

        assert serial["breakers"], "stressor failed to trip any breaker"
        assert four["breakers"] == serial["breakers"]
        assert (tmp_path / "w4" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "serial" / JOURNAL_NAME
        ).read_bytes()

    def test_metrics_stay_out_of_band_of_the_byte_identity(self, tmp_path, bare_cache):
        """Metrics collection (always on) must never leak into journal or
        checkpoint bytes: serial and 4-worker runs stay byte-identical while
        each also writes a merged ``metrics.json`` and cleans up its metric
        shards."""

        cache = bare_cache("a", "b", "c", "d")
        config = _config(cache)
        CampaignRunner(config, tmp_path / "serial", trial_fn=_fake_trial).run()
        ParallelCampaignRunner(
            config, tmp_path / "w4", workers=4, trial_fn=_fake_trial
        ).run()

        assert (tmp_path / "w4" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "serial" / JOURNAL_NAME
        ).read_bytes()
        assert (tmp_path / "w4" / CHECKPOINT_NAME).read_bytes() == (
            tmp_path / "serial" / CHECKPOINT_NAME
        ).read_bytes()

        for out in (tmp_path / "serial", tmp_path / "w4"):
            merged = load_registry(out / METRICS_NAME)
            assert merged is not None
            assert merged.counter_total("campaign_trials_total") == N_TRIALS
            hist = merged.histogram_for("campaign_trial_seconds")
            assert hist is not None and hist.count == N_TRIALS
            assert not metrics_shards(out)  # shards folded then deleted
        parallel_metrics = load_registry(tmp_path / "w4" / METRICS_NAME)
        assert parallel_metrics.gauge_value("campaign_workers") == 4.0

    def test_more_workers_than_models_is_clamped(self, tmp_path, bare_cache):
        cache = bare_cache("a", "b")
        config = _config(cache, n_trials=6)
        summary = ParallelCampaignRunner(
            config, tmp_path / "out", workers=5, trial_fn=_fake_trial
        ).run()
        assert summary["completed"] == 6
        assert summary["workers"] == 2  # one worker per model is the maximum useful

    def test_fresh_parallel_run_refuses_existing_journal(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = _config(cache, n_trials=2)
        ParallelCampaignRunner(config, tmp_path / "out", workers=2, trial_fn=_fake_trial).run()
        with pytest.raises(CampaignError) as exc_info:
            ParallelCampaignRunner(config, tmp_path / "out", workers=2, trial_fn=_fake_trial).run()
        assert exc_info.value.reason == "journal-exists"


class TestStopAndResume:
    def test_request_stop_drains_and_resume_completes(self, multi_model_cache, tmp_path):
        config = _config(multi_model_cache, trial_sleep_s=0.1)
        CampaignRunner(config, tmp_path / "serial").run()

        shm_before = _shm_entries()
        # per-trial drain contract: pin the per-trial loop (the batched
        # runner amortizes trial_sleep_s, finishing before the timer fires;
        # its window-abort stop path is covered in test_batching.py)
        runner = ParallelCampaignRunner(config, tmp_path / "par", workers=4, use_batch=False)
        threading.Timer(0.3, runner.request_stop).start()
        partial = runner.run()
        assert partial["stopped_early"]
        assert partial["failed_workers"] == []  # SIGTERM drain is a clean exit
        assert _shm_entries() == shm_before  # no plane segment outlives the run
        assert 0 < partial["completed"] < N_TRIALS
        assert shard_journals(tmp_path / "par")  # shards kept for resume

        # resume under a *different* worker count — parallelism is an
        # execution detail, not part of the campaign's identity
        resumed = ParallelCampaignRunner(config, tmp_path / "par", workers=2).run(resume=True)
        assert resumed["completed"] == N_TRIALS
        assert not resumed["stopped_early"]
        assert (tmp_path / "par" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "serial" / JOURNAL_NAME
        ).read_bytes()
        assert (tmp_path / "par" / CHECKPOINT_NAME).read_bytes() == (
            tmp_path / "serial" / CHECKPOINT_NAME
        ).read_bytes()
        assert verify_campaign(tmp_path / "par")["ok"]

    def test_serial_runner_resumes_and_merges_a_parallel_run(self, multi_model_cache, tmp_path):
        config = _config(multi_model_cache, trial_sleep_s=0.1)
        CampaignRunner(config, tmp_path / "serial").run()

        runner = ParallelCampaignRunner(config, tmp_path / "par", workers=4, use_batch=False)
        threading.Timer(0.3, runner.request_stop).start()
        assert runner.run()["stopped_early"]

        summary = CampaignRunner(config, tmp_path / "par").run(resume=True)
        assert summary["completed"] == N_TRIALS
        assert not shard_journals(tmp_path / "par")
        assert (tmp_path / "par" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "serial" / JOURNAL_NAME
        ).read_bytes()

    def test_torn_shard_tail_is_repaired_on_resume(self, multi_model_cache, tmp_path):
        config = _config(multi_model_cache, trial_sleep_s=0.05)
        runner = ParallelCampaignRunner(config, tmp_path / "par", workers=4)
        threading.Timer(0.2, runner.request_stop).start()
        runner.run()
        shard = tmp_path / "par" / shard_name(0)
        with open(shard, "ab") as fh:
            fh.write(b'{"type":"trial","index":99,"torn')  # SIGKILL mid-append

        resumed = ParallelCampaignRunner(config, tmp_path / "par", workers=4).run(resume=True)
        assert resumed["completed"] == N_TRIALS
        trials = CampaignJournal(tmp_path / "par" / JOURNAL_NAME).trial_records()
        assert sorted(trials) == list(range(N_TRIALS))  # exactly once each


def _child_pids(parent_pid: int) -> list[int]:
    """Direct children of ``parent_pid`` via /proc (ppid is the 4th stat
    field, counted after the parenthesised comm)."""

    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue
        fields = stat.rsplit(")", 1)[-1].split()
        if fields and int(fields[1]) == parent_pid:
            children.append(int(entry))
    return children


def _wait_gone(pids: list[int], timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    for pid in pids:
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"pid {pid} still alive after {timeout}s")


class TestKillMatrix:
    """SIGKILL a random worker, and separately the parent, mid-campaign;
    ``--resume`` must complete with every index journalled exactly once."""

    def _cli(self, cache: Path, out: Path, *extra: str) -> list[str]:
        return [
            sys.executable,
            "-m",
            "polygraphmr.campaign",
            "--cache",
            str(cache),
            "--out",
            str(out),
            "--trials",
            str(N_TRIALS),
            "--seed",
            "7",
            "--workers",
            "4",
            "--trial-sleep",
            "0.15",
            *extra,
        ]

    def _env(self) -> dict:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _wait_for_progress(self, out: Path, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if any(j.path.stat().st_size > 0 for j in shard_journals(out).values()):
                return
            time.sleep(0.05)
        raise AssertionError("no worker journalled a trial in time")

    @pytest.mark.parametrize("victim", ["worker", "parent"])
    def test_sigkill_then_resume_journals_every_index_once(
        self, victim, multi_model_cache, tmp_path
    ):
        out = tmp_path / "out"
        shm_before = _shm_entries()
        # per-trial loop pinned: batching flushes whole windows, so a
        # 4-trial assignment journals in one burst and the kill races run
        # completion; the mid-batch kill has its own test below
        proc = subprocess.Popen(
            self._cli(multi_model_cache, out, "--no-batch"),
            env=self._env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            start_new_session=True,  # survives pytest's process group
        )
        try:
            self._wait_for_progress(out)
            workers = _child_pids(proc.pid)
            assert workers, "campaign spawned no worker processes"
            if victim == "worker":
                os.kill(workers[len(workers) // 2], signal.SIGKILL)
                proc.wait(timeout=120)
                # a dead worker leaves its trials unfinished: incomplete run
                assert proc.returncode == 3
            else:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=120)
                # orphaned workers drain their assignments and exit on their own
                _wait_gone(workers)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.stdout.close()
            proc.stderr.close()

        # the plane segment is unlinked before any fork, so even SIGKILL
        # mid-campaign cannot strand a /dev/shm entry
        assert _shm_entries() == shm_before

        resume = subprocess.run(
            self._cli(multi_model_cache, out, "--resume", "--no-batch"),
            env=self._env(),
            capture_output=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr.decode()
        summary = json.loads(resume.stdout)
        assert summary["completed"] == N_TRIALS

        trials = CampaignJournal(out / JOURNAL_NAME).trial_records()
        assert sorted(trials) == list(range(N_TRIALS))
        assert not shard_journals(out)
        raw = (out / JOURNAL_NAME).read_text().splitlines()
        indices = [json.loads(line)["index"] for line in raw if '"trial"' in line]
        assert indices == sorted(set(indices)), "an index was journalled twice"
        assert _shm_entries() == shm_before

    @pytest.mark.parametrize("victim", ["worker", "parent"])
    def test_sigkill_mid_batch_then_resume_matches_serial(
        self, victim, multi_model_cache, tmp_path
    ):
        """The batched variant of the kill matrix: --batch-size 2 keeps two
        window flushes in flight per worker, so the SIGKILL lands between
        (or inside) batches; --resume must complete the campaign to bytes
        identical to an uninterrupted serial run, and verify exit 0."""

        serial_out = tmp_path / "serial"
        reference = subprocess.run(
            self._cli(multi_model_cache, serial_out, "--workers", "1", "--no-batch"),
            env=self._env(),
            capture_output=True,
            timeout=300,
        )
        assert reference.returncode == 0, reference.stderr.decode()

        out = tmp_path / "out"
        proc = subprocess.Popen(
            self._cli(multi_model_cache, out, "--batch-size", "2"),
            env=self._env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            start_new_session=True,
        )
        try:
            self._wait_for_progress(out)
            workers = _child_pids(proc.pid)
            assert workers, "campaign spawned no worker processes"
            if victim == "worker":
                os.kill(workers[len(workers) // 2], signal.SIGKILL)
                proc.wait(timeout=120)
            else:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=120)
                _wait_gone(workers)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.stdout.close()
            proc.stderr.close()

        resume = subprocess.run(
            self._cli(multi_model_cache, out, "--resume", "--batch-size", "2"),
            env=self._env(),
            capture_output=True,
            timeout=300,
        )
        assert resume.returncode == 0, resume.stderr.decode()
        summary = json.loads(resume.stdout)
        assert summary["completed"] == N_TRIALS
        assert (out / JOURNAL_NAME).read_bytes() == (serial_out / JOURNAL_NAME).read_bytes()
        assert (out / CHECKPOINT_NAME).read_bytes() == (
            serial_out / CHECKPOINT_NAME
        ).read_bytes()
        assert verify_campaign(out)["exit_code"] == 0
