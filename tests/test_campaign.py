"""Campaign runner: journal durability, checkpoints, watchdog, and the
kill/resume determinism guarantee."""

from __future__ import annotations

import json
import time

import pytest

from polygraphmr.campaign import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    TrialExecutor,
    TrialSpec,
    config_from_dict,
    config_genesis,
    derive_trial_spec,
    main,
    read_checkpoint,
    report_campaign,
    scenarios_config_field,
    verify_campaign,
    write_checkpoint,
)
from polygraphmr.errors import CampaignError


def _fake_trial(spec):
    return {"model": spec.model, "kind": spec.kind}


class TestTrialDerivation:
    def test_same_seed_and_index_derive_the_same_spec(self):
        config = CampaignConfig(cache="x", seed=11)
        models = ["a", "b", "c"]
        for index in range(6):
            assert derive_trial_spec(config, models, index) == derive_trial_spec(config, models, index)

    def test_specs_vary_across_indices_and_cycle_models(self):
        config = CampaignConfig(cache="x", seed=11)
        models = ["a", "b"]
        specs = [derive_trial_spec(config, models, i) for i in range(8)]
        assert [s.model for s in specs] == ["a", "b"] * 4
        assert len({s.fault_seed for s in specs}) == 8
        assert {s.kind for s in specs} <= {"bitflip", "gaussian"}

    def test_no_models_raises(self):
        with pytest.raises(CampaignError) as exc_info:
            derive_trial_spec(CampaignConfig(cache="x"), [], 0)
        assert exc_info.value.reason == "no-models"


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header", "n": 1})
        journal.append({"type": "trial", "index": 0})
        records = journal.read()
        assert [r["type"] for r in records] == ["header", "trial"]
        assert "sha256" not in records[0]  # checksum is verified, then stripped

    def test_torn_final_line_is_dropped_and_repaired(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header"})
        journal.append({"type": "trial", "index": 0})
        intact_size = journal.path.stat().st_size
        with open(journal.path, "ab") as fh:
            fh.write(b'{"type":"trial","index":1,"torn')  # crash mid-append

        assert len(journal.read()) == 2  # reading tolerates the torn tail
        records = journal.repair_tail()
        assert len(records) == 2
        assert journal.path.stat().st_size == intact_size
        journal.append({"type": "trial", "index": 1})  # appends land on a fresh line
        assert [r.get("index") for r in journal.read()] == [None, 0, 1]

    def test_flipped_byte_in_final_line_is_treated_as_torn(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header"})
        journal.append({"type": "trial", "index": 0})
        raw = bytearray(journal.path.read_bytes())
        raw[-10] ^= 0xFF
        journal.path.write_bytes(bytes(raw))
        assert len(journal.read()) == 1  # the damaged record is discounted

    def test_damage_to_committed_history_raises(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header"})
        journal.append({"type": "trial", "index": 0})
        journal.append({"type": "trial", "index": 1})
        lines = journal.path.read_bytes().splitlines(keepends=True)
        assert b'"index": 0' in lines[1]  # sealed JSON uses default separators
        tampered = lines[0] + lines[1].replace(b'"index": 0', b'"index": 9') + lines[2]
        journal.path.write_bytes(tampered)
        with pytest.raises(CampaignError) as exc_info:
            journal.read()
        assert exc_info.value.reason == "journal-bad-checksum"

    def test_missing_file_reads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").read() == []


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        p = tmp_path / "checkpoint.json"
        write_checkpoint(p, {"completed": 3, "next_index": 3})
        assert read_checkpoint(p) == {"completed": 3, "next_index": 3}
        assert not p.with_name(p.name + ".tmp").exists()  # replace was atomic

    def test_corrupt_checkpoint_reads_none(self, tmp_path):
        p = tmp_path / "checkpoint.json"
        write_checkpoint(p, {"completed": 3})
        p.write_text(p.read_text().replace("3", "4"))  # checksum now wrong
        assert read_checkpoint(p) is None
        assert read_checkpoint(tmp_path / "absent.json") is None
        (tmp_path / "garbage.json").write_text("not json{")
        assert read_checkpoint(tmp_path / "garbage.json") is None


class TestRunner:
    def test_fresh_run_journals_header_and_every_trial(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=4, seed=3)
        runner = CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial)
        summary = runner.run()

        assert summary["completed"] == 4
        assert summary["new_trials"] == 4
        assert not summary["stopped_early"]
        records = runner.journal.read()
        assert records[0]["type"] == "header"
        assert records[0]["config"] == config.to_dict()
        assert [r["index"] for r in records[1:]] == [0, 1, 2, 3]
        assert all(r["outcome"] == OUTCOME_OK for r in records[1:])
        checkpoint = read_checkpoint(tmp_path / "out" / CHECKPOINT_NAME)
        assert checkpoint["completed"] == 4
        assert checkpoint["next_index"] == 4

    def test_fresh_run_refuses_existing_journal(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=2)
        CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run()
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run()
        assert exc_info.value.reason == "journal-exists"

    def test_resume_refuses_config_mismatch(self, tmp_path, bare_cache):
        cache = bare_cache()
        CampaignRunner(
            CampaignConfig(cache=str(cache), n_trials=2, seed=1), tmp_path / "out", trial_fn=_fake_trial
        ).run()
        other = CampaignConfig(cache=str(cache), n_trials=2, seed=2)
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(other, tmp_path / "out", trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "config-mismatch"

    def test_resume_refuses_journal_behind_checkpoint(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=3)
        runner = CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial)
        runner.run(max_new_trials=2)
        # lose a committed trial record but keep the checkpoint
        lines = runner.journal.path.read_bytes().splitlines(keepends=True)
        runner.journal.path.write_bytes(b"".join(lines[:-1]))
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-behind-checkpoint"

    def test_trial_error_is_an_outcome_not_a_crash(self, tmp_path, bare_cache):
        cache = bare_cache()

        def flaky(spec):
            if spec.index == 1:
                raise RuntimeError("injected")
            return _fake_trial(spec)

        config = CampaignConfig(cache=str(cache), n_trials=3)
        summary = CampaignRunner(config, tmp_path / "out", trial_fn=flaky).run()
        assert summary["completed"] == 3
        assert summary["outcomes"][OUTCOME_ERROR] == 1
        records = CampaignJournal(tmp_path / "out" / JOURNAL_NAME).trial_records()
        assert "injected" in records[1]["error"]
        assert "result" not in records[1]

    def test_watchdog_times_out_a_hung_trial(self, tmp_path, bare_cache):
        cache = bare_cache()

        def hangs(spec):
            if spec.index == 1:
                time.sleep(30)
            return _fake_trial(spec)

        config = CampaignConfig(cache=str(cache), n_trials=3, timeout_s=0.2)
        summary = CampaignRunner(config, tmp_path / "out", trial_fn=hangs).run()
        assert summary["completed"] == 3  # the sweep moved on past the hang
        records = CampaignJournal(tmp_path / "out" / JOURNAL_NAME).trial_records()
        assert records[1]["outcome"] == OUTCOME_TIMEOUT
        assert records[0]["outcome"] == records[2]["outcome"] == OUTCOME_OK

    def test_request_stop_finishes_in_flight_trial(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=5)
        runner = CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial)

        seen = []

        def stopping(spec):
            seen.append(spec.index)
            if spec.index == 1:
                runner.request_stop()  # SIGTERM arrives mid-trial
            return _fake_trial(spec)

        runner.executor._trial_fn = stopping
        summary = runner.run()
        assert seen == [0, 1]  # trial 1 completed, trial 2 never started
        assert summary["completed"] == 2
        assert summary["stopped_early"]
        assert len(runner.journal.trial_records()) == 2


class TestKillResumeDeterminism:
    N = 4

    def _config(self, cache) -> CampaignConfig:
        return CampaignConfig(cache=str(cache), n_trials=self.N, seed=7, timeout_s=60.0)

    def test_resumed_campaign_matches_uninterrupted_run(self, synthetic_cache, tmp_path):
        """The acceptance criterion: kill after 2 trials, resume, and every
        per-trial record (spec, outcome, result, breaker state) must equal the
        uninterrupted run's."""

        config = self._config(synthetic_cache)

        straight = CampaignRunner(config, tmp_path / "straight")
        assert straight.run()["completed"] == self.N

        interrupted = CampaignRunner(config, tmp_path / "killed")
        partial = interrupted.run(max_new_trials=2)
        assert partial["completed"] == 2
        assert partial["stopped_early"]

        resumed = CampaignRunner(config, tmp_path / "killed")
        summary = resumed.run(resume=True)
        assert summary["completed"] == self.N
        assert summary["new_trials"] == self.N - 2

        # journal records carry no wall-clock data (v2), so the resumed
        # journal is *byte-identical* to the uninterrupted one
        assert (tmp_path / "straight" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "killed" / JOURNAL_NAME
        ).read_bytes()
        a = CampaignJournal(tmp_path / "straight" / JOURNAL_NAME).trial_records()
        assert sorted(a) == list(range(self.N))

    def test_resume_with_torn_tail(self, synthetic_cache, tmp_path):
        config = self._config(synthetic_cache)
        runner = CampaignRunner(config, tmp_path / "out")
        runner.run(max_new_trials=2)
        with open(runner.journal.path, "ab") as fh:
            fh.write(b'{"type":"trial","index":2,"outcome":"ok"')  # torn mid-append

        resumed = CampaignRunner(config, tmp_path / "out")
        summary = resumed.run(resume=True)
        assert summary["completed"] == self.N
        trials = resumed.journal.trial_records()
        assert sorted(trials) == list(range(self.N))

    def test_resume_of_a_complete_campaign_is_a_no_op(self, synthetic_cache, tmp_path):
        config = self._config(synthetic_cache)
        CampaignRunner(config, tmp_path / "out").run()
        before = (tmp_path / "out" / JOURNAL_NAME).read_bytes()
        summary = CampaignRunner(config, tmp_path / "out").run(resume=True)
        assert summary["new_trials"] == 0
        assert summary["completed"] == self.N
        assert (tmp_path / "out" / JOURNAL_NAME).read_bytes() == before


class TestCLI:
    def test_synthetic_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "out"
        status = main(
            [
                "--synthetic",
                str(tmp_path / "cache"),
                "--out",
                str(out),
                "--trials",
                "2",
                "--seed",
                "3",
            ]
        )
        assert status == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["completed"] == 2
        trials = CampaignJournal(out / JOURNAL_NAME).trial_records()
        assert sorted(trials) == [0, 1]
        assert all(r["outcome"] == OUTCOME_OK for r in trials.values())

    def test_refusing_an_existing_journal_exits_2(self, tmp_path, capsys):
        args = ["--synthetic", str(tmp_path / "cache"), "--out", str(tmp_path / "out"), "--trials", "1"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2  # no --resume: refuse, don't clobber
        assert "journal-exists" in capsys.readouterr().err

    def test_audit_json_lands_in_header(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.json"
        audit_path.write_text(json.dumps({"totals": {"valid": 1, "corrupt": 2}}))
        out = tmp_path / "out"
        status = main(
            [
                "--synthetic",
                str(tmp_path / "cache"),
                "--out",
                str(out),
                "--trials",
                "1",
                "--audit-json",
                str(audit_path),
            ]
        )
        assert status == 0
        capsys.readouterr()
        header = CampaignJournal(out / JOURNAL_NAME).read()[0]
        assert header["audit"] == {"valid": 1, "corrupt": 2}


SWEEP = ("channel-bitflip-10pct", "quantize-4bit", "stuck-at-zero-1pct")


def _scenario_config(cache, **overrides) -> CampaignConfig:
    from polygraphmr.scenarios import resolve_scenarios

    kwargs = dict(
        cache=str(cache),
        n_trials=9,
        seed=7,
        scenarios=scenarios_config_field(resolve_scenarios(SWEEP)),
    )
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


class TestScenarioCampaign:
    def test_derivation_draws_scenarios_and_pins_hashes(self, synthetic_cache):
        config = _scenario_config(synthetic_cache)
        specs = [derive_trial_spec(config, ["m"], i) for i in range(24)]
        names = {s.scenario for s in specs}
        assert names == set(SWEEP)  # 24 draws over 3 scenarios hit them all
        by_name = {s.name: s for s in config.scenario_objects()}
        for spec in specs:
            assert spec.scenario_sha256 == by_name[spec.scenario].config_hash()
            assert spec.kind == by_name[spec.scenario].kind
            assert derive_trial_spec(config, ["m"], spec.index) == spec

    def test_legacy_spec_journals_without_scenario_keys(self, synthetic_cache):
        legacy = CampaignConfig(cache=str(synthetic_cache), n_trials=2, seed=7)
        spec = derive_trial_spec(legacy, ["m"], 0)
        assert "scenario" not in spec.to_dict()
        assert "scenarios" not in legacy.to_dict()  # header bytes unchanged too

    def test_scenarios_change_the_chain_genesis(self, synthetic_cache):
        legacy = CampaignConfig(cache=str(synthetic_cache), n_trials=2, seed=7)
        swept = _scenario_config(synthetic_cache, n_trials=2)
        assert config_genesis(legacy) != config_genesis(swept)

    def test_config_round_trips_through_journalled_dict(self, synthetic_cache):
        config = _scenario_config(synthetic_cache)
        assert config_from_dict(config.to_dict()) == config

    def test_sweep_runs_resumes_verifies_and_reports(self, synthetic_cache, tmp_path):
        """The acceptance criterion, in-process: a 3-scenario sweep killed
        mid-run resumes byte-identically, verifies exit 0, and its report's
        per-scenario trial counts reconcile exactly with the journal."""

        config = _scenario_config(synthetic_cache)

        straight = CampaignRunner(config, tmp_path / "straight")
        assert straight.run()["completed"] == config.n_trials

        interrupted = CampaignRunner(config, tmp_path / "killed")
        assert interrupted.run(max_new_trials=4)["stopped_early"]
        resumed = CampaignRunner(config, tmp_path / "killed")
        assert resumed.run(resume=True)["completed"] == config.n_trials
        assert (tmp_path / "straight" / JOURNAL_NAME).read_bytes() == (
            tmp_path / "killed" / JOURNAL_NAME
        ).read_bytes()

        verdict = verify_campaign(tmp_path / "killed")
        assert verdict["exit_code"] == 0, verdict

        report = report_campaign(tmp_path / "killed")
        trials = CampaignJournal(tmp_path / "killed" / JOURNAL_NAME).trial_records()
        assert set(report["scenarios"]) <= set(SWEEP)
        assert sum(row["trials"] for row in report["scenarios"].values()) == len(trials)
        for name, row in report["scenarios"].items():
            assert row["trials"] == sum(
                1 for r in trials.values() if r["spec"]["scenario"] == name
            )
            assert row["scenario_sha256"]
            assert 0.0 <= row["survival_rate"] <= 1.0

    def test_executor_refuses_a_scenario_not_in_the_config(self, synthetic_cache):
        config = _scenario_config(synthetic_cache)
        executor = TrialExecutor(config, ["tinynet"])
        spec = derive_trial_spec(config, ["tinynet"], 0)
        rogue = TrialSpec(
            index=0,
            model="tinynet",
            kind=spec.kind,
            rate=spec.rate,
            sigma=spec.sigma,
            fault_seed=spec.fault_seed,
            scenario="not-configured",
            scenario_sha256="0" * 64,
        )
        with pytest.raises(CampaignError) as exc_info:
            executor._run_trial(rogue)
        assert exc_info.value.reason == "scenario-mismatch"
        tampered = TrialSpec(
            index=0,
            model="tinynet",
            kind=spec.kind,
            rate=spec.rate,
            sigma=spec.sigma,
            fault_seed=spec.fault_seed,
            scenario=spec.scenario,
            scenario_sha256="0" * 64,
        )
        with pytest.raises(CampaignError) as exc_info:
            executor._run_trial(tampered)
        assert exc_info.value.reason == "scenario-mismatch"

    def test_verify_catches_a_tampered_scenario_hash(self, synthetic_cache, tmp_path):
        from polygraphmr.journal import seal_record

        config = _scenario_config(synthetic_cache, n_trials=3)
        runner = CampaignRunner(config, tmp_path / "out")
        runner.run()
        assert verify_campaign(tmp_path / "out")["exit_code"] == 0
        journal = runner.journal.path
        lines = journal.read_bytes().splitlines(keepends=True)
        # re-seal trial 0 with a swapped scenario hash: the record's own seal
        # is valid but the splice breaks the chain at the next record
        target = json.loads(lines[1])
        prev = target["prev"]
        target["spec"]["scenario_sha256"] = "f" * 64
        line, _ = seal_record(target, prev)
        journal.write_bytes(lines[0] + (line + "\n").encode() + b"".join(lines[2:]))
        assert verify_campaign(tmp_path / "out")["exit_code"] != 0

    def test_report_on_legacy_campaign_groups_by_kind(self, synthetic_cache, tmp_path):
        config = CampaignConfig(cache=str(synthetic_cache), n_trials=4, seed=7)
        CampaignRunner(config, tmp_path / "out").run()
        report = report_campaign(tmp_path / "out")
        assert all(name.startswith("kind:") for name in report["scenarios"])
        assert sum(r["trials"] for r in report["scenarios"].values()) == 4

    def test_cli_scenario_sweep_and_report(self, tmp_path, capsys):
        out = tmp_path / "out"
        status = main(
            [
                "--synthetic",
                str(tmp_path / "cache"),
                "--out",
                str(out),
                "--trials",
                "6",
                "--seed",
                "5",
                "--scenarios",
                ",".join(SWEEP),
            ]
        )
        assert status == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["completed"] == 6
        header = CampaignJournal(out / JOURNAL_NAME).read()[0]
        assert [s["name"] for s in header["config"]["scenarios"]] == list(SWEEP)

        assert main(["report", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "polygraphmr/campaign-report/v1"
        assert sum(r["trials"] for r in report["scenarios"].values()) == 6
        assert main(["report", str(out)]) == 0
        assert "survival" in capsys.readouterr().out

    def test_cli_unknown_scenario_exits_2(self, tmp_path, capsys):
        status = main(
            [
                "--synthetic",
                str(tmp_path / "cache"),
                "--out",
                str(tmp_path / "out"),
                "--scenarios",
                "definitely-not-a-scenario",
            ]
        )
        assert status == 2
        assert "unknown-scenario" in capsys.readouterr().err

    def test_report_without_journal_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "empty")]) == 2
        assert "journal-no-header" in capsys.readouterr().err
