"""Artifact store: quarantine, manifests, and the corrupt seed cache."""

from __future__ import annotations

import numpy as np
import pytest

from polygraphmr.errors import ArtifactCorrupt, ArtifactMissing
from polygraphmr.faults import corrupt_file_header, corrupt_file_truncate

from .conftest import SEED_CACHE, SYNTH_MEMBERS


class TestSyntheticStore:
    def test_load_probs(self, synthetic_store):
        probs = synthetic_store.load_probs("tinynet", "ORG", "val")
        assert probs.ndim == 2
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-3)

    def test_load_weights(self, synthetic_store):
        weights = synthetic_store.load_weights("tinynet", "pp-Hist")
        assert set(weights) == {"dense", "bias"}

    def test_load_labels(self, synthetic_store):
        labels = synthetic_store.load_labels("tinynet", "test")
        assert labels is not None and labels.dtype == np.int64

    def test_missing_artifact(self, synthetic_store):
        with pytest.raises(ArtifactMissing):
            synthetic_store.load_probs("tinynet", "pp-DoesNotExist", "val")
        assert synthetic_store.try_load_probs("tinynet", "pp-DoesNotExist", "val") is None

    def test_scan_model_manifest(self, synthetic_store):
        manifest = synthetic_store.scan_model("tinynet")
        # every synthetic member contributes 2 probs + 1 weights, all valid
        assert manifest.n_valid == 3 * len(SYNTH_MEMBERS)
        # roster stems we didn't generate are reported missing, not invented
        assert manifest.n_missing > 0
        assert manifest.n_corrupt == 0
        assert set(manifest.usable_stems()) == set(SYNTH_MEMBERS)
        assert manifest.greedy["greedy-4"] == ["ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX"]


class TestQuarantine:
    def test_truncated_copy_is_quarantined(self, synthetic_store):
        src = synthetic_store.probs_path("tinynet", "ORG", "val")
        dst = synthetic_store.probs_path("tinynet", "pp-Trunc", "val")
        corrupt_file_truncate(src, dst, keep_fraction=0.4, seed=1)
        with pytest.raises(ArtifactCorrupt):
            synthetic_store.load_probs("tinynet", "pp-Trunc", "val")
        assert synthetic_store.is_quarantined(dst)
        # second access short-circuits via the quarantine registry
        assert synthetic_store.try_load_probs("tinynet", "pp-Trunc", "val") is None

    def test_header_damage_is_quarantined(self, synthetic_store):
        src = synthetic_store.probs_path("tinynet", "ORG", "test")
        dst = synthetic_store.probs_path("tinynet", "pp-Head", "test")
        corrupt_file_header(src, dst, n_bytes=4, seed=2)
        assert synthetic_store.try_load_probs("tinynet", "pp-Head", "test") is None
        assert synthetic_store.quarantine[str(dst)] == "bad-magic"

    def test_semantic_violation_is_quarantined(self, synthetic_store, synthetic_cache, write_probs):
        bad = synthetic_cache / "tinynet" / "pp-Bad.val.probs.npz"
        write_probs(bad, np.full((8, 10), 0.5))  # rows sum to 5, not 1
        with pytest.raises(Exception) as exc_info:
            synthetic_store.load_probs("tinynet", "pp-Bad", "val")
        assert getattr(exc_info.value, "reason", "") == "probs-not-simplex"
        assert synthetic_store.is_quarantined(bad)

    def test_corrupt_file_appears_in_manifest(self, synthetic_store, synthetic_cache):
        src = synthetic_store.probs_path("tinynet", "ORG", "val")
        dst = synthetic_store.probs_path("tinynet", "pp-AdHist", "val")
        corrupt_file_truncate(src, dst, keep_fraction=0.3, seed=3)
        manifest = synthetic_store.scan_model("tinynet")
        assert manifest.n_corrupt == 1
        (rec,) = manifest.quarantined()
        assert rec.stem == "pp-AdHist"
        assert rec.status.reason in ("truncated", "bad-zip", "bad-npy")


@pytest.mark.skipif(not SEED_CACHE.is_dir(), reason="seed cache absent")
class TestSeedCache:
    """The real .repro_cache: every npz was damaged by the capture pipeline.

    The hard acceptance criterion: scanning and loading must crash on *none*
    of them — everything lands in quarantine with a structured reason.
    """

    def test_scan_all_never_raises_and_quarantines_known_bad(self, seed_store):
        cache = seed_store.scan_all()
        assert set(cache.models) >= {"alexnet", "lenet5", "resnet20"}
        assert cache.n_corrupt >= 1  # known-truncated artifacts
        # every quarantined record carries a machine-readable reason
        for manifest in cache.models.values():
            for rec in manifest.quarantined():
                assert rec.status.reason

    def test_every_seed_artifact_loads_or_quarantines(self, seed_store):
        for npz in sorted(SEED_CACHE.glob("*/*.npz")):
            report_ok = True
            try:
                from polygraphmr.integrity import load_npz_validated

                load_npz_validated(npz)
            except ArtifactCorrupt as exc:
                report_ok = False
                assert exc.reason in ("truncated", "bad-zip", "bad-npy", "empty", "bad-magic", "no-eocd")
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"{npz}: unstructured failure {exc!r}")
            # the seed cache is wholly corrupt; if an artifact ever loads
            # cleanly that's fine too (report_ok), but it must be one or the other
            assert report_ok in (True, False)

    def test_resnet20_partial_manifest(self, seed_store):
        manifest = seed_store.scan_model("resnet20")
        present = {r.filename for r in manifest.records if r.status.status != "missing"}
        assert "ORG.val.probs.npz" in present
        assert manifest.n_missing >= 30  # only 5 npz of ~42 expected were captured
        assert manifest.n_valid == 0  # and the captured ones are corrupt
