"""Soak/stress reconciliation: metric totals must agree exactly with the
journal.

The journal is the byte-deterministic record of what a campaign did; metrics
are the out-of-band tally of the same events.  These tests run campaigns
long enough for breakers to trip, cool down, and re-trip, then cross-check
every counter against the ground truth derivable from the journal — any
drift means an instrumentation point is missing or double-counting.

Marked ``slow``: deselected by default (see pyproject addopts), run in CI on
schedule/manual dispatch via ``pytest -m slow``.
"""

from __future__ import annotations

import time
from collections import Counter as Tally

import pytest

from polygraphmr.campaign import (
    JOURNAL_NAME,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    verify_campaign,
)
from polygraphmr.breaker import BreakerBoard, BreakerPolicy
from polygraphmr.faults import corrupt_file_truncate
from polygraphmr.metrics import get_registry
from polygraphmr.parallel import ParallelCampaignRunner
from polygraphmr.serve import (
    OUTCOMES,
    PolygraphService,
    ServeConfig,
    ServeGateway,
    ServeRequest,
    request_frame,
)
from polygraphmr.store import ArtifactStore

pytestmark = pytest.mark.slow

N_TRIALS = 64  # 16 trials per model: enough for trip -> cooldown -> probe cycles


def _trial_records(out_dir):
    by_index = CampaignJournal(out_dir / JOURNAL_NAME).trial_records()
    return [by_index[i] for i in sorted(by_index)]


class TestMetricsReconcileWithJournal:
    @pytest.fixture()
    def stressed_cache(self, multi_model_cache):
        """Four valid models with one member of ``net-01`` corrupted on both
        splits, so its breaker trips and re-trips throughout the campaign."""

        victim_dir = multi_model_cache / "net-01"
        for split in ("val", "test"):
            target = victim_dir / f"pp-Gamma_2.{split}.probs.npz"
            corrupt_file_truncate(target, target, keep_fraction=0.2, seed=5)
        return multi_model_cache

    def test_parallel_soak_counters_match_journal_exactly(self, stressed_cache, tmp_path):
        config = CampaignConfig(
            cache=str(stressed_cache),
            n_trials=N_TRIALS,
            seed=7,
            timeout_s=120.0,
            failure_threshold=2,
            cooldown_ticks=1,
        )
        out = tmp_path / "out"
        # the reconciliation below counts assemble calls per trial, which the
        # batched kernel deliberately amortizes — pin the per-trial loop
        runner = ParallelCampaignRunner(config, out, workers=4, use_batch=False)
        summary = runner.run()
        assert summary["completed"] == N_TRIALS
        assert summary["failed_workers"] == []
        assert summary["breakers"], "stressor failed to trip any breaker"

        reg = runner.merged_registry
        records = _trial_records(out)
        assert len(records) == N_TRIALS

        # 0. the merged evidence trail must audit clean end to end: chain
        # walk, checkpoint-sealed head, and a full replay of every spec
        audit = verify_campaign(out)
        assert audit["ok"], audit["first_bad"]
        assert audit["complete"] and audit["trials"] == N_TRIALS
        assert not audit["shards"]  # merge consumed every worker shard

        # 1. outcome tallies: journal vs campaign_trials_total, label by label
        tally = Tally(r["outcome"] for r in records)
        assert tally == {OUTCOME_OK: N_TRIALS}  # this workload never errors
        for outcome, n in tally.items():
            assert reg.counter_value("campaign_trials_total", outcome=outcome) == n
        assert reg.counter_total("campaign_trials_total") == N_TRIALS
        assert reg.histogram_for("campaign_trial_seconds").count == N_TRIALS

        # 2. cheap breaker skips: the final journalled snapshot of each model
        # carries that board's cumulative n_skipped; the counters must agree
        final_snap_by_model = {}
        for r in records:  # records are index-ordered, so last write wins
            final_snap_by_model[r["spec"]["model"]] = r["breakers"]
        journalled_skips = sum(
            b["n_skipped"]
            for snap in final_snap_by_model.values()
            for b in snap["breakers"].values()
        )
        assert journalled_skips > 0, "breaker never served a cheap skip"
        assert reg.counter_value("breaker_skips_total") == journalled_skips
        assert (
            reg.counter_value("ensemble_member_skips_total", reason="circuit-open")
            == journalled_skips
        )

        # 3. assemble accounting: every ok trial assembles val + test, and
        # only the victim model's assembles are degraded
        ok_by_model = Tally(r["spec"]["model"] for r in records if r["outcome"] == OUTCOME_OK)
        assert reg.counter_total("ensemble_assemble_total") == 2 * tally[OUTCOME_OK]
        assert (
            reg.counter_value("ensemble_assemble_total", degraded="true")
            == 2 * ok_by_model["net-01"]
        )

        # 4. every degraded assemble of the victim drops exactly one member
        # (the corrupt one), either as a real load-and-quarantine or as a
        # circuit-open skip
        drop_reasons = (
            reg.counter_value("ensemble_member_skips_total", reason="quarantined")
            + reg.counter_value("ensemble_member_skips_total", reason="circuit-open")
            + reg.counter_value("ensemble_member_skips_total", reason="missing")
            + reg.counter_value("ensemble_member_skips_total", reason="shape-disagrees")
        )
        assert drop_reasons == 2 * ok_by_model["net-01"]

        # 5. error taxonomy vs store results: every corrupt/quarantined-hit
        # probs load raised (and therefore counted) an ArtifactCorrupt
        corrupt_loads = reg.counter_value(
            "store_load_total", kind="probs", result="corrupt"
        ) + reg.counter_value("store_load_total", kind="probs", result="quarantined-hit")
        assert corrupt_loads > 0
        taxonomy_corrupt = sum(
            row["value"]
            for row in reg.to_dict()["counters"]
            if row["name"] == "errors_total" and row["labels"].get("type") == "ArtifactCorrupt"
        )
        assert taxonomy_corrupt == corrupt_loads

        # 6. one decision-module fit per ok trial
        assert reg.histogram_for("decision_fit_seconds").count == tally[OUTCOME_OK]

    def test_serial_soak_with_timeouts_and_errors_reconciles(self, tmp_path, bare_cache):
        """A fake workload that hangs and raises on schedule: the watchdog
        and error counters must match the journal's outcome tallies."""

        cache = bare_cache("a", "b")

        def misbehaves(spec):
            if spec.index % 10 == 3:
                time.sleep(30)  # watchdog food
            if spec.index % 10 == 7:
                raise RuntimeError("injected")
            return {"model": spec.model}

        n_trials = 40
        config = CampaignConfig(cache=str(cache), n_trials=n_trials, seed=3, timeout_s=0.2)
        runner = CampaignRunner(config, tmp_path / "out", trial_fn=misbehaves)
        summary = runner.run()
        assert summary["completed"] == n_trials

        audit = verify_campaign(tmp_path / "out")
        assert audit["ok"], audit["first_bad"]
        assert audit["trials"] == n_trials

        reg = runner.merged_registry
        tally = Tally(r["outcome"] for r in _trial_records(tmp_path / "out"))
        assert tally[OUTCOME_TIMEOUT] == 4
        assert tally[OUTCOME_ERROR] == 4
        for outcome in (OUTCOME_OK, OUTCOME_ERROR, OUTCOME_TIMEOUT):
            assert reg.counter_value("campaign_trials_total", outcome=outcome) == tally[outcome]
        assert reg.counter_value("campaign_watchdog_fired_total") == tally[OUTCOME_TIMEOUT]
        assert reg.histogram_for("campaign_trial_seconds").count == n_trials


class TestServeSoak:
    """1k requests through an in-process gateway under a tripping-breaker
    schedule: alternating flood bursts (queue pressure trips the sheddable
    members' breakers) and calm sequential phases (cool-down closes them
    again).  Afterwards ``serve_requests_total{outcome}`` must reconcile
    *exactly* against the responses actually received — plus the shed /
    degraded / deadline side counters and the latency histogram count."""

    N_REQUESTS = 1000
    BURSTS = 20
    FLOOD = 40  # concurrent requests per burst
    CALM = 10  # sequential requests after each burst

    @pytest.mark.parametrize("workers", [0, 4], ids=["in-process", "pooled-4"])
    def test_serve_1k_requests_reconciles_counters_exactly(self, synthetic_cache, workers):
        import asyncio
        import json

        assert self.BURSTS * (self.FLOOD + self.CALM) == self.N_REQUESTS
        # cooldown must exceed one batch tick: with cooldown_ticks=1 an open
        # breaker is re-admitted as a half-open probe on the very next batch
        # and no response is ever actually served degraded
        board = BreakerBoard(BreakerPolicy(failure_threshold=2, cooldown_ticks=2))
        service = PolygraphService(ArtifactStore(synthetic_cache), seed=0, breakers=board)
        config = ServeConfig(
            host="127.0.0.1",
            port=0,
            max_queue=32,
            degrade_depth=4,
            batch_max=8,
            coalesce_ms=1.0,
            batch_sleep_s=0.002,
            workers=workers,
        )

        async def one(port: int, request: ServeRequest) -> dict:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(request_frame(request))
            await writer.drain()
            raw = await reader.readline()
            writer.close()
            return json.loads(raw)

        def make_request(i: int) -> ServeRequest:
            # every 97th request carries an unmeetable budget: the batch
            # sleep alone exceeds it, so executed ones expire deterministically
            deadline = 0.01 if i % 97 == 96 else None
            return ServeRequest(id=f"r{i}", model="tinynet", samples=(i % 160,), deadline_ms=deadline)

        async def run():
            gateway = ServeGateway(service, config)
            await gateway.start()
            port = gateway.bound_port
            responses: list[dict] = []
            degraded_bursts: set[int] = set()
            i = 0
            try:
                for burst in range(self.BURSTS):
                    flood = await asyncio.gather(
                        *[one(port, make_request(i + k)) for k in range(self.FLOOD)]
                    )
                    i += self.FLOOD
                    if any(p["outcome"] == "degraded" for p in flood):
                        degraded_bursts.add(burst)
                    responses.extend(flood)
                    for _ in range(self.CALM):
                        responses.append(await one(port, make_request(i)))
                        i += 1
                final = await one(port, ServeRequest(id="final", model="tinynet", samples=(0,)))
            finally:
                await gateway.drain()
            return responses, degraded_bursts, final

        responses, degraded_bursts, final = asyncio.run(run())
        assert len(responses) == self.N_REQUESTS

        # the schedule did what it was built to do: pressure tripped breakers
        # in more than one burst (trip -> cool-down -> re-trip), load was
        # shed at the queue bound, and unmeetable budgets expired
        tally = Tally(p["outcome"] for p in responses)
        assert tally["degraded"] > 0, "no burst ever degraded the member set"
        assert len(degraded_bursts) >= 2, "breakers never re-tripped after cooling down"
        assert tally["overloaded"] > 0, "queue bound never shed"
        assert tally["deadline_exceeded"] > 0, "no unmeetable budget expired"
        assert "error" not in tally
        # calm queue at the end: breakers closed again, full member set back
        assert final["outcome"] == "ok" and final["breakers"] == {}

        # exact reconciliation: every counter equals the response tally —
        # +1 "ok" for the final recovery probe, which is a served request too
        tally["ok"] += 1
        reg = get_registry()
        for outcome in OUTCOMES:
            assert reg.counter_value("serve_requests_total", outcome=outcome) == tally[outcome], outcome
        assert reg.counter_total("serve_requests_total") == self.N_REQUESTS + 1
        assert reg.counter_value("serve_shed_total") == tally["overloaded"]
        assert reg.counter_value("serve_degraded_total") == tally["degraded"]
        assert reg.counter_value("serve_deadline_exceeded_total") == tally["deadline_exceeded"]
        assert reg.histogram_for("serve_request_seconds").count == self.N_REQUESTS + 1
        # every non-shed request crossed the dispatcher in some batch
        executed = self.N_REQUESTS + 1 - tally["overloaded"]
        batch_sizes = reg.histogram_for("serve_batch_size")
        assert batch_sizes is not None and batch_sizes.sum == executed
        assert batch_sizes.count == reg.counter_value("serve_batches_total")

        if workers:
            # merged-shard invariant: every sample the dispatcher shipped to
            # the pool was counted by exactly one worker shard, and drain
            # folded those shards into this (parent) registry
            pool_samples = reg.counter_value("serve_pool_samples_total")
            assert pool_samples > 0, "pooled soak never evaluated through the pool"
            assert reg.counter_value("serve_worker_samples_total") == pool_samples
            assert reg.counter_total("serve_pool_jobs_total") == reg.counter_value("serve_worker_batches_total")
            assert reg.counter_value("serve_pool_fallback_total", reason="worker-crash") == 0
            assert reg.counter_value("serve_worker_restarts_total") == 0
