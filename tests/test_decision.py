"""Decision module: features, training, metrics, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from polygraphmr.decision import (
    LogisticDecisionModule,
    ensemble_features,
    misprediction_targets,
)
from polygraphmr.decision import _rank_auc  # noqa: PLC2701 - unit-testing the internal


def _toy_stack(seed=0, m=4, n=50, c=6):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(m, n, c))
    z = logits - logits.max(axis=2, keepdims=True)
    return np.exp(z) / np.exp(z).sum(axis=2, keepdims=True)


class TestFeatures:
    def test_shape(self):
        stacked = _toy_stack(m=4, n=50, c=6)
        feats = ensemble_features(stacked)
        assert feats.shape == (50, 4 * 6 + 4)  # flat probs + 4 agreement stats

    def test_targets(self):
        org = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 0, 1])
        np.testing.assert_array_equal(misprediction_targets(org, labels), [0.0, 1.0, 1.0])


class TestTraining:
    def test_learns_separable_problem(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 5))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(float)
        module = LogisticDecisionModule(seed=0).fit(x, y)
        metrics = module.evaluate(x, y)
        assert metrics.accuracy > 0.9
        assert metrics.auc > 0.95

    def test_deterministic_given_seed(self):
        x = _toy_stack(seed=5)
        feats = ensemble_features(x)
        y = (np.arange(feats.shape[0]) % 2).astype(float)
        a = LogisticDecisionModule(seed=42).fit(feats, y).predict_proba(feats)
        b = LogisticDecisionModule(seed=42).fit(feats, y).predict_proba(feats)
        np.testing.assert_array_equal(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticDecisionModule().predict_proba(np.zeros((2, 3)))


class TestMetrics:
    def test_perfect_and_degenerate_auc(self):
        assert _rank_auc(np.array([0.1, 0.2, 0.9, 0.8]), np.array([0, 0, 1, 1])) == 1.0
        assert _rank_auc(np.array([0.9, 0.8, 0.1, 0.2]), np.array([0, 0, 1, 1])) == 0.0
        assert _rank_auc(np.array([0.5, 0.5]), np.array([1, 1])) == 0.5  # one class only

    def test_tied_scores_average_ranks(self):
        auc = _rank_auc(np.array([0.5, 0.5, 0.5, 0.5]), np.array([0, 1, 0, 1]))
        assert auc == 0.5

    def test_metrics_dict_round(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        y = (x[:, 0] > 0).astype(float)
        metrics = LogisticDecisionModule(seed=0).fit(x, y).evaluate(x, y)
        d = metrics.to_dict()
        assert set(d) == {"n", "accuracy", "precision", "recall", "f1", "auc", "base_rate"}
        assert d["n"] == 50
