"""Verified-once artifact cache + zero-copy shared-memory plane.

Covers the three guarantees the cache layer makes:

* **Transparency** — journal and checkpoint bytes are identical with the
  cache on vs. off, and serial vs. 4-worker with the plane active.
* **Safety** — cached and plane-served arrays are read-only, stat-signature
  changes force re-validation, quarantine/salvage verdicts survive the
  cache round-trip.
* **Cleanliness** — no ``/dev/shm`` entry outlives ``publish`` (the segment
  is unlinked before any fork, so SIGKILL can never leak one).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np
import pytest

from polygraphmr.cache import (
    ArtifactCache,
    NegativeEntry,
    PLANE_PREFIX,
    SharedMemoryPlane,
    stat_signature,
)
from polygraphmr.campaign import CampaignConfig, CampaignRunner
from polygraphmr.errors import ArtifactCorrupt, IntegrityMismatch
from polygraphmr.faults import corrupt_file_truncate
from polygraphmr.manifest import CORRUPT, MISSING, SALVAGED, VALID
from polygraphmr.metrics import get_registry
from polygraphmr.parallel import ParallelCampaignRunner
from polygraphmr.store import ArtifactStore

ZIP_MAGIC = b"PK\x03\x04"


def _shm_entries() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(PLANE_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


def _valid_probs(n: int = 40, c: int = 10, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.uniform(0.1, 1.0, size=(n, c))
    return (raw / raw.sum(axis=1, keepdims=True)).astype(np.float32)


def _member_offsets(data: bytes) -> list[int]:
    offsets, i = [], 0
    while True:
        i = data.find(ZIP_MAGIC, i)
        if i < 0:
            return offsets
        offsets.append(i)
        i += 4


def _write_salvageable_probs(path: Path, *, probs: np.ndarray | None = None) -> np.ndarray:
    """An npz whose ``probs`` member is intact but whose container is broken
    (same construction as the salvage-layer tests): member order is
    (probs, filler) and the cut lands inside filler."""

    if probs is None:
        probs = _valid_probs()
    filler = np.arange(4096, dtype=np.float64)
    np.savez(path, probs=probs, filler=filler)
    data = path.read_bytes()
    offsets = _member_offsets(data)
    assert len(offsets) >= 2, "expected two members"
    path.write_bytes(data[: offsets[1] + 40])
    return probs


class TestArtifactCacheLRU:
    def test_hit_skips_revalidation_and_is_read_only(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs())
        cache = ArtifactCache()
        store = ArtifactStore(root, cache=cache)

        first = store.load_probs("m", "ORG", "val")
        second = store.fresh().load_probs("m", "ORG", "val")
        assert second is first  # the very same validated array, not a re-read
        with pytest.raises(ValueError):
            second[0, 0] = 0.5

        registry = get_registry()
        assert registry.counter_value("store_load_total", kind="probs", result="hit") == 1
        assert registry.counter_value("store_load_total", kind="probs", result="cache-hit") == 1
        assert (
            registry.counter_value("artifact_cache_hits_total", kind="probs", source="memory") == 1
        )
        assert stat_signature(path) is not None

    def test_byte_budget_evicts_lru_and_tracks_gauge(self, tmp_path):
        arr = np.zeros(1024, dtype=np.float64)  # 8 KiB each
        cache = ArtifactCache(max_bytes=3 * arr.nbytes)
        paths = []
        for i in range(4):
            p = tmp_path / f"a{i}.npz"
            p.write_bytes(b"placeholder")
            paths.append(p)
            cache.put(p, "probs", arr.copy())
        # 4 inserts into a 3-entry budget: the oldest fell out
        assert cache.lookup(paths[0], "probs") is None
        assert cache.lookup(paths[3], "probs") is not None
        registry = get_registry()
        assert registry.counter_total("artifact_cache_evictions_total") == 1
        assert registry.gauge_value("artifact_cache_bytes") == 3 * arr.nbytes
        assert cache.stats()["entries"] == 3

    def test_value_larger_than_budget_is_not_cached(self, tmp_path):
        cache = ArtifactCache(max_bytes=64)
        p = tmp_path / "big.npz"
        p.write_bytes(b"x")
        out = cache.put(p, "probs", np.zeros(1024))
        assert not out.flags.writeable  # still frozen for the caller
        assert cache.lookup(p, "probs") is None
        assert cache.stats()["bytes"] == 0

    def test_stat_signature_change_forces_revalidation(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs(seed=1))
        cache = ArtifactCache()
        store = ArtifactStore(root, cache=cache)
        old = store.load_probs("m", "ORG", "val")

        replacement = _valid_probs(n=48, seed=2)  # different size too
        write_probs(path, replacement)
        fresh = store.fresh().load_probs("m", "ORG", "val")
        assert fresh.shape[0] == 48
        assert fresh is not old
        assert get_registry().counter_total("artifact_cache_invalidations_total") == 1

    def test_mtime_only_change_also_invalidates(self, tmp_path):
        p = tmp_path / "f.npz"
        p.write_bytes(b"same-bytes")
        cache = ArtifactCache()
        cache.put(p, "labels", np.arange(4))
        assert cache.lookup(p, "labels") is not None
        sig = stat_signature(p)
        os.utime(p, ns=(sig[1] + 1_000_000, sig[1] + 1_000_000))
        assert cache.lookup(p, "labels") is None


class TestNegativeCache:
    def test_corrupt_probs_negative_cached_across_stores(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs())
        corrupt_file_truncate(path, path, keep_fraction=0.1, seed=1)
        cache = ArtifactCache()
        store = ArtifactStore(root, cache=cache)

        with pytest.raises(ArtifactCorrupt):
            store.load_probs("m", "ORG", "val")
        # a new store generation pays one stat, not a second failed parse
        other = store.fresh()
        with pytest.raises(ArtifactCorrupt) as exc_info:
            other.load_probs("m", "ORG", "val")
        assert exc_info.value.detail == "previously quarantined"
        assert other.is_quarantined(path)

        registry = get_registry()
        assert registry.counter_total("artifact_cache_negative_hits_total") == 1
        # soak-reconciliation invariant: every ArtifactCorrupt pairs with a
        # corrupt or quarantined-hit load result
        corrupt = registry.counter_value("store_load_total", kind="probs", result="corrupt")
        quarantined = registry.counter_value(
            "store_load_total", kind="probs", result="quarantined-hit"
        )
        taxonomy = registry.counter_value(
            "errors_total", type="ArtifactCorrupt", reason=exc_info.value.reason
        )
        assert corrupt + quarantined == taxonomy == 2

    def test_negative_entry_cleared_when_file_replaced(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs())
        corrupt_file_truncate(path, path, keep_fraction=0.1, seed=1)
        cache = ArtifactCache()
        with pytest.raises(ArtifactCorrupt):
            ArtifactStore(root, cache=cache).load_probs("m", "ORG", "val")

        write_probs(path, _valid_probs(n=48, seed=9))  # repaired, new signature
        healed = ArtifactStore(root, cache=cache).load_probs("m", "ORG", "val")
        assert healed.shape[0] == 48
        assert cache.stats()["negative_entries"] == 0

    def test_scan_negative_hit_builds_status_without_errors(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs())
        corrupt_file_truncate(path, path, keep_fraction=0.1, seed=1)
        cache = ArtifactCache()
        s1 = ArtifactStore(root, cache=cache)
        m1 = s1.scan_model("m")
        errors_after_first = get_registry().counter_total("errors_total")

        s2 = s1.fresh()
        m2 = s2.scan_model("m")
        # the cached verdict is rebuilt from strings: no exception objects,
        # so the error taxonomy counters don't move
        assert get_registry().counter_total("errors_total") == errors_after_first
        assert s2.is_quarantined(path)
        by_name = {r.filename: r for r in m2.records}
        rec = by_name["ORG.val.probs.npz"]
        assert rec.status.status == CORRUPT
        assert rec.status.reason == {r.filename: r for r in m1.records}[rec.filename].status.reason

    def test_stricter_n_classes_on_hit_raises_without_poisoning(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs(c=10))
        cache = ArtifactCache()
        ArtifactStore(root, cache=cache).load_probs("m", "ORG", "val")

        strict = ArtifactStore(root, cache=cache)
        with pytest.raises(IntegrityMismatch) as exc_info:
            strict.load_probs("m", "ORG", "val", n_classes=7)
        assert exc_info.value.reason == "probs-bad-classes"
        # the entry is still valid for lenient callers: no negative verdict
        lenient = ArtifactStore(root, cache=cache)
        assert lenient.load_probs("m", "ORG", "val").shape[1] == 10


class TestSalvageInterplay:
    def test_salvaged_artifact_is_cached_as_salvaged(self, tmp_path):
        root = tmp_path / "cache"
        (root / "m").mkdir(parents=True)
        path = root / "m" / "ORG.val.probs.npz"
        _write_salvageable_probs(path)
        cache = ArtifactCache()
        s1 = ArtifactStore(root, allow_salvaged=True, cache=cache)
        carved = s1.load_probs("m", "ORG", "val")
        assert s1.is_salvaged(path)

        s2 = s1.fresh()
        again = s2.load_probs("m", "ORG", "val")
        assert again is carved
        assert s2.is_salvaged(path)  # salvage registry restored from the entry
        registry = get_registry()
        assert registry.counter_value("store_load_total", kind="probs", result="salvaged") == 1
        assert registry.counter_value("store_load_total", kind="probs", result="cache-salvaged") == 1
        status = s2.fresh().scan_model("m").records[0].status
        assert status.status == SALVAGED

    def test_unsalvageable_artifact_is_negative_cached(self, tmp_path, write_probs):
        root = tmp_path / "cache"
        path = write_probs(root / "m" / "ORG.val.probs.npz", _valid_probs())
        corrupt_file_truncate(path, path, keep_fraction=0.05, seed=3)  # probs data destroyed
        cache = ArtifactCache()
        s1 = ArtifactStore(root, allow_salvaged=True, cache=cache)
        with pytest.raises(ArtifactCorrupt):
            s1.load_probs("m", "ORG", "val")
        assert not s1.is_salvaged(path)
        with pytest.raises(ArtifactCorrupt) as exc_info:
            s1.fresh().load_probs("m", "ORG", "val")
        assert exc_info.value.detail == "previously quarantined"
        assert cache.stats()["negative_entries"] == 1


class TestSharedMemoryPlane:
    def _publish(self, root: Path, models: list[str]) -> SharedMemoryPlane | None:
        return SharedMemoryPlane.publish(ArtifactStore(root), models)

    def test_publish_unlinks_immediately_and_serves_read_only_views(self, synthetic_cache):
        before = _shm_entries()
        plane = self._publish(synthetic_cache, ["tinynet"])
        assert plane is not None
        assert _shm_entries() == before  # sealed inside publish, pre-fork

        path = synthetic_cache / "tinynet" / "ORG.val.probs.npz"
        entry = plane.lookup(path, "probs", stat_signature(path))
        assert entry is not None and entry.source == "plane"
        view = entry.value
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 0.0
        # a stale signature must read as a miss, never a wrong array
        assert plane.lookup(path, "probs", (0, 0)) is None
        plane.close()

    def test_corrupt_member_publishes_negative_record(self, synthetic_cache):
        victim = synthetic_cache / "tinynet" / "pp-Hist.val.probs.npz"
        corrupt_file_truncate(victim, victim, keep_fraction=0.1, seed=2)
        plane = self._publish(synthetic_cache, ["tinynet"])
        assert plane is not None
        got = plane.lookup(victim, "probs", stat_signature(victim))
        assert isinstance(got, NegativeEntry)
        assert got.exc_type == "ArtifactCorrupt"
        plane.close()

    def test_store_misses_resolve_through_plane(self, synthetic_cache):
        plane = self._publish(synthetic_cache, ["tinynet"])
        assert plane is not None
        get_registry().reset()  # count only the consumer side
        store = ArtifactStore(synthetic_cache, cache=ArtifactCache(plane=plane))
        arr = store.load_probs("tinynet", "ORG", "val")
        assert not arr.flags.writeable
        registry = get_registry()
        assert registry.counter_value("artifact_cache_hits_total", kind="probs", source="plane") == 1
        assert registry.counter_total("artifact_cache_misses_total") == 0
        manifest = store.fresh().scan_model("tinynet")
        present = [r for r in manifest.records if r.status.status != MISSING]
        assert present and all(r.status.status == VALID for r in present)
        plane.close()

    def test_publish_returns_none_when_shared_memory_unavailable(
        self, synthetic_cache, monkeypatch
    ):
        import polygraphmr.cache as cache_mod

        monkeypatch.setattr(cache_mod, "shared_memory", None)
        assert self._publish(synthetic_cache, ["tinynet"]) is None

    def test_segment_creation_failure_falls_back_to_none(self, synthetic_cache, monkeypatch):
        import polygraphmr.cache as cache_mod

        class Refusing:
            def __init__(self, *args, **kwargs):
                raise OSError("no shm for you")

        monkeypatch.setattr(cache_mod.shared_memory, "SharedMemory", Refusing)
        assert self._publish(synthetic_cache, ["tinynet"]) is None

    def test_empty_model_set_publishes_nothing(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert self._publish(tmp_path, ["empty"]) is None


class TestCacheDeterminism:
    """The acceptance regression: caching changes timing only, never bytes."""

    @staticmethod
    def _sha(path: Path) -> str:
        return hashlib.sha256(path.read_bytes()).hexdigest()

    def test_journal_and_checkpoint_bytes_identical_on_off_serial_parallel(
        self, tmp_path, multi_model_cache
    ):
        # a corrupt member exercises breakers, quarantine, and the negative
        # cache — the paths most likely to diverge if caching leaked into
        # record content
        for split in ("val", "test"):
            victim = multi_model_cache / "net-01" / f"pp-Gamma_2.{split}.probs.npz"
            corrupt_file_truncate(victim, victim, keep_fraction=0.2, seed=5)
        config = CampaignConfig(
            cache=str(multi_model_cache),
            n_trials=16,
            seed=7,
            timeout_s=60.0,
            failure_threshold=2,
            cooldown_ticks=1,
        )
        shm_before = _shm_entries()

        CampaignRunner(config, tmp_path / "off", use_cache=False).run()
        CampaignRunner(config, tmp_path / "on").run()
        parallel = ParallelCampaignRunner(config, tmp_path / "par", workers=4)
        summary = parallel.run()
        assert summary["completed"] == config.n_trials
        assert summary["failed_workers"] == []

        for artefact in ("journal.jsonl", "checkpoint.json"):
            off = self._sha(tmp_path / "off" / artefact)
            assert self._sha(tmp_path / "on" / artefact) == off, artefact
            assert self._sha(tmp_path / "par" / artefact) == off, artefact

        # the plane was actually in play: workers resolved every lookup
        # without touching the disk, and nothing leaked into /dev/shm
        merged = parallel.merged_registry
        assert merged.counter_total("artifact_cache_plane_published_total") > 0
        assert merged.counter_total("artifact_cache_misses_total") == 0
        assert merged.counter_total("artifact_cache_hits_total") > 0
        assert _shm_entries() == shm_before
