"""Ensemble runtime: full runs, graceful degradation, seed-cache sweep."""

from __future__ import annotations

import numpy as np
import pytest

from polygraphmr.ensemble import DegradedResult, EnsembleResult, EnsembleRuntime, ModelSkipped
from polygraphmr.errors import DegradedEnsemble
from polygraphmr.faults import corrupt_file_truncate
from polygraphmr.store import ArtifactStore

from .conftest import SYNTH_MEMBERS


class TestFullEnsemble:
    def test_end_to_end_result(self, synthetic_store):
        runtime = EnsembleRuntime(synthetic_store, seed=0)
        result = runtime.run_model("tinynet")
        assert isinstance(result, EnsembleResult) and not isinstance(result, DegradedResult)
        assert result.status == "full"
        assert result.members[0] == "ORG"
        assert set(result.members) == set(SYNTH_MEMBERS)
        assert result.predictions.shape == result.flags.shape
        assert result.metrics is not None
        # the decision module must beat coin-flipping at ranking mispredictions
        assert result.metrics.auc > 0.6

    def test_greedy_member_plan(self, synthetic_store):
        runtime = EnsembleRuntime(synthetic_store)
        plan = runtime.member_plan("tinynet", greedy="greedy-4")
        assert plan == ["ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX"]

    def test_aggregation_methods_agree_on_easy_data(self, synthetic_store):
        runtime = EnsembleRuntime(synthetic_store)
        batch = runtime.assemble("tinynet", "test")
        mean_pred = runtime.aggregate(batch, method="mean")
        vote_pred = runtime.aggregate(batch, method="vote")
        assert (mean_pred == vote_pred).mean() > 0.8
        with pytest.raises(ValueError):
            runtime.aggregate(batch, method="magic")


class TestDegradedMode:
    def test_default_plan_reports_degradation(self, synthetic_store, synthetic_cache):
        """Regression: the default member plan must attempt present-but-broken
        members so degradation is *reported*, not silently planned away."""

        src = synthetic_store.probs_path("tinynet", "ORG", "val")
        corrupt_file_truncate(src, synthetic_store.probs_path("tinynet", "pp-Hist", "val"), keep_fraction=0.3, seed=21)
        (synthetic_cache / "tinynet" / "pp-FlipX.val.probs.npz").unlink()
        (synthetic_cache / "tinynet" / "pp-FlipX.test.probs.npz").unlink()
        runtime = EnsembleRuntime(synthetic_store)
        result = runtime.run_model("tinynet")  # no explicit members
        assert isinstance(result, DegradedResult)
        assert "pp-FlipX" in result.missing  # weights remain, probs gone
        assert "pp-Hist" in result.quarantined

    def test_missing_member_yields_degraded_result(self, synthetic_store, synthetic_cache):
        for split in ("val", "test"):
            (synthetic_cache / "tinynet" / f"pp-FlipX.{split}.probs.npz").unlink()
        runtime = EnsembleRuntime(synthetic_store)
        result = runtime.run_model("tinynet", members=list(SYNTH_MEMBERS))
        assert isinstance(result, DegradedResult)
        assert result.status == "degraded"
        assert "pp-FlipX" in result.missing
        assert result.metrics is not None  # still produces a usable answer

    def test_corrupt_member_named_in_quarantine(self, synthetic_store, synthetic_cache):
        src = synthetic_store.probs_path("tinynet", "ORG", "val")
        dst = synthetic_store.probs_path("tinynet", "pp-Hist", "val")
        corrupt_file_truncate(src, dst, keep_fraction=0.3, seed=11)
        runtime = EnsembleRuntime(synthetic_store)
        result = runtime.run_model("tinynet", members=list(SYNTH_MEMBERS))
        assert isinstance(result, DegradedResult)
        assert "pp-Hist" in result.quarantined
        assert result.quarantined["pp-Hist"]  # structured reason present

    def test_below_minimum_raises_degraded_ensemble(self, synthetic_store):
        runtime = EnsembleRuntime(synthetic_store, min_members=3)
        with pytest.raises(DegradedEnsemble) as exc_info:
            runtime.assemble("tinynet", "val", members=["ORG", "pp-Nope", "pp-AlsoNope"])
        assert exc_info.value.available == ["ORG"]

    def test_shape_disagreement_quarantines_member(self, synthetic_store, synthetic_cache, write_probs):
        bad = synthetic_cache / "tinynet" / "replica-001.val.probs.npz"
        write_probs(bad, np.full((8, 10), 0.1, dtype=np.float32))  # wrong N
        runtime = EnsembleRuntime(synthetic_store)
        batch = runtime.assemble("tinynet", "val", members=list(SYNTH_MEMBERS))
        assert batch.quarantined.get("replica-001") == "probs-shape-disagrees"


class TestSeedCacheSweep:
    def test_run_cache_never_raises(self, seed_store):
        """Every seed model is wholly corrupt, so the sweep must report a
        structured skip per model rather than crash."""

        runtime = EnsembleRuntime(seed_store)
        outcomes = runtime.run_cache()
        assert set(outcomes) == set(seed_store.models())
        for model, outcome in outcomes.items():
            assert isinstance(outcome, (EnsembleResult, ModelSkipped)), model
            if isinstance(outcome, ModelSkipped):
                assert outcome.reason in ("degraded-below-minimum", "error")

    def test_mixed_cache_runs_valid_model_and_skips_corrupt(self, synthetic_cache, seed_store):
        """A cache mixing one valid model with a corrupt one degrades per-model."""

        import shutil

        shutil.copytree(seed_store.model_dir("resnet20"), synthetic_cache / "resnet20")
        runtime = EnsembleRuntime(ArtifactStore(synthetic_cache))
        outcomes = runtime.run_cache()
        assert isinstance(outcomes["tinynet"], EnsembleResult)
        assert isinstance(outcomes["resnet20"], ModelSkipped)


class TestRunCacheDeterminism:
    def test_two_sweeps_are_byte_identical(self, synthetic_cache, add_model):
        """Campaign results are only trustworthy if the sweep itself is
        deterministic: two fresh store+runtime pairs over the same cache must
        visit models in the same order and produce byte-identical outputs."""

        add_model(synthetic_cache, "aaanet", n_val=96, n_test=96, seed=3)

        def sweep():
            runtime = EnsembleRuntime(ArtifactStore(synthetic_cache), seed=0)
            return runtime.run_cache()

        first, second = sweep(), sweep()
        assert list(first) == list(second) == ["aaanet", "tinynet"]  # sorted, stable
        for model in first:
            a, b = first[model], second[model]
            assert isinstance(a, EnsembleResult), model
            assert a.members == b.members
            assert a.predictions.dtype == b.predictions.dtype
            assert a.predictions.tobytes() == b.predictions.tobytes()
            assert a.flags.tobytes() == b.flags.tobytes()
            if a.metrics is not None:
                assert a.metrics == b.metrics
