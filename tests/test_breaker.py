"""Circuit breakers: state-machine transitions, serialisation, and the
runtime wiring that turns repeated corrupt loads into cheap skips."""

from __future__ import annotations

import shutil

from polygraphmr.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, BreakerPolicy, CircuitBreaker
from polygraphmr.ensemble import DegradedResult, EnsembleRuntime
from polygraphmr.faults import corrupt_file_truncate
from polygraphmr.store import ArtifactStore

from .conftest import SYNTH_MEMBERS


class TestCircuitBreaker:
    def test_trips_only_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=3, cooldown_ticks=2))
        b.record_failure(tick=1)
        b.record_failure(tick=1)
        assert b.state == CLOSED
        b.record_failure(tick=1)
        assert b.state == OPEN
        assert b.opened_at_tick == 1

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=3, cooldown_ticks=2))
        b.record_failure(tick=1)
        b.record_failure(tick=1)
        b.record_success()
        b.record_failure(tick=2)
        b.record_failure(tick=2)
        assert b.state == CLOSED  # the streak restarted; threshold not reached

    def test_open_skips_until_cooldown_then_half_opens(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown_ticks=2))
        b.record_failure(tick=5)
        assert b.state == OPEN
        assert not b.allow(tick=5)
        assert not b.allow(tick=6)
        assert b.n_skipped == 2
        assert b.allow(tick=7)  # cooldown elapsed: the probe is admitted
        assert b.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown_ticks=1))
        b.record_failure(tick=1)
        assert b.allow(tick=2)
        b.record_success()
        assert b.state == CLOSED
        assert b.consecutive_failures == 0

    def test_half_open_probe_failure_reopens_immediately(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=5, cooldown_ticks=1))
        for _ in range(5):
            b.record_failure(tick=1)
        assert b.allow(tick=2)
        assert b.state == HALF_OPEN
        b.record_failure(tick=2)  # one failure suffices in half-open
        assert b.state == OPEN
        assert b.opened_at_tick == 2

    def test_snapshot_restore_round_trip(self):
        policy = BreakerPolicy(failure_threshold=2, cooldown_ticks=3)
        b = CircuitBreaker(policy)
        b.record_failure(tick=4)
        b.record_failure(tick=4)
        assert not b.allow(tick=5)

        clone = CircuitBreaker(policy)
        clone.restore(b.snapshot())
        assert clone.state == b.state
        assert clone.opened_at_tick == b.opened_at_tick
        assert not clone.allow(tick=6)
        assert clone.allow(tick=7)  # same cooldown arithmetic as the original


class TestBreakerBoard:
    def test_states_and_non_closed(self):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=9))
        board.tick()
        board.record_failure("m", "pp-Hist")
        board.record_success("m", "ORG")
        assert board.state("m", "pp-Hist") == OPEN
        assert board.state("m", "ORG") == CLOSED
        assert board.state("m", "never-seen") == CLOSED
        assert board.non_closed() == {"m/pp-Hist": OPEN}
        assert board.states_for("m") == {"pp-Hist": OPEN}
        assert board.states_for("other") == {}

    def test_snapshot_restore_preserves_tick_clock(self):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=2))
        board.tick()
        board.tick()
        board.record_failure("m", "pp-Hist")

        clone = BreakerBoard(board.policy)
        clone.restore(board.snapshot())
        assert clone.tick_count == 2
        assert clone.state("m", "pp-Hist") == OPEN
        # one more tick is still inside the cooldown, the next is not
        clone.tick()
        assert not clone.allow("m", "pp-Hist")
        clone.tick()
        assert clone.allow("m", "pp-Hist")


class TestRuntimeIntegration:
    def _corrupt_member(self, cache, stem):
        src = cache / "tinynet" / "ORG.val.probs.npz"
        for split in ("val", "test"):
            corrupt_file_truncate(
                src, cache / "tinynet" / f"{stem}.{split}.probs.npz", keep_fraction=0.3, seed=13
            )

    def test_open_breaker_skips_load_attempts(self, synthetic_store, synthetic_cache):
        """threshold=2, cooldown=2: load attempts per trial must go 2, 0, 1 —
        trip on trial 1 (val+test), skip trial 2, half-open probe on trial 3."""

        self._corrupt_member(synthetic_cache, "pp-Hist")
        board = BreakerBoard(BreakerPolicy(failure_threshold=2, cooldown_ticks=2))
        runtime = EnsembleRuntime(synthetic_store, breakers=board)

        attempts: list[int] = []
        inner = synthetic_store.try_load_probs

        def counting(model, stem, split, **kwargs):
            if stem == "pp-Hist":
                attempts[-1] += 1
            return inner(model, stem, split, **kwargs)

        synthetic_store.try_load_probs = counting

        results = []
        for _ in range(3):
            attempts.append(0)
            results.append(runtime.run_model("tinynet", members=list(SYNTH_MEMBERS)))

        assert attempts == [2, 0, 1]
        assert all(isinstance(r, DegradedResult) for r in results)
        assert results[1].quarantined["pp-Hist"] == "circuit-open"
        assert results[1].breakers.get("pp-Hist") == OPEN
        # the half-open probe on trial 3 failed again, so the breaker re-opened
        assert results[2].breakers.get("pp-Hist") == OPEN
        assert board.state("tinynet", "pp-Hist") == OPEN

    def test_breaker_closes_after_artifacts_are_repaired(self, synthetic_cache):
        """The resume scenario: trip the breaker against corrupt artifacts,
        repair the files on disk, then run with a *fresh store* (quarantine is
        per-instance) but the *same board* — the half-open probe must succeed
        and the member must rejoin the ensemble."""

        self._corrupt_member(synthetic_cache, "pp-Hist")
        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=1))

        tripped = EnsembleRuntime(ArtifactStore(synthetic_cache), breakers=board)
        first = tripped.run_model("tinynet", members=list(SYNTH_MEMBERS))
        assert isinstance(first, DegradedResult)
        assert board.state("tinynet", "pp-Hist") == OPEN

        for split in ("val", "test"):  # repair: restore valid (ORG-shaped) probs
            shutil.copyfile(
                synthetic_cache / "tinynet" / f"ORG.{split}.probs.npz",
                synthetic_cache / "tinynet" / f"pp-Hist.{split}.probs.npz",
            )

        recovered = EnsembleRuntime(ArtifactStore(synthetic_cache), breakers=board)
        second = recovered.run_model("tinynet", members=list(SYNTH_MEMBERS))
        assert board.state("tinynet", "pp-Hist") == CLOSED
        assert "pp-Hist" in second.members
        assert not isinstance(second, DegradedResult)
        assert second.breakers == {}

    def test_missing_files_never_trip_breakers(self, synthetic_store, synthetic_cache):
        for split in ("val", "test"):
            (synthetic_cache / "tinynet" / f"pp-FlipX.{split}.probs.npz").unlink()
        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=1))
        runtime = EnsembleRuntime(synthetic_store, breakers=board)
        for _ in range(3):
            result = runtime.run_model("tinynet", members=list(SYNTH_MEMBERS))
        assert board.state("tinynet", "pp-FlipX") == CLOSED
        assert "pp-FlipX" in result.missing
