"""Property-based fuzzing of journal recovery.

The journal's contract: whatever bytes a crash (or bit rot) leaves behind,
reading either yields a *verified prefix* of the records that were appended,
or raises a typed :class:`CampaignError` — never a record that fails its
seal, and never silently reordered/altered history.  Hypothesis drives
random truncations and byte-flips against that contract, for the canonical
journal and for worker shards via :func:`scan_campaign`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from polygraphmr.campaign import (  # noqa: E402
    JOURNAL_NAME,
    CampaignJournal,
    scan_campaign,
    shard_name,
)
from polygraphmr.errors import CampaignError  # noqa: E402

# journal payloads are arbitrary JSON objects; keep them small but varied
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)

_records = st.lists(
    st.fixed_dictionaries(
        {"type": st.just("trial"), "index": st.integers(min_value=0, max_value=99)},
        optional={"payload": _json_values},
    ),
    min_size=1,
    max_size=5,
)

_TYPED_REASONS = {"journal-bad-checksum", "journal-unparseable-line"}


def _write_journal(tmp: str, records: list[dict]) -> CampaignJournal:
    journal = CampaignJournal(Path(tmp) / "j.jsonl")
    for record in records:
        journal.append(record)
    return journal


@settings(max_examples=40)
@given(records=_records)
def test_append_read_round_trip(records):
    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        assert journal.read() == records


@settings(max_examples=60)
@given(records=_records, data=st.data())
def test_truncation_always_recovers_a_valid_prefix(records, data):
    """Truncation only ever removes the torn tail, so recovery must *never*
    raise — the surviving records are exactly a prefix of what was appended."""

    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        raw = journal.path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut")
        journal.path.write_bytes(raw[:cut])

        recovered = journal.read()
        assert recovered == records[: len(recovered)]

        repaired = journal.repair_tail()
        assert repaired == recovered
        # the repaired file accepts appends on a clean line
        journal.append({"type": "trial", "index": 100})
        assert journal.read() == recovered + [{"type": "trial", "index": 100}]


@settings(max_examples=60)
@given(records=_records, data=st.data())
def test_byte_flip_yields_prefix_or_typed_error(records, data):
    """A flipped byte anywhere either (a) lands in the droppable tail, giving
    a valid prefix, or (b) damages committed history, raising a typed
    CampaignError — but never a record whose seal doesn't verify."""

    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        raw = bytearray(journal.path.read_bytes())
        pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="pos")
        mask = data.draw(st.integers(min_value=1, max_value=255), label="mask")
        raw[pos] ^= mask
        journal.path.write_bytes(bytes(raw))

        try:
            recovered = journal.read()
        except CampaignError as exc:
            assert exc.reason in _TYPED_REASONS
        else:
            assert recovered == records[: len(recovered)]


@settings(max_examples=40)
@given(data=st.data())
def test_shard_damage_never_corrupts_the_merged_view(data):
    """scan_campaign over canonical + shards: damaging any one file either
    raises a typed error or yields a state in which every surviving trial
    record is byte-for-byte the one that was appended, each index once."""

    n = data.draw(st.integers(min_value=2, max_value=8), label="n_trials")
    workers = data.draw(st.integers(min_value=1, max_value=3), label="workers")
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        header = {"type": "header", "version": 2, "config": {"n_trials": n}}
        CampaignJournal(out / JOURNAL_NAME).append(header)
        originals: dict[int, dict] = {}
        for index in range(n):
            record = {"type": "trial", "index": index, "outcome": "ok", "spec": {"i": index}}
            originals[index] = record
            CampaignJournal(out / shard_name(index % workers)).append(record)

        files = sorted(p for p in out.iterdir() if p.suffix == ".jsonl")
        target = files[data.draw(st.integers(min_value=0, max_value=len(files) - 1), label="file")]
        raw = bytearray(target.read_bytes())
        if data.draw(st.booleans(), label="truncate"):
            target.write_bytes(bytes(raw[: data.draw(st.integers(0, len(raw)), label="cut")]))
        else:
            pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="pos")
            raw[pos] ^= data.draw(st.integers(min_value=1, max_value=255), label="mask")
            target.write_bytes(bytes(raw))

        try:
            state = scan_campaign(out, repair=True)
        except CampaignError as exc:
            assert exc.reason in _TYPED_REASONS
        else:
            seen = sorted(state.trials)
            assert seen == sorted(set(seen))  # each index at most once
            for index, record in state.trials.items():
                assert record == originals[index]
