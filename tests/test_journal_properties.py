"""Property-based fuzzing of journal recovery and chain auditing.

The v3 journal's contract has two layers:

* **Recovery** (``CampaignJournal.scan``): whatever bytes a crash (or bit
  rot) leaves behind, reading either yields a *verified prefix* of the
  records that were appended, or raises a typed :class:`CampaignError` —
  never a record that fails its seal, and never silently reordered or
  altered history.
* **Auditing** (``walk_chain``): under random truncation, byte-flips,
  record deletion, and record reordering, the audit walk localises the
  *exact first offending line* — and torn-tail repair never produces a
  journal that fails verification.

Hypothesis drives random damage against both, for the canonical journal
and for worker shards via :func:`scan_campaign`.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from polygraphmr.campaign import (  # noqa: E402
    JOURNAL_NAME,
    JOURNAL_VERSION,
    CampaignJournal,
    scan_campaign,
    shard_name,
)
from polygraphmr.journal import chain_genesis, walk_chain  # noqa: E402
from polygraphmr.errors import CampaignError  # noqa: E402

# journal payloads are arbitrary JSON objects; keep them small but varied
_json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)


def _record_lists(min_size: int) -> st.SearchStrategy:
    return st.lists(
        st.fixed_dictionaries(
            {"type": st.just("trial"), "index": st.integers(min_value=0, max_value=99)},
            optional={"payload": _json_values},
        ),
        min_size=min_size,
        max_size=5,
    )


_records = _record_lists(1)

_TYPED_REASONS = {"journal-bad-checksum", "journal-unparseable-line", "journal-chain-broken"}


def _strip_chain(record: dict) -> dict:
    """A read-back record minus its chain link — comparable to the input."""

    return {k: v for k, v in record.items() if k != "prev"}


def _write_journal(tmp: str, records: list[dict]) -> CampaignJournal:
    journal = CampaignJournal(Path(tmp) / "j.jsonl", genesis=chain_genesis("cafe" * 16))
    for record in records:
        journal.append(record)
    return journal


@settings(max_examples=40)
@given(records=_records)
def test_append_read_round_trip_and_chain_links(records):
    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        read_back = journal.read()
        assert [_strip_chain(r) for r in read_back] == records
        # the chain links: record 0 roots at the genesis, record i at seal i-1
        walked, chain, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is None
        assert walked == read_back
        assert read_back[0]["prev"] == journal.genesis
        for prev_seal, record in zip(chain, read_back[1:]):
            assert record["prev"] == prev_seal
        assert journal.head == chain[-1]


@settings(max_examples=60)
@given(records=_records, data=st.data())
def test_truncation_always_recovers_a_valid_prefix(records, data):
    """Truncation only ever removes the torn tail, so recovery must *never*
    raise — and after repair, the journal must audit clean and accept
    appends that keep the chain verifiable."""

    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        raw = journal.path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut")
        journal.path.write_bytes(raw[:cut])

        recovered = journal.read()
        assert [_strip_chain(r) for r in recovered] == records[: len(recovered)]

        repaired = journal.repair_tail()
        assert repaired == recovered
        # repair never produces a journal that fails verification...
        _, _, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is None
        # ...and the next append lands on a clean line, still verifiable
        journal.append({"type": "trial", "index": 100})
        read_back = journal.read()
        assert [_strip_chain(r) for r in read_back] == [
            _strip_chain(r) for r in recovered
        ] + [{"type": "trial", "index": 100}]
        _, chain, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is None
        assert journal.head == chain[-1]


@settings(max_examples=60)
@given(records=_records, data=st.data())
def test_byte_flip_is_localised_to_the_exact_line(records, data):
    """A flipped byte anywhere either leaves a parse-identical line (benign
    whitespace flip) — in which case the audit passes untouched — or the
    audit walk stops at *exactly* the flipped line, returning the verified
    prefix before it.  Lenient reads stay prefix-or-typed-error."""

    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        raw = bytearray(journal.path.read_bytes())
        pristine = journal.read()
        pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="pos")
        mask = data.draw(st.integers(min_value=1, max_value=255), label="mask")
        raw[pos] ^= mask
        journal.path.write_bytes(bytes(raw))

        # which 0-based line did the flip land in?  A flip on the file's
        # final newline byte leaves the last record unterminated, so the
        # post-flip split yields one fewer separator and the hit is the
        # (now torn) last line rather than any interior one.
        lines = bytes(raw).split(b"\n")
        acc, hit = 0, 0
        for k, line in enumerate(lines[:-1]):
            if pos < acc + len(line) + 1:
                hit = k
                break
            acc += len(line) + 1
        else:
            hit = len(lines) - 1

        walked, _, issue = walk_chain(journal.path, genesis=journal.genesis)
        if issue is None:
            # only a parse-identical flip (e.g. whitespace) can audit clean
            assert walked == pristine
        else:
            assert issue.line == hit + 1
            assert walked == pristine[:hit]

        try:
            recovered = journal.read()
        except CampaignError as exc:
            assert exc.reason in _TYPED_REASONS
        else:
            assert [_strip_chain(r) for r in recovered] == records[: len(recovered)]


@settings(max_examples=60)
@given(records=_record_lists(2), data=st.data())
def test_record_deletion_breaks_the_chain_at_the_gap(records, data):
    """Deleting any committed line is detectable: an interior deletion breaks
    the very next record's link; deleting the final record moves the chain
    head — which the checkpoint seal (and the saved head here) exposes."""

    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        _, seals, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is None
        lines = journal.path.read_bytes().split(b"\n")[:-1]
        j = data.draw(st.integers(min_value=0, max_value=len(lines) - 1), label="deleted")
        survivors = lines[:j] + lines[j + 1 :]
        journal.path.write_bytes(b"".join(line + b"\n" for line in survivors))

        walked, chain, issue = walk_chain(journal.path, genesis=journal.genesis)
        if j == len(lines) - 1:
            # a trimmed tail chains fine, but the head no longer matches
            assert issue is None
            assert (chain[-1] if chain else journal.genesis) != seals[-1]
            assert chain == seals[:-1]
        else:
            assert issue is not None
            assert issue.reason == "journal-chain-broken"
            assert issue.line == j + 1
            assert chain == seals[:j]
            assert len(walked) == j


@settings(max_examples=60)
@given(records=_record_lists(2), data=st.data())
def test_record_reordering_breaks_the_chain_at_the_first_moved_line(records, data):
    with tempfile.TemporaryDirectory() as tmp:
        journal = _write_journal(tmp, records)
        _, seals, _ = walk_chain(journal.path, genesis=journal.genesis)
        lines = journal.path.read_bytes().split(b"\n")[:-1]
        i = data.draw(st.integers(min_value=0, max_value=len(lines) - 2), label="i")
        j = data.draw(st.integers(min_value=i + 1, max_value=len(lines) - 1), label="j")
        lines[i], lines[j] = lines[j], lines[i]
        journal.path.write_bytes(b"".join(line + b"\n" for line in lines))

        walked, chain, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is not None
        assert issue.reason == "journal-chain-broken"
        assert issue.line == i + 1
        assert chain == seals[:i]
        assert len(walked) == i


@settings(max_examples=40)
@given(data=st.data())
def test_shard_damage_never_corrupts_the_merged_view(data):
    """scan_campaign over canonical + shards: damaging any one file either
    raises a typed error or yields a state in which every surviving trial
    record is exactly the one that was appended, each index once."""

    n = data.draw(st.integers(min_value=2, max_value=8), label="n_trials")
    workers = data.draw(st.integers(min_value=1, max_value=3), label="workers")
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)
        header = {"type": "header", "version": JOURNAL_VERSION, "config": {"n_trials": n}}
        CampaignJournal(out / JOURNAL_NAME).append(header)
        originals: dict[int, dict] = {}
        for index in range(n):
            record = {"type": "trial", "index": index, "outcome": "ok", "spec": {"i": index}}
            originals[index] = record
            CampaignJournal(out / shard_name(index % workers)).append(record)

        files = sorted(p for p in out.iterdir() if p.suffix == ".jsonl")
        target = files[data.draw(st.integers(min_value=0, max_value=len(files) - 1), label="file")]
        raw = bytearray(target.read_bytes())
        if data.draw(st.booleans(), label="truncate"):
            target.write_bytes(bytes(raw[: data.draw(st.integers(0, len(raw)), label="cut")]))
        else:
            pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="pos")
            raw[pos] ^= data.draw(st.integers(min_value=1, max_value=255), label="mask")
            target.write_bytes(bytes(raw))

        try:
            state = scan_campaign(out, repair=True)
        except CampaignError as exc:
            assert exc.reason in _TYPED_REASONS
        else:
            seen = sorted(state.trials)
            assert seen == sorted(set(seen))  # each index at most once
            for index, record in state.trials.items():
                assert _strip_chain(record) == originals[index]
