"""Shared fixtures: a fully-valid synthetic cache, plus paths into the real
(seed) ``.repro_cache``, whose npz artifacts are all known-corrupt."""

from __future__ import annotations

from pathlib import Path

import pytest

from polygraphmr.faults import build_synthetic_model
from polygraphmr.store import ArtifactStore

REPO_ROOT = Path(__file__).resolve().parent.parent
SEED_CACHE = REPO_ROOT / ".repro_cache"

SYNTH_MEMBERS = ("ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX", "replica-001")


@pytest.fixture()
def synthetic_cache(tmp_path: Path) -> Path:
    """A cache root holding one fully-valid model named ``tinynet``."""

    root = tmp_path / "cache"
    build_synthetic_model(root, "tinynet", members=SYNTH_MEMBERS, n_val=160, n_test=160, seed=7)
    return root


@pytest.fixture()
def synthetic_store(synthetic_cache: Path) -> ArtifactStore:
    return ArtifactStore(synthetic_cache)


@pytest.fixture()
def seed_store() -> ArtifactStore:
    if not SEED_CACHE.is_dir():
        pytest.skip("seed .repro_cache not present")
    return ArtifactStore(SEED_CACHE)
