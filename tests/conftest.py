"""Shared fixtures: synthetic cache builders (every npz cache a test uses is
built here, never inline in a test file), plus paths into the real (seed)
``.repro_cache``, whose npz artifacts are all known-corrupt."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from polygraphmr.faults import build_synthetic_model
from polygraphmr.metrics import get_registry
from polygraphmr.store import ArtifactStore
from polygraphmr.tracing import get_tracer

try:  # hypothesis is a dev extra; only the property tests need it
    from hypothesis import settings

    # journal appends fsync per record — wall-clock deadlines just flake
    settings.register_profile("polygraphmr", deadline=None)
    settings.load_profile("polygraphmr")
except ImportError:
    pass

REPO_ROOT = Path(__file__).resolve().parent.parent
SEED_CACHE = REPO_ROOT / ".repro_cache"


@pytest.fixture(autouse=True)
def _reset_observability():
    """Metrics/tracing are process-global; isolate every test from the last."""

    get_registry().reset()
    get_tracer().reset()
    yield
    get_registry().reset()
    get_tracer().reset()

SYNTH_MEMBERS = ("ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX", "replica-001")


@pytest.fixture()
def synthetic_cache(tmp_path: Path) -> Path:
    """A cache root holding one fully-valid model named ``tinynet``."""

    root = tmp_path / "cache"
    build_synthetic_model(root, "tinynet", members=SYNTH_MEMBERS, n_val=160, n_test=160, seed=7)
    return root


@pytest.fixture()
def synthetic_store(synthetic_cache: Path) -> ArtifactStore:
    return ArtifactStore(synthetic_cache)


@pytest.fixture()
def multi_model_cache(tmp_path: Path) -> Path:
    """A cache root with four small valid models (``net-00`` … ``net-03``) —
    enough distinct models for a 4-worker parallel campaign, since trial
    ownership is partitioned by model."""

    root = tmp_path / "cache4"
    for i in range(4):
        build_synthetic_model(root, f"net-{i:02d}", n_val=64, n_test=64, seed=11 + i)
    return root


@pytest.fixture()
def bare_cache(tmp_path: Path):
    """Factory for a cache root with empty model directories — enough for
    campaign runners whose ``trial_fn`` is faked and never touches the store."""

    def build(*models: str) -> Path:
        root = tmp_path / "cache"
        for model in models or ("m",):
            (root / model).mkdir(parents=True)
        return root

    return build


@pytest.fixture()
def add_model(tmp_path: Path):
    """Factory that drops another fully-valid synthetic model into a cache."""

    def build(root: Path, model: str, *, n_val: int = 96, n_test: int = 96, seed: int = 3) -> Path:
        return build_synthetic_model(
            root, model, members=SYNTH_MEMBERS, n_val=n_val, n_test=n_test, seed=seed
        )

    return build


@pytest.fixture()
def write_probs():
    """Factory writing a raw probs npz (valid container, caller-chosen
    contents) — for tests that need a semantically-broken member."""

    def write(path: Path, probs: np.ndarray) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, probs=probs)
        return path

    return write


@pytest.fixture()
def seed_store() -> ArtifactStore:
    if not SEED_CACHE.is_dir():
        pytest.skip("seed .repro_cache not present")
    return ArtifactStore(SEED_CACHE)
