"""Fault injection: reproducibility, measurable degradation, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from polygraphmr.errors import ConfigError
from polygraphmr.faults import (
    FaultSpec,
    build_synthetic_model,
    corrupt_file_truncate,
    inject_bitflips,
    inject_gaussian,
    main,
    measure_degradation,
    sanitize_probs,
)
from polygraphmr.scenarios import get_builtin
from polygraphmr.store import ArtifactStore


class TestInjectors:
    def test_bitflips_seeded_reproducible(self):
        arr = np.linspace(0.0, 1.0, 256, dtype=np.float32).reshape(16, 16)
        a = inject_bitflips(arr, rate=0.1, rng=np.random.default_rng(9))
        b = inject_bitflips(arr, rate=0.1, rng=np.random.default_rng(9))
        c = inject_bitflips(arr, rate=0.1, rng=np.random.default_rng(10))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        # input untouched, and roughly rate*size elements changed
        assert arr[0, 0] == 0.0
        changed = (a != arr).sum()
        assert 1 <= changed <= 26

    def test_bitflip_zero_rate_is_identity(self):
        arr = np.ones((4, 4), dtype=np.float32)
        out = inject_bitflips(arr, rate=0.0, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out, arr)

    def test_gaussian_noise_scale(self):
        arr = np.zeros((1000,))
        out = inject_gaussian(arr, sigma=0.1, rng=np.random.default_rng(0))
        assert 0.05 < out.std() < 0.15
        assert arr.sum() == 0.0  # input untouched

    def test_fault_spec_dispatch(self):
        arr = np.full((8, 8), 0.5, dtype=np.float32)
        assert FaultSpec("bitflip", rate=0.2, seed=1).apply(arr).shape == (8, 8)
        assert FaultSpec("gaussian", sigma=0.1, seed=1).apply(arr).shape == (8, 8)
        with pytest.raises(ValueError):
            FaultSpec("rowhammer").apply(arr)

    def test_fault_spec_validates_at_construction(self):
        with pytest.raises(ConfigError) as exc_info:
            FaultSpec("rowhammer")
        assert exc_info.value.field == "fault.kind"
        assert "bitflip" in str(exc_info.value)  # lists the known kinds
        with pytest.raises(ConfigError) as exc_info:
            FaultSpec("bitflip", rate=1.5)
        assert exc_info.value.field == "fault.rate"
        assert exc_info.value.reason == "out-of-range"
        with pytest.raises(ConfigError) as exc_info:
            FaultSpec("gaussian", sigma=-0.1)
        assert exc_info.value.field == "fault.sigma"
        with pytest.raises(ConfigError) as exc_info:
            FaultSpec("bitflip", rate=float("nan"))
        assert exc_info.value.reason == "bad-type"

    def test_sanitize_repairs_bitflipped_probs(self):
        probs = np.full((32, 10), 0.1, dtype=np.float32)
        faulted = inject_bitflips(probs, rate=0.05, rng=np.random.default_rng(2))
        repaired = sanitize_probs(faulted)
        assert np.isfinite(repaired).all()
        np.testing.assert_allclose(repaired.sum(axis=1), 1.0, atol=1e-9)
        assert (repaired >= 0).all()


class TestArtifactCorruption:
    def test_truncation_reproducible_and_smaller(self, tmp_path):
        src = tmp_path / "src.npz"
        np.savez(src, probs=np.random.default_rng(0).random((100, 10)))
        a = corrupt_file_truncate(src, tmp_path / "a.npz", keep_fraction=0.5, seed=4)
        b = corrupt_file_truncate(src, tmp_path / "b.npz", keep_fraction=0.5, seed=4)
        assert a.read_bytes() == b.read_bytes()
        assert a.stat().st_size < src.stat().st_size


class TestDegradationMeasurement:
    def test_bitflips_measurably_degrade_detection(self, synthetic_store):
        """The acceptance-criterion API: seeded bit-flip injection produces a
        measurable change in misprediction-detection metrics."""

        spec = FaultSpec("bitflip", rate=0.05, seed=13)
        report = measure_degradation(synthetic_store, "tinynet", spec, seed=0)
        assert report["clean"]["auc"] > 0.6
        deltas = report["delta"]
        moved = max(abs(deltas[k]) for k in ("accuracy", "f1", "auc", "recall", "precision"))
        assert moved > 0.01, f"injection produced no measurable change: {deltas}"

    def test_report_reproducible(self, synthetic_store):
        spec = FaultSpec("bitflip", rate=0.05, seed=13)
        r1 = measure_degradation(synthetic_store, "tinynet", spec, seed=0)
        r2 = measure_degradation(synthetic_store, "tinynet", spec, seed=0)
        assert r1 == r2

    def test_zero_fault_is_no_op_on_metrics(self, synthetic_store):
        spec = FaultSpec("gaussian", sigma=0.0, seed=0)
        report = measure_degradation(synthetic_store, "tinynet", spec, seed=0)
        assert all(abs(v) < 1e-9 for v in report["delta"].values())
        assert report["override"]["clean"] == report["override"]["faulted"]
        assert report["degraded"] is False

    def test_scenario_fault_measures_degradation(self, synthetic_store):
        fault = get_builtin("channel-bitflip-10pct").fault(21)
        report = measure_degradation(synthetic_store, "tinynet", fault, seed=0)
        assert report["fault"]["scenario"] == "channel-bitflip-10pct"
        assert report["fault"]["scenario_sha256"]
        assert 0.0 <= report["override"]["faulted"] <= 1.0
        again = measure_degradation(synthetic_store, "tinynet", fault, seed=0)
        assert report == again

    def test_weights_target_perturbs_the_gate_not_the_inputs(self, synthetic_store):
        fault = get_builtin("gate-weights-bitflip-1").fault(4)
        report = measure_degradation(synthetic_store, "tinynet", fault, seed=0)
        # inputs stay clean, so clean targets == faulted targets: n agrees
        assert report["clean"]["n"] == report["faulted"]["n"]
        # and the module is restored: a second clean measurement is unchanged
        clean_again = measure_degradation(
            synthetic_store, "tinynet", FaultSpec("gaussian", sigma=0.0), seed=0
        )
        assert clean_again["clean"] == report["clean"]


class TestCLI:
    def test_synthetic_run_exits_zero(self, tmp_path, capsys):
        rc = main(["--synthetic", str(tmp_path / "demo"), "--rate", "0.02", "--seed", "3"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        (report,) = out["reports"]
        assert report["model"] == "synthetic"
        assert "clean" in report and "faulted" in report

    def test_seed_cache_run_reports_errors_not_crashes(self, capsys):
        """Against the wholly-corrupt seed cache the CLI must finish, emit a
        structured error per model, and signal failure via exit code."""

        from .conftest import SEED_CACHE

        if not SEED_CACHE.is_dir():
            pytest.skip("seed cache absent")
        rc = main(["--cache", str(SEED_CACHE), "--model", "resnet20"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 1
        (report,) = out["reports"]
        assert "error" in report

    def test_explicit_cache_dir(self, tmp_path, capsys):
        build_synthetic_model(tmp_path, "m1", seed=5)
        rc = main(["--cache", str(tmp_path), "--kind", "gaussian", "--sigma", "0.2"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["reports"][0]["fault"]["kind"] == "gaussian"

    def test_json_report_includes_scenario_identity(self, tmp_path, capsys):
        rc = main(
            ["--synthetic", str(tmp_path / "demo"), "--scenario", "quantize-4bit", "--json"]
        )
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["schema"] == "polygraphmr/faults-report/v1"
        assert out["scenario"]["name"] == "quantize-4bit"
        assert len(out["scenario"]["sha256"]) == 64
        assert out["fault"]["scenario_sha256"] == out["scenario"]["sha256"]
        (report,) = out["reports"]
        assert report["fault"]["scenario"] == "quantize-4bit"

    def test_json_report_without_scenario_has_null_scenario(self, tmp_path, capsys):
        rc = main(["--synthetic", str(tmp_path / "demo"), "--kind", "gaussian", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["scenario"] is None
        assert out["fault"]["kind"] == "gaussian"

    def test_unknown_scenario_exits_2_with_library_listing(self, tmp_path, capsys):
        rc = main(["--synthetic", str(tmp_path / "demo"), "--scenario", "nope"])
        assert rc == 2
        assert "quantize-4bit" in capsys.readouterr().err

    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "channel-bitflip-10pct" in out
        assert main(["--list-scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "polygraphmr/scenario-library/v1"
        assert len(payload["scenarios"]) >= 8

    def test_store_quarantines_synthetic_truncation_end_to_end(self, tmp_path):
        """Artifact-level injector + store: the full robustness loop."""

        build_synthetic_model(tmp_path, "m1", seed=6)
        store = ArtifactStore(tmp_path)
        src = store.probs_path("m1", "ORG", "val")
        corrupt_file_truncate(src, src, keep_fraction=0.5, seed=7)
        assert store.try_load_probs("m1", "ORG", "val") is None
        assert store.is_quarantined(src)
