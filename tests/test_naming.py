"""Canonical name mapping, exercised over every greedy file in the seed cache."""

from __future__ import annotations

import json
import re

import pytest

from polygraphmr.errors import ArtifactCorrupt
from polygraphmr.naming import (
    STANDARD_PREPROCESSORS,
    display_to_stem,
    resolve_greedy_file,
    standard_roster,
    stem_to_display,
)

from .conftest import SEED_CACHE


@pytest.mark.parametrize(
    ("display", "stem"),
    [
        ("ORG", "ORG"),
        ("Hist", "pp-Hist"),
        ("AdHist", "pp-AdHist"),
        ("ConNorm", "pp-ConNorm"),
        ("FlipX", "pp-FlipX"),
        ("FlipY", "pp-FlipY"),
        ("ImAdj", "pp-ImAdj"),
        ("Gamma(2)", "pp-Gamma_2"),
        ("Gamma(1.5)", "pp-Gamma_1p5"),
        ("replica-003", "replica-003"),
    ],
)
def test_display_stem_round_trip(display: str, stem: str):
    assert display_to_stem(display) == stem
    assert stem_to_display(stem) == display


def test_unknown_names_rejected():
    with pytest.raises(ValueError):
        display_to_stem("Gamma(2")  # unbalanced parens
    with pytest.raises(ValueError):
        stem_to_display("weird/stem")


def test_standard_roster_is_complete():
    roster = standard_roster()
    assert roster[0] == "ORG"
    assert len(roster) == 1 + len(STANDARD_PREPROCESSORS) + 5
    assert "pp-Gamma_1p5" in roster
    assert "replica-005" in roster


def _all_greedy_files():
    if not SEED_CACHE.is_dir():
        return []
    return sorted(SEED_CACHE.glob("*/greedy-*.json"))


@pytest.mark.parametrize("greedy_path", _all_greedy_files(), ids=lambda p: f"{p.parent.name}/{p.name}")
def test_every_seed_greedy_file_resolves(greedy_path):
    """Every entry in every greedy file maps to a canonical stem, the stem
    names real files in that model directory (possibly corrupt — presence is
    what naming guarantees), and the mapping round-trips."""

    stems = resolve_greedy_file(greedy_path)
    k = int(re.match(r"greedy-(\d+)", greedy_path.name).group(1))
    assert len(stems) == k
    assert stems[0] == "ORG"
    # models whose capture was cut short (resnet20) may lack files for some
    # stems; a complete model directory must have them all
    dir_complete = len(list(greedy_path.parent.glob("*.npz"))) >= 3 * len(standard_roster())
    for stem in stems:
        assert re.fullmatch(r"ORG|pp-[A-Za-z0-9]+(_[A-Za-z0-9p]+)?|replica-\d{3}", stem)
        matches = list(greedy_path.parent.glob(f"{stem}.*"))
        if dir_complete:
            assert matches, f"{greedy_path}: stem {stem!r} names no files in {greedy_path.parent}"
    # round-trip through display names is lossless
    originals = json.loads(greedy_path.read_text())
    assert [stem_to_display(s) for s in stems] == originals


def test_resolve_greedy_rejects_bad_json(tmp_path):
    bad = tmp_path / "greedy-4.json"
    bad.write_text("{not json")
    with pytest.raises(ArtifactCorrupt) as exc_info:
        resolve_greedy_file(bad)
    assert exc_info.value.reason == "bad-json"

    not_list = tmp_path / "greedy-6.json"
    not_list.write_text('{"a": 1}')
    with pytest.raises(ArtifactCorrupt):
        resolve_greedy_file(not_list)
