"""Differential suite for the batched trial engine: batching is an execution
detail, so every campaign artifact — journal bytes, chain links, checkpoint —
must be byte-identical to the serial per-trial loop's, across scenario
sweeps, timeouts, tripping breakers, kills, and worker × batch-size combos.
Plus hypothesis properties pinning the vectorized injectors to their serial
counterparts element-for-element."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from polygraphmr.batching import (
    DEFAULT_BATCH_SIZE,
    PRISTINE_BREAKER,
    BatchTrialEngine,
    board_is_steady,
    plan_windows,
)
from polygraphmr.campaign import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    scenarios_config_field,
    verify_campaign,
)
from polygraphmr.decision import ensemble_features, ensemble_features_batch
from polygraphmr.faults import (
    FAULT_MODELS,
    SURFACES,
    FaultSpec,
    apply_fault,
    apply_fault_batch,
    corrupt_file_truncate,
    sanitize_probs,
    sanitize_probs_batch,
    select_fault_indices,
    select_fault_indices_batch,
)
from polygraphmr.metrics import get_registry
from polygraphmr.parallel import ParallelCampaignRunner
from polygraphmr.scenarios import resolve_scenarios

SWEEP = ("channel-bitflip-10pct", "quantize-4bit", "stuck-at-zero-1pct")


def _config(cache, **overrides) -> CampaignConfig:
    base = dict(cache=str(cache), n_trials=12, seed=7, timeout_s=60.0)
    base.update(overrides)
    return CampaignConfig(**base)


def _sweep_config(cache, **overrides) -> CampaignConfig:
    overrides.setdefault("scenarios", scenarios_config_field(resolve_scenarios(SWEEP)))
    return _config(cache, **overrides)


def _bytes(out_dir) -> tuple[bytes, bytes]:
    return (out_dir / JOURNAL_NAME).read_bytes(), (out_dir / CHECKPOINT_NAME).read_bytes()


class TestPlanner:
    def test_windows_tile_the_pending_list_in_order(self):
        pending = list(range(23))
        windows = plan_windows(pending, 4, 4)
        assert [w for win in windows for w in win] == pending
        assert [len(w) for w in windows] == [16, 7]

    def test_degenerate_sizes_clamp_to_one(self):
        assert plan_windows([5, 9], 0, 0) == [[5], [9]]
        assert plan_windows([], 4, 16) == []

    def test_span_scales_with_models_so_each_gets_a_full_batch(self):
        windows = plan_windows(list(range(12)), 3, 2)
        assert [len(w) for w in windows] == [6, 6]


class TestBoardSteadiness:
    PRE = {"tick_count": 4, "breakers": {"m/a": dict(PRISTINE_BREAKER)}}

    def test_one_tick_no_activity_is_steady(self):
        post = {"tick_count": 5, "breakers": {"m/a": dict(PRISTINE_BREAKER)}}
        assert board_is_steady(self.PRE, post)

    def test_new_pristine_entry_is_steady(self):
        post = {
            "tick_count": 5,
            "breakers": {"m/a": dict(PRISTINE_BREAKER), "m/b": dict(PRISTINE_BREAKER)},
        }
        assert board_is_steady(self.PRE, post)

    def test_tick_skew_changed_entry_or_lost_entry_break_steadiness(self):
        assert not board_is_steady(self.PRE, {"tick_count": 6, "breakers": {"m/a": dict(PRISTINE_BREAKER)}})
        tripped = dict(PRISTINE_BREAKER, consecutive_failures=1)
        assert not board_is_steady(self.PRE, {"tick_count": 5, "breakers": {"m/a": tripped}})
        assert not board_is_steady(self.PRE, {"tick_count": 5, "breakers": {"m/b": dict(PRISTINE_BREAKER)}})
        assert not board_is_steady(self.PRE, {"tick_count": 5, "breakers": {}})


class TestJournalBatchFlush:
    def test_append_many_matches_sequential_appends_and_returns_seals(self, tmp_path):
        records = [{"type": "trial", "index": i, "payload": i * 3} for i in range(5)]
        one = CampaignJournal(tmp_path / "one.jsonl")
        heads = []
        for record in records:
            one.append(dict(record))
            heads.append(one.head)
        many = CampaignJournal(tmp_path / "many.jsonl")
        seals = many.append_many([dict(r) for r in records])
        assert (tmp_path / "many.jsonl").read_bytes() == (tmp_path / "one.jsonl").read_bytes()
        assert seals == heads
        assert many.head == one.head
        assert many.append_many([]) == []


class TestSerialBatchedEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 3, DEFAULT_BATCH_SIZE])
    def test_legacy_campaign_is_byte_identical(self, multi_model_cache, tmp_path, batch_size):
        config = _config(multi_model_cache)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        summary = CampaignRunner(config, tmp_path / "batched", batch_size=batch_size).run()
        assert summary["completed"] == config.n_trials
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        assert verify_campaign(tmp_path / "batched")["exit_code"] == 0
        if batch_size > 1:
            batched = get_registry().counter("campaign_batched_trials_total").value
            assert batched > 0, "batched fast path never engaged"

    @pytest.mark.parametrize("batch_size", [2, 8])
    def test_scenario_sweep_is_byte_identical(self, synthetic_cache, tmp_path, batch_size):
        config = _sweep_config(synthetic_cache, n_trials=9)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        CampaignRunner(config, tmp_path / "batched", batch_size=batch_size).run()
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        assert verify_campaign(tmp_path / "batched")["exit_code"] == 0

    def test_tripping_breakers_fall_back_to_the_serial_path(self, multi_model_cache, tmp_path):
        victim = multi_model_cache / "net-01"
        for split in ("val", "test"):
            target = victim / f"pp-Gamma_2.{split}.probs.npz"
            corrupt_file_truncate(target, target, keep_fraction=0.2, seed=5)
        config = _config(multi_model_cache, failure_threshold=2, cooldown_ticks=1)
        serial = CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        assert serial["breakers"], "stressor failed to trip any breaker"
        batched = CampaignRunner(config, tmp_path / "batched", batch_size=4).run()
        assert batched["breakers"] == serial["breakers"]
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        fallback = get_registry().counter(
            "campaign_batch_fallback_total", reason="breaker-activity"
        ).value
        assert fallback > 0, "breaker activity never forced a serial fallback"

    def test_timeouts_are_journalled_identically(self, multi_model_cache, tmp_path):
        # a 1 µs budget always fires before a real trial can finish, so every
        # probe times out and the whole campaign replays down the serial path
        config = _config(multi_model_cache, n_trials=8, timeout_s=1e-6)
        serial = CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        assert serial["outcomes"].get("trial_timeout") == 8
        CampaignRunner(config, tmp_path / "batched", batch_size=4).run()
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")

    def test_kernel_timeout_falls_back_to_serial_replay(self, synthetic_cache, tmp_path, monkeypatch):
        config = _config(synthetic_cache, n_trials=4, timeout_s=0.75)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()

        def stall(self, model, indices):  # never touches the executor
            import time

            time.sleep(10)

        monkeypatch.setattr(BatchTrialEngine, "_run_batch", stall)
        CampaignRunner(config, tmp_path / "batched", batch_size=4).run()
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        assert get_registry().counter("campaign_batch_fallback_total", reason="timeout").value > 0

    def test_kernel_error_falls_back_to_serial_replay(self, synthetic_cache, tmp_path, monkeypatch):
        config = _config(synthetic_cache, n_trials=4)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()

        def explode(self, model, indices):
            raise RuntimeError("kernel blew up")

        monkeypatch.setattr(BatchTrialEngine, "_run_batch", explode)
        CampaignRunner(config, tmp_path / "batched", batch_size=4).run()
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        assert get_registry().counter("campaign_batch_fallback_total", reason="error").value > 0

    def test_interrupted_batched_run_resumes_to_identical_bytes(self, multi_model_cache, tmp_path):
        config = _config(multi_model_cache)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        partial = CampaignRunner(config, tmp_path / "batched", batch_size=4).run(max_new_trials=5)
        assert partial["stopped_early"] and partial["completed"] == 5
        resumed = CampaignRunner(config, tmp_path / "batched", batch_size=4).run(resume=True)
        assert resumed["completed"] == config.n_trials
        assert _bytes(tmp_path / "batched") == _bytes(tmp_path / "serial")
        assert verify_campaign(tmp_path / "batched")["exit_code"] == 0

    def test_custom_trial_fn_disables_batching(self, bare_cache, tmp_path):
        config = _config(bare_cache("m"), n_trials=3)
        runner = CampaignRunner(
            config, tmp_path / "out", trial_fn=lambda spec: {"model": spec.model}
        )
        assert not runner.use_batch  # faked trial bodies have no kernel
        assert runner.run()["completed"] == 3


class TestThreeWayEquivalenceMatrix:
    @pytest.mark.parametrize(("workers", "batch_size"), [(2, 1), (2, 8), (4, 4)])
    def test_serial_parallel_batched_all_match(self, multi_model_cache, tmp_path, workers, batch_size):
        config = _config(multi_model_cache)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        CampaignRunner(config, tmp_path / "batched", batch_size=batch_size).run()
        par = ParallelCampaignRunner(
            config, tmp_path / "par", workers=workers, batch_size=batch_size
        ).run()
        assert par["failed_workers"] == []
        reference = _bytes(tmp_path / "serial")
        assert _bytes(tmp_path / "batched") == reference
        assert _bytes(tmp_path / "par") == reference
        assert verify_campaign(tmp_path / "par")["exit_code"] == 0

    def test_scenario_sweep_three_way(self, multi_model_cache, tmp_path):
        config = _sweep_config(multi_model_cache)
        CampaignRunner(config, tmp_path / "serial", use_batch=False).run()
        CampaignRunner(config, tmp_path / "batched", batch_size=4).run()
        par = ParallelCampaignRunner(config, tmp_path / "par", workers=4, batch_size=4).run()
        assert par["failed_workers"] == []
        reference = _bytes(tmp_path / "serial")
        assert _bytes(tmp_path / "batched") == reference
        assert _bytes(tmp_path / "par") == reference


class TestScenarioResolutionHoisting:
    def test_one_resolution_per_campaign(self, synthetic_cache, tmp_path, monkeypatch):
        """Regression: derive_trial_spec used to re-parse the scenario list on
        every call in the hot loop; resolution is now hoisted into the
        executor, so a whole campaign parses each scenario exactly once."""

        import polygraphmr.scenarios as scenarios_mod
        from polygraphmr.campaign import _scenarios_from_canonical

        config = _sweep_config(synthetic_cache)
        _scenarios_from_canonical.cache_clear()
        real = scenarios_mod.parse_scenario
        calls = []
        monkeypatch.setattr(
            scenarios_mod, "parse_scenario", lambda d: calls.append(1) or real(d)
        )
        summary = CampaignRunner(config, tmp_path / "out", batch_size=4).run()
        assert summary["completed"] == config.n_trials
        assert len(calls) == len(SWEEP), "scenario list was re-parsed in the hot loop"


# ---------------------------------------------------------------------------
# hypothesis properties: vectorized injectors ≡ per-trial serial loop
# ---------------------------------------------------------------------------


@st.composite
def _batch_case(draw):
    b = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=2, max_value=6))
    c = draw(st.integers(min_value=2, max_value=5))
    seeds = draw(st.lists(st.integers(min_value=0, max_value=5), min_size=b, max_size=b))
    base = draw(st.integers(min_value=0, max_value=99))
    stacked = np.random.default_rng(base).random((b, n, c))
    return stacked, seeds


FAULT_PARAMS = st.fixed_dictionaries(
    {
        "surface": st.sampled_from(SURFACES),
        "kind": st.sampled_from(FAULT_MODELS),
        "rate": st.sampled_from([0.0, 0.1, 0.5, 1.0]),
        "sigma": st.sampled_from([0.0, 0.3, 1.5]),
        "step": st.sampled_from([0.0625, 0.25]),
        "count": st.integers(min_value=0, max_value=5),
    }
)


class TestVectorizedInjectorProperties:
    @settings(max_examples=40)
    @given(case=_batch_case(), params=FAULT_PARAMS)
    def test_apply_fault_batch_equals_serial_loop(self, case, params):
        stacked, seeds = case
        before = stacked.copy()
        batched = apply_fault_batch(stacked, seeds=seeds, **params)
        assert np.array_equal(stacked, before), "batched injection mutated its input"
        for i, seed in enumerate(seeds):
            serial = apply_fault(stacked[i], rng=np.random.default_rng(seed), **params)
            assert batched[i].dtype == serial.dtype
            assert np.array_equal(batched[i], serial), f"slice {i} diverged from serial"

    @settings(max_examples=40)
    @given(case=_batch_case(), params=FAULT_PARAMS)
    def test_select_indices_batch_equals_serial_loop(self, case, params):
        stacked, seeds = case
        rows = select_fault_indices_batch(
            stacked.shape[1:],
            params["surface"],
            rate=params["rate"],
            count=params["count"],
            seeds=seeds,
        )
        assert rows.shape[0] in (0, len(seeds))
        for i, seed in enumerate(seeds):
            serial = select_fault_indices(
                stacked.shape[1:],
                params["surface"],
                rate=params["rate"],
                count=params["count"],
                rng=np.random.default_rng(seed),
            )
            got = rows[i] if rows.shape[0] else np.empty(0, dtype=np.int64)
            assert np.array_equal(got, serial)

    @settings(max_examples=40)
    @given(
        case=_batch_case(),
        kind=st.sampled_from(["bitflip", "gaussian"]),
        rate=st.sampled_from([0.0, 0.2, 0.9]),
        sigma=st.sampled_from([0.0, 0.7]),
    )
    def test_fault_spec_apply_batch_equals_serial_loop(self, case, kind, rate, sigma):
        stacked, seeds = case
        spec = FaultSpec(kind=kind, rate=rate, sigma=sigma, seed=seeds[0])
        before = stacked.copy()
        batched = spec.apply_batch(stacked, seeds=seeds)
        assert np.array_equal(stacked, before)
        for i, seed in enumerate(seeds):
            serial = FaultSpec(kind=kind, rate=rate, sigma=sigma, seed=seed).apply(stacked[i])
            assert np.array_equal(batched[i], serial)

    @settings(max_examples=30)
    @given(case=_batch_case(), name=st.sampled_from(SWEEP))
    def test_scenario_fault_apply_batch_equals_serial_loop(self, case, name):
        stacked, seeds = case
        (scenario,) = resolve_scenarios([name])
        batched = scenario.fault(seeds[0]).apply_batch(stacked, seeds=seeds)
        for i, seed in enumerate(seeds):
            assert np.array_equal(batched[i], scenario.fault(seed).apply(stacked[i]))

    @settings(max_examples=40)
    @given(
        b=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=1, max_value=5),
        c=st.integers(min_value=2, max_value=4),
        base=st.integers(min_value=0, max_value=99),
        poison=st.sampled_from(["none", "nan", "inf", "negative", "dead-row"]),
    )
    def test_sanitize_probs_batch_equals_serial_loop(self, b, n, c, base, poison):
        arr = np.random.default_rng(base).random((b, n, c))
        if poison == "nan":
            arr[..., 0] = np.nan
        elif poison == "inf":
            arr[..., 0] = np.inf
        elif poison == "negative":
            arr[..., 0] = -3.0
        elif poison == "dead-row":
            arr[:, 0, :] = 0.0
        before = arr.copy()
        batched = sanitize_probs_batch(arr)
        assert np.array_equal(arr, before, equal_nan=True)
        for i in range(b):
            assert np.array_equal(batched[i], sanitize_probs(arr[i]))

    @settings(max_examples=30)
    @given(
        b=st.integers(min_value=1, max_value=3),
        m=st.integers(min_value=2, max_value=4),
        n=st.integers(min_value=2, max_value=6),
        c=st.integers(min_value=2, max_value=4),
        base=st.integers(min_value=0, max_value=99),
    )
    def test_ensemble_features_batch_equals_serial_loop(self, b, m, n, c, base):
        raw = np.random.default_rng(base).random((b, m, n, c))
        stacked = raw / raw.sum(axis=-1, keepdims=True)
        batched = ensemble_features_batch(stacked)
        for i in range(b):
            assert np.array_equal(batched[i], ensemble_features(stacked[i]))
