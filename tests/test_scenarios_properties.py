"""Property tests for scenario round-tripping: parse → canonicalize → hash
stability, exact-field-path rejection of corrupted configs, and built-in
determinism under arbitrary seeds."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from polygraphmr.errors import ConfigError
from polygraphmr.faults import FAULT_MODELS, SURFACES
from polygraphmr.scenarios import SCENARIO_FIELDS, builtin_scenarios, parse_scenario

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.", min_size=1, max_size=24
)
_rates = st.floats(min_value=0.001, max_value=1.0, allow_nan=False).map(float)


@st.composite
def scenario_dicts(draw) -> dict:
    """Always-valid scenario mappings spanning every surface × kind."""

    surface = draw(st.sampled_from(SURFACES))
    kind = draw(st.sampled_from(FAULT_MODELS))
    d: dict = {
        "name": draw(_names),
        "surface": surface,
        "kind": kind,
        "target": draw(st.sampled_from(["probs", "weights"])),
    }
    if surface == "element":
        d["count"] = draw(st.integers(min_value=1, max_value=64))
    else:
        d["rate"] = draw(_rates)
    if kind == "gaussian":
        d["sigma"] = draw(_rates)
    if kind == "quantize":
        d["step"] = draw(_rates)
    return d


class TestCanonicalizationProperties:
    @given(scenario_dicts())
    def test_parse_canonicalize_hash_is_stable(self, d):
        """parse → canonical → parse is a fixed point, and the hash only
        depends on the canonical form — not on input key order."""

        s = parse_scenario(d)
        again = parse_scenario(s.canonical())
        assert again == s
        assert again.config_hash() == s.config_hash()
        shuffled = dict(reversed(list(d.items())))
        assert parse_scenario(shuffled).config_hash() == s.config_hash()

    @given(scenario_dicts())
    def test_canonical_json_is_loadable_and_complete(self, d):
        s = parse_scenario(d)
        decoded = json.loads(s.canonical_json())
        assert set(decoded) == set(SCENARIO_FIELDS)
        assert decoded["name"] == d["name"]

    @given(scenario_dicts(), st.sampled_from(sorted(SCENARIO_FIELDS)))
    def test_corruption_is_rejected_with_the_exact_field_path(self, d, field):
        """Replacing any field with a structurally wrong value must raise
        ConfigError naming that field (or a field it conflicts with)."""

        corrupted = {**parse_scenario(d).canonical(), field: object()}
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario(corrupted, source="fuzz.json")
        assert exc_info.value.field.startswith("fuzz.json: scenario.")

    @given(scenario_dicts(), _names)
    def test_unknown_fields_are_rejected_by_name(self, d, extra_key):
        if extra_key in SCENARIO_FIELDS:
            return
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario({**d, extra_key: 1})
        assert exc_info.value.field == f"scenario.{extra_key}"
        assert exc_info.value.reason == "unknown-field"


class TestBuiltinDeterminismProperties:
    @settings(max_examples=25)
    @given(
        st.sampled_from(sorted(builtin_scenarios())),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_every_builtin_is_byte_deterministic_under_any_seed(self, name, seed):
        scenario = builtin_scenarios()[name]
        arr = np.random.default_rng(7).random((24, 10))
        pristine = arr.copy()
        a = scenario.fault(seed).apply(arr)
        b = scenario.fault(seed).apply(arr)
        assert a.tobytes() == b.tobytes()
        np.testing.assert_array_equal(arr, pristine)  # mutation-free
        assert scenario.fault(seed).describe() == scenario.fault(seed).describe()
