"""Metrics registry, tracing spans, and their wiring into the hot paths:
store loads, breaker transitions, retry exhaustion, error taxonomy, and the
campaign metrics lifecycle (shard cleanup + ``metrics.json``)."""

from __future__ import annotations

import json
import pathlib

import pytest

from polygraphmr.breaker import CLOSED, HALF_OPEN, OPEN, BreakerPolicy, CircuitBreaker
from polygraphmr.campaign import CampaignConfig, CampaignRunner
from polygraphmr.errors import (
    CampaignError,
    RetryPolicy,
    TransientIOError,
    retry_with_backoff,
)
from polygraphmr.metrics import (
    METRICS_NAME,
    Histogram,
    MetricsRegistry,
    get_registry,
    load_registry,
    merge_registries,
    metrics_shard_name,
    metrics_shards,
)
from polygraphmr.store import ArtifactStore
from polygraphmr.tracing import Tracer


class TestCounterAndGauge:
    def test_counter_accumulates_and_rejects_negatives(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", kind="a")
        c.inc()
        c.inc(4)
        assert reg.counter_value("events_total", kind="a") == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_total_sums_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("events_total", kind="a").inc(2)
        reg.counter("events_total", kind="b").inc(3)
        assert reg.counter_total("events_total") == 5

    def test_gauge_set_and_read(self):
        reg = MetricsRegistry()
        reg.gauge("workers").set(4)
        assert reg.gauge_value("workers") == 4.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")


class TestHistogram:
    def test_observations_land_in_upper_bound_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        # 0.05 and 0.1 -> le=0.1; 0.5 -> le=1.0; 5.0 -> le=10.0; 100 -> overflow
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(105.65)

    def test_quantile_is_smallest_bound_reaching_target(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(0.75) == 1.0
        assert h.quantile(1.0) == 10.0

    def test_empty_quantile_is_none_and_overflow_reports_last_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        assert h.quantile(0.5) is None
        h.observe(99.0)
        assert h.quantile(0.5) == 1.0  # best the bucket layout can say

    def test_invalid_bounds_raise(self):
        import threading

        lock = threading.Lock()
        with pytest.raises(ValueError):
            Histogram((), lock)
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0), lock)
        with pytest.raises(ValueError):
            Histogram((1.0, float("inf")), lock)

    def test_merge_requires_identical_buckets(self):
        a = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        b = MetricsRegistry().histogram("lat", buckets=(0.2, 1.0))
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestRegistrySerialisation:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("loads_total", kind="probs", result="hit").inc(7)
        reg.gauge("workers").set(3)
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_to_dict_from_dict_round_trip(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_write_json_load_registry_round_trip(self, tmp_path):
        reg = self._populated()
        path = reg.write_json(tmp_path / "m.json")
        loaded = load_registry(path)
        assert loaded is not None
        assert loaded.to_dict() == reg.to_dict()

    def test_load_registry_is_none_on_garbage_or_absence(self, tmp_path):
        assert load_registry(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert load_registry(bad) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"version": 99}), encoding="utf-8")
        assert load_registry(wrong) is None

    def test_merge_registries_adds_maxes_and_folds(self):
        a = self._populated()
        b = self._populated()
        b.gauge("workers").set(9)
        merged = merge_registries([a, b])
        assert merged.counter_value("loads_total", kind="probs", result="hit") == 14
        assert merged.gauge_value("workers") == 9.0
        h = merged.histogram_for("lat")
        assert h is not None and h.count == 4
        assert h.sum == pytest.approx(1.1)

    def test_prometheus_exposition_shape(self):
        reg = self._populated()
        text = reg.to_prometheus()
        assert "# TYPE loads_total counter" in text
        assert 'loads_total{kind="probs",result="hit"} 7' in text
        assert "# TYPE workers gauge" in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text
        assert text.endswith("\n")


class TestShardDiscovery:
    def test_shard_names_never_collide_with_the_merged_file(self, tmp_path):
        assert metrics_shard_name(3) == "metrics.w03.json"
        (tmp_path / METRICS_NAME).write_text("{}", encoding="utf-8")
        (tmp_path / "metrics.w00.json").write_text("{}", encoding="utf-8")
        (tmp_path / "metrics.w1.json").write_text("{}", encoding="utf-8")  # too few digits
        (tmp_path / "journal.w00.jsonl").write_text("", encoding="utf-8")
        shards = metrics_shards(tmp_path)
        assert list(shards) == [0]
        assert shards[0].name == "metrics.w00.json"


class TestTracing:
    def test_spans_nest_and_record_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", model="m") as outer:
            with tracer.span("inner") as inner:
                inner.set(outcome="ok")
            assert inner.parent_id == outer.span_id
        records = tracer.finished()
        assert [r.name for r in records] == ["inner", "outer"]
        assert records[0].parent_id == records[1].span_id
        assert records[0].attrs == {"outcome": "ok"}
        assert records[1].duration_s >= records[0].duration_s

    def test_span_observes_duration_into_histogram(self):
        tracer = Tracer()
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        with tracer.span("timed", observe=h):
            pass
        assert h.count == 1

    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished() == []


class TestHotPathWiring:
    def test_store_load_hit_is_counted_and_timed(self, synthetic_store):
        reg = get_registry()
        synthetic_store.load_probs("tinynet", "ORG", "val")
        assert reg.counter_value("store_load_total", kind="probs", result="hit") == 1
        h = reg.histogram_for("store_load_seconds", kind="probs")
        assert h is not None and h.count == 1

    def test_error_taxonomy_counter_counts_construction(self):
        reg = get_registry()
        CampaignError("no-models", "detail")
        assert reg.counter_value("errors_total", type="CampaignError", reason="no-models") == 1

    def test_breaker_transitions_and_skips_are_counted(self):
        reg = get_registry()
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown_ticks=2))
        b.record_failure(tick=0)
        assert b.state == OPEN
        assert not b.allow(tick=1)  # still cooling down -> cheap skip
        assert b.allow(tick=2)  # probe admitted
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED
        assert reg.counter_value("breaker_transitions_total", to=OPEN) == 1
        assert reg.counter_value("breaker_transitions_total", to=HALF_OPEN) == 1
        assert reg.counter_value("breaker_transitions_total", to=CLOSED) == 1
        assert reg.counter_value("breaker_skips_total") == 1


class TestRetryCounters:
    def test_retry_exhaustion_increments_store_and_taxonomy_counters(
        self, synthetic_store, monkeypatch
    ):
        """A load whose retries exhaust must show up in *both* the store
        counters and the error taxonomy — the satellite fix this PR makes."""

        reg = get_registry()
        store = ArtifactStore(
            synthetic_store.root,
            retry_policy=RetryPolicy(attempts=3, sleep=lambda _s: None),
        )
        monkeypatch.setattr(
            pathlib.Path,
            "read_bytes",
            lambda _self: (_ for _ in ()).throw(OSError("disk hiccup")),
        )
        with pytest.raises(TransientIOError):
            store.load_probs("tinynet", "ORG", "val")
        assert reg.counter_value("retry_attempts_total") == 3
        assert reg.counter_value("retry_exhausted_total") == 1
        assert reg.counter_value("errors_total", type="TransientIOError", reason="") == 1
        assert reg.counter_value("store_load_total", kind="probs", result="io-error") == 1

    def test_sleep_budget_clamp_is_detected_and_counted(self):
        reg = get_registry()
        clamped = RetryPolicy(
            attempts=5, base_delay=2.0, max_delay=8.0, max_total_sleep=1.0, sleep=lambda _s: None
        )
        assert clamped.sleep_budget_clamped()
        assert sum(clamped.schedule()) <= clamped.max_total_sleep
        roomy = RetryPolicy(attempts=3, base_delay=0.01, max_total_sleep=10.0, sleep=lambda _s: None)
        assert not roomy.sleep_budget_clamped()

        def always_fails():
            raise OSError("nope")

        with pytest.raises(TransientIOError):
            retry_with_backoff(always_fails, policy=clamped)
        assert reg.counter_value("retry_sleep_budget_exhausted_total") == 1
        with pytest.raises(TransientIOError):
            retry_with_backoff(always_fails, policy=roomy)
        assert reg.counter_value("retry_sleep_budget_exhausted_total") == 1  # unchanged


class TestCampaignMetricsLifecycle:
    def test_serial_run_writes_metrics_json_and_counts_trials(self, tmp_path, bare_cache):
        cache = bare_cache("m")
        config = CampaignConfig(cache=str(cache), n_trials=4)
        runner = CampaignRunner(
            config, tmp_path / "out", trial_fn=lambda spec: {"model": spec.model}
        )
        summary = runner.run()
        reg = runner.merged_registry
        assert reg.counter_total("campaign_trials_total") == 4
        assert reg.counter_value("campaign_trials_total", outcome="ok") == 4
        h = reg.histogram_for("campaign_trial_seconds")
        assert h is not None and h.count == 4
        assert reg.gauge_value("campaign_trials_completed") == 4.0
        metrics_path = tmp_path / "out" / METRICS_NAME
        assert summary["metrics"] == str(metrics_path)
        on_disk = load_registry(metrics_path)
        assert on_disk is not None
        assert on_disk.counter_total("campaign_trials_total") == 4

    def test_watchdog_fires_are_counted(self, tmp_path, bare_cache):
        import time as time_mod

        cache = bare_cache("m")

        def hangs(spec):
            if spec.index == 1:
                time_mod.sleep(30)
            return {}

        config = CampaignConfig(cache=str(cache), n_trials=3, timeout_s=0.2)
        runner = CampaignRunner(config, tmp_path / "out", trial_fn=hangs)
        runner.run()
        reg = runner.merged_registry
        assert reg.counter_value("campaign_watchdog_fired_total") == 1
        assert reg.counter_value("campaign_trials_total", outcome="trial_timeout") == 1

    def test_stale_metric_shards_are_discarded_not_merged(self, tmp_path, bare_cache):
        cache = bare_cache("m")
        out = tmp_path / "out"
        out.mkdir()
        stale = MetricsRegistry()
        stale.counter("campaign_trials_total", outcome="ok").inc(1000)
        stale.write_json(out / metrics_shard_name(0))
        config = CampaignConfig(cache=str(cache), n_trials=2)
        runner = CampaignRunner(config, out, trial_fn=lambda spec: {})
        runner.run()
        assert metrics_shards(out) == {}
        assert runner.merged_registry.counter_total("campaign_trials_total") == 2
