"""Declarative scenarios: parsing, validation field paths, the built-in
library, multi-resolution injection semantics, and journalled identity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from polygraphmr.errors import ConfigError
from polygraphmr.faults import (
    FAULT_MODELS,
    SURFACES,
    apply_fault,
    inject_bitflips_channel,
    inject_bitflips_element,
    inject_quantize,
    inject_stuck_at,
    select_fault_indices,
)
from polygraphmr.scenarios import (
    Scenario,
    builtin_scenarios,
    get_builtin,
    load_scenario_file,
    parse_scenario,
    resolve_scenarios,
)


def _arr(shape=(20, 10), seed=0):
    return np.random.default_rng(seed).random(shape)


class TestScenarioValidation:
    def test_valid_scenario_constructs(self):
        s = Scenario("x", "tensor", "bitflip", rate=0.1)
        assert s.target == "probs"

    @pytest.mark.parametrize(
        ("kwargs", "field", "reason"),
        [
            (dict(name="", surface="tensor", kind="bitflip", rate=0.1), "scenario.name", "bad-type"),
            (dict(name="a b", surface="tensor", kind="bitflip", rate=0.1), "scenario.name", "bad-name"),
            (dict(name="x", surface="plane", kind="bitflip", rate=0.1), "scenario.surface", "unknown-surface"),
            (dict(name="x", surface="tensor", kind="rowhammer", rate=0.1), "scenario.kind", "unknown-kind"),
            (dict(name="x", surface="tensor", kind="bitflip", rate=0.1, target="bias"), "scenario.target", "unknown-target"),
            (dict(name="x", surface="tensor", kind="bitflip", rate=1.5), "scenario.rate", "out-of-range"),
            (dict(name="x", surface="tensor", kind="bitflip", rate="lots"), "scenario.rate", "bad-type"),
            (dict(name="x", surface="tensor", kind="gaussian", rate=0.1, sigma=-1.0), "scenario.sigma", "out-of-range"),
            (dict(name="x", surface="element", kind="bitflip", count=0), "scenario.count", "missing-field"),
            (dict(name="x", surface="element", kind="bitflip", count=2, rate=0.1), "scenario.rate", "conflicting-field"),
            (dict(name="x", surface="tensor", kind="bitflip", rate=0.0), "scenario.rate", "missing-field"),
            (dict(name="x", surface="channel", kind="bitflip", rate=0.1, count=3), "scenario.count", "conflicting-field"),
            (dict(name="x", surface="tensor", kind="gaussian", rate=0.1), "scenario.sigma", "missing-field"),
            (dict(name="x", surface="tensor", kind="bitflip", rate=0.1, sigma=0.5), "scenario.sigma", "conflicting-field"),
            (dict(name="x", surface="tensor", kind="quantize", rate=1.0), "scenario.step", "missing-field"),
            (dict(name="x", surface="tensor", kind="stuck0", rate=0.1, step=0.5), "scenario.step", "conflicting-field"),
        ],
    )
    def test_invalid_scenario_names_exact_field(self, kwargs, field, reason):
        with pytest.raises(ConfigError) as exc_info:
            Scenario(**kwargs)
        assert exc_info.value.field == field
        assert exc_info.value.reason == reason

    def test_unknown_kind_message_lists_known_kinds(self):
        with pytest.raises(ConfigError) as exc_info:
            Scenario("x", "tensor", "rowhammer", rate=0.1)
        for kind in FAULT_MODELS:
            assert kind in str(exc_info.value)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            Scenario("x", "tensor", "bitflip", rate=2.0)


class TestParsing:
    def test_parse_rejects_unknown_field_with_source_prefix(self, tmp_path):
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario(
                {"name": "x", "surface": "tensor", "kind": "bitflip", "rate": 0.1, "ratee": 0.2},
                source="sweep.json",
            )
        assert exc_info.value.field == "sweep.json: scenario.ratee"
        assert exc_info.value.reason == "unknown-field"

    def test_parse_rejects_missing_required_field(self):
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario({"name": "x", "kind": "bitflip"})
        assert exc_info.value.field == "scenario.surface"
        assert exc_info.value.reason == "missing-field"

    def test_parse_rejects_non_mapping(self):
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario(["not", "a", "mapping"])
        assert exc_info.value.reason == "bad-type"

    def test_construction_errors_gain_the_source_prefix(self):
        with pytest.raises(ConfigError) as exc_info:
            parse_scenario(
                {"name": "x", "surface": "tensor", "kind": "bitflip", "rate": 7.0}, source="bad.toml"
            )
        assert exc_info.value.field == "bad.toml: scenario.rate"

    def test_load_json_and_toml_agree(self, tmp_path):
        j = tmp_path / "s.json"
        j.write_text(json.dumps({"name": "s", "surface": "channel", "kind": "bitflip", "rate": 0.25}))
        t = tmp_path / "s.toml"
        t.write_text('name = "s"\nsurface = "channel"\nkind = "bitflip"\nrate = 0.25\n')
        assert load_scenario_file(j) == load_scenario_file(t)
        assert load_scenario_file(j).config_hash() == load_scenario_file(t).config_hash()

    def test_load_rejects_unknown_suffix_and_garbage(self, tmp_path):
        bad = tmp_path / "s.yaml"
        bad.write_text("name: s")
        with pytest.raises(ConfigError) as exc_info:
            load_scenario_file(bad)
        assert exc_info.value.reason == "unknown-format"
        garbage = tmp_path / "s.json"
        garbage.write_text("{not json")
        with pytest.raises(ConfigError) as exc_info:
            load_scenario_file(garbage)
        assert exc_info.value.reason == "unparseable"
        assert str(garbage) in exc_info.value.field

    def test_missing_file_is_unreadable(self, tmp_path):
        with pytest.raises(ConfigError) as exc_info:
            load_scenario_file(tmp_path / "absent.json")
        assert exc_info.value.reason == "unreadable"


class TestBuiltinLibrary:
    def test_library_has_at_least_eight_unique_scenarios(self):
        library = builtin_scenarios()
        assert len(library) >= 8
        hashes = {s.config_hash() for s in library.values()}
        assert len(hashes) == len(library)

    def test_library_covers_the_acceptance_surfaces(self):
        library = builtin_scenarios()
        combos = {(s.surface, s.kind) for s in library.values()}
        assert ("channel", "bitflip") in combos
        assert any(kind == "quantize" for _, kind in combos)
        assert any(kind in ("stuck0", "stuck1") for _, kind in combos)
        assert any(s.target == "weights" for s in library.values())
        assert {s.surface for s in library.values()} == set(SURFACES)

    def test_every_builtin_is_deterministic_under_a_fixed_seed(self):
        arr = _arr((30, 10))
        for scenario in builtin_scenarios().values():
            a = scenario.fault(123).apply(arr)
            b = scenario.fault(123).apply(arr)
            assert a.tobytes() == b.tobytes(), scenario.name
            assert a.shape == arr.shape

    def test_get_builtin_unknown_lists_library(self):
        with pytest.raises(ConfigError) as exc_info:
            get_builtin("no-such-scenario")
        assert exc_info.value.reason == "unknown-scenario"
        assert "quantize-4bit" in str(exc_info.value)


class TestResolve:
    def test_mixes_names_and_paths(self, tmp_path):
        p = tmp_path / "mine.toml"
        p.write_text('name = "mine"\nsurface = "tensor"\nkind = "stuck1"\nrate = 0.05\n')
        out = resolve_scenarios(["quantize-4bit", str(p)])
        assert [s.name for s in out] == ["quantize-4bit", "mine"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError) as exc_info:
            resolve_scenarios(["quantize-4bit", "quantize-4bit"])
        assert exc_info.value.reason == "duplicate-name"


class TestInjectionSemantics:
    def test_channel_surface_hits_whole_columns(self):
        arr = _arr((50, 10))
        rng = np.random.default_rng(3)
        idx = select_fault_indices(arr.shape, "channel", rate=0.2, rng=rng)
        cols = np.unique(idx % arr.shape[-1])
        assert len(cols) == 2  # 20% of 10 channels
        assert len(idx) == 2 * arr.shape[0]  # every element of each hit column

    def test_element_surface_hits_exact_count(self):
        arr = _arr((6, 7))
        idx = select_fault_indices(arr.shape, "element", count=5, rng=np.random.default_rng(0))
        assert len(idx) == len(set(idx.tolist())) == 5
        oversized = select_fault_indices(arr.shape, "element", count=10_000, rng=np.random.default_rng(0))
        assert len(oversized) == arr.size  # clamped, never out of bounds

    def test_unknown_surface_and_kind_raise_config_error(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            select_fault_indices((4, 4), "plane", rate=0.5, rng=rng)
        with pytest.raises(ConfigError):
            apply_fault(_arr(), surface="tensor", kind="rowhammer", rate=0.5, rng=rng)

    def test_injectors_never_mutate_input(self):
        arr = _arr((16, 8))
        pristine = arr.copy()
        rng = np.random.default_rng(1)
        inject_bitflips_channel(arr, rate=0.5, rng=rng)
        inject_bitflips_element(arr, count=9, rng=rng)
        inject_quantize(arr, step=0.125)
        inject_stuck_at(arr, rate=0.3, value=1, rng=rng)
        np.testing.assert_array_equal(arr, pristine)

    def test_quantize_snaps_to_grid(self):
        arr = _arr((12, 4))
        out = inject_quantize(arr, step=0.25)
        np.testing.assert_allclose(out, np.round(arr / 0.25) * 0.25)
        np.testing.assert_array_equal(inject_quantize(arr, step=0.0), arr)

    def test_stuck_at_clamps_selected_cells(self):
        arr = np.full((10, 10), 0.5)
        out0 = inject_stuck_at(arr, rate=0.2, value=0, rng=np.random.default_rng(2))
        out1 = inject_stuck_at(arr, rate=0.2, value=1, rng=np.random.default_rng(2))
        assert (out0 == 0.0).sum() == 20
        assert (out1 == 1.0).sum() == 20
        with pytest.raises(ConfigError):
            inject_stuck_at(arr, rate=0.2, value=2, rng=np.random.default_rng(2))

    def test_scenario_fault_describe_pins_identity(self):
        scenario = get_builtin("channel-bitflip-10pct")
        stanza = scenario.fault(77).describe()
        assert stanza["scenario"] == "channel-bitflip-10pct"
        assert stanza["scenario_sha256"] == scenario.config_hash()
        assert stanza["seed"] == 77
        assert stanza["surface"] == "channel"


class TestCanonicalIdentity:
    def test_hash_is_stable_across_key_order_and_formats(self):
        a = parse_scenario({"name": "x", "surface": "tensor", "kind": "bitflip", "rate": 0.5})
        b = parse_scenario({"rate": 0.5, "kind": "bitflip", "surface": "tensor", "name": "x"})
        assert a.canonical_json() == b.canonical_json()
        assert a.config_hash() == b.config_hash()

    def test_any_field_change_changes_the_hash(self):
        base = Scenario("x", "tensor", "bitflip", rate=0.5)
        assert base.config_hash() != Scenario("y", "tensor", "bitflip", rate=0.5).config_hash()
        assert base.config_hash() != Scenario("x", "tensor", "bitflip", rate=0.25).config_hash()
        assert base.config_hash() != Scenario("x", "channel", "bitflip", rate=0.5).config_hash()

    def test_canonical_round_trips_through_parse(self):
        for scenario in builtin_scenarios().values():
            again = parse_scenario(scenario.canonical())
            assert again == scenario
            assert again.config_hash() == scenario.config_hash()
