"""Differential + failure-mode suite for the multi-process execution plane.

The load-bearing guarantee: a response served through ``--serve-workers N``
pooled evaluators is **byte-identical** to the in-process gateway for every
outcome — ok, degraded (including under pre-tripped breaker pressure),
error, and deadline_exceeded — because all policy stays in the dispatcher
and workers run the identical tensor-op path on identical inputs.  Plus the
crash contract (SIGKILL a worker mid-batch → the request is still answered,
byte-identical, the pool respawns, ``/dev/shm`` stays clean), the drain
shard-merge, and the satellite fast-path regressions (vectorized
``check_samples``, ``.tolist()`` payload encoding).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from polygraphmr.breaker import OPEN, BreakerBoard, BreakerPolicy
from polygraphmr.errors import ConfigError
from polygraphmr.metrics import get_registry
from polygraphmr.serve import (
    FALLBACK_NO_WORKERS,
    FALLBACK_WORKER_CRASH,
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_OVERLOADED,
    PolygraphService,
    PoolFallback,
    ServeConfig,
    ServeGateway,
    ServeRequest,
    WorkerPool,
    flat_sample_indices,
    request_frame,
    response_frame,
)
from polygraphmr.store import ArtifactStore
from polygraphmr.tracing import get_tracer

MODEL = "tinynet"


@pytest.fixture()
def service(synthetic_cache):
    return PolygraphService(ArtifactStore(synthetic_cache), seed=0)


def make_pooled_gateway(service: PolygraphService, *, workers: int = 2, **overrides) -> ServeGateway:
    config = ServeConfig(host="127.0.0.1", port=0, workers=workers, **overrides)
    return ServeGateway(service, config)


async def tcp_request(port: int, request: ServeRequest) -> tuple[dict, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request_frame(request))
    await writer.drain()
    raw = await reader.readline()
    writer.close()
    return json.loads(raw), raw


def shm_plane_entries() -> list[str]:
    shm = "/dev/shm"
    if not os.path.isdir(shm):  # pragma: no cover - non-Linux fallback
        return []
    return [name for name in os.listdir(shm) if name.startswith("pgmr-")]


class TestPooledDifferential:
    def test_pooled_ok_responses_byte_identical_to_serial(self, synthetic_cache, service):
        """Coalesced batches through 4 forked workers == serial in-process
        evaluation, byte for byte."""

        requests = [ServeRequest(id=f"p{i}", model=MODEL, samples=(i, (i * 7) % 160, 159 - i)) for i in range(12)]

        async def run():
            gateway = make_pooled_gateway(service, workers=4, coalesce_ms=100.0, batch_max=8)
            await gateway.start()
            assert len(gateway.worker_pids) == 4
            try:
                return await asyncio.gather(*[tcp_request(gateway.bound_port, r) for r in requests])
            finally:
                await gateway.drain()

        results = asyncio.run(run())
        reg = get_registry()
        assert reg.counter_value("serve_pool_fallback_total", reason=FALLBACK_WORKER_CRASH) == 0
        assert reg.counter_value("serve_pool_samples_total") == sum(len(r.samples) for r in requests)
        assert reg.counter_value("serve_worker_batches_total") >= 1, "worker shards never merged"

        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0)
        for request, (payload, raw) in zip(requests, results):
            assert payload["outcome"] == OUTCOME_OK
            assert raw == response_frame(serial.respond(request))

    def test_pooled_degraded_under_breaker_pressure_byte_identical(self, synthetic_cache):
        """A pre-tripped breaker (open far beyond any cooldown) degrades the
        pooled response exactly as it degrades the serial one — the worker
        receives the already-narrowed member set, never the board."""

        def tripped_board() -> BreakerBoard:
            board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=10**6))
            board.record_failure(MODEL, "pp-Hist")
            return board

        pooled = PolygraphService(ArtifactStore(synthetic_cache), seed=0, breakers=tripped_board())
        request = ServeRequest(id="deg1", model=MODEL, samples=(0, 1, 7))

        async def run():
            gateway = make_pooled_gateway(pooled, workers=2)
            await gateway.start()
            try:
                return await tcp_request(gateway.bound_port, request)
            finally:
                await gateway.drain()

        payload, raw = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_DEGRADED
        assert "pp-Hist" not in payload["members"]
        assert payload["breakers"]["pp-Hist"] == OPEN

        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0, breakers=tripped_board())
        assert raw == response_frame(serial.respond(request))

    def test_pooled_error_and_deadline_outcomes_byte_identical(self, synthetic_cache, service):
        """Validation errors and expired deadlines never reach a worker; the
        dispatcher answers them with the same frames as in-process serving."""

        bad = ServeRequest(id="e1", model=MODEL, samples=(0, 10**6))
        unknown = ServeRequest(id="e2", model="nope", samples=(0,))
        hurried = ServeRequest(id="h1", model=MODEL, samples=(0,), deadline_ms=1.0)

        async def run():
            gateway = make_pooled_gateway(service, workers=2, coalesce_ms=20.0, batch_sleep_s=0.05)
            await gateway.start()
            try:
                return await asyncio.gather(
                    tcp_request(gateway.bound_port, bad),
                    tcp_request(gateway.bound_port, unknown),
                    tcp_request(gateway.bound_port, hurried),
                )
            finally:
                await gateway.drain()

        (bad_p, bad_raw), (unk_p, _), (hur_p, hur_raw) = asyncio.run(run())
        assert bad_p["outcome"] == OUTCOME_ERROR
        assert bad_p["error"]["field"] == "request.samples[1]"
        assert unk_p["outcome"] == OUTCOME_ERROR
        assert unk_p["error"]["reason"] == "unknown-model"
        assert hur_p["outcome"] == OUTCOME_DEADLINE

        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0)
        assert bad_raw == response_frame(serial.respond(bad))
        assert hur_raw == response_frame({"id": "h1", "outcome": OUTCOME_DEADLINE, "model": MODEL})


class TestPoolCrash:
    def test_sigkill_worker_mid_batch_still_answers_byte_identical(self, synthetic_cache, service):
        """Kill-matrix for the serving pool: SIGKILL the only worker while
        its batch is in flight.  The request must still be answered (via the
        in-process fallback), byte-identical, the pool must respawn the
        slot, and no ``/dev/shm/pgmr-*`` entry may survive."""

        request = ServeRequest(id="k1", model=MODEL, samples=(2, 4, 8))

        async def run():
            gateway = make_pooled_gateway(service, workers=1, coalesce_ms=0.0, batch_sleep_s=0.3)
            await gateway.start()
            (first_pid,) = gateway.worker_pids
            try:
                task = asyncio.create_task(tcp_request(gateway.bound_port, request))
                # batch dispatched, sleep-padded execution in flight: the job
                # has not reached the worker yet, so the kill lands mid-batch
                await asyncio.sleep(0.1)
                os.kill(first_pid, signal.SIGKILL)
                payload, raw = await asyncio.wait_for(task, timeout=30.0)
                respawned = gateway.worker_pids
                return payload, raw, first_pid, respawned
            finally:
                await gateway.drain()

        payload, raw, first_pid, respawned = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_OK
        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0)
        assert raw == response_frame(serial.respond(request))

        assert respawned and respawned != [first_pid], "pool never respawned the killed slot"
        reg = get_registry()
        assert reg.counter_value("serve_pool_fallback_total", reason=FALLBACK_WORKER_CRASH) == 1
        assert reg.counter_value("serve_worker_restarts_total") == 1
        assert shm_plane_entries() == [], "SIGKILL leaked a shared-memory plane segment"

    def test_evaluate_without_workers_raises_no_workers_fallback(self, service):
        """An empty pool (never started / all buried during drain) raises the
        explicit no-workers fallback instead of hanging."""

        pool = WorkerPool(service, 1)  # never started: no live workers

        async def run():
            with pytest.raises(PoolFallback) as excinfo:
                await pool.evaluate(MODEL, ["ORG"], np.array([0], dtype=np.int64))
            return excinfo.value.reason

        assert asyncio.run(run()) == FALLBACK_NO_WORKERS

    def test_pool_size_must_be_positive(self, service):
        with pytest.raises(ValueError):
            WorkerPool(service, 0)


class TestPoolDrain:
    def test_drain_merges_worker_shards_and_reaps_processes(self, service):
        """Drain ships each worker's metrics/tracing shard over the pipe,
        merges them into the parent registry (campaign shard-merge
        semantics), absorbs worker spans, and reaps every process."""

        requests = [ServeRequest(id=f"d{i}", model=MODEL, samples=(i,)) for i in range(6)]

        async def run():
            gateway = make_pooled_gateway(service, workers=2, coalesce_ms=50.0, batch_max=8)
            await gateway.start()
            pids = list(gateway.worker_pids)
            results = await asyncio.gather(*[tcp_request(gateway.bound_port, r) for r in requests])
            await gateway.drain()
            return results, pids

        results, pids = asyncio.run(run())
        assert all(payload["outcome"] == OUTCOME_OK for payload, _ in results)

        reg = get_registry()
        worker_batches = reg.counter_value("serve_worker_batches_total")
        worker_samples = reg.counter_value("serve_worker_samples_total")
        assert worker_batches >= 1, "no worker shard reached the parent registry"
        assert worker_samples == len(requests), "merged worker sample count disagrees with the load"
        assert reg.counter_total("serve_pool_jobs_total") == worker_batches
        hist = reg.histogram_for("serve_worker_eval_seconds")
        assert hist is not None and hist.count == worker_batches

        absorbed = [record for record in get_tracer().finished() if record.name == "serve.worker.evaluate"]
        assert len(absorbed) == worker_batches, "worker spans were not absorbed on drain"

        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)  # reaped: no process, not even a zombie
        assert shm_plane_entries() == []

    def test_pooled_counters_reconcile_with_response_tallies(self, service):
        """The soak invariant, pooled: per-outcome ``serve_requests_total``
        — merged across worker shards — reconciles exactly with the
        responses clients actually received."""

        flood = [ServeRequest(id=f"f{i}", model=MODEL, samples=(i % 160,)) for i in range(40)]
        hurried = [
            ServeRequest(id=f"h{i}", model=MODEL, samples=(i,), deadline_ms=0.01) for i in range(3)
        ]
        invalid = [ServeRequest(id=f"x{i}", model=MODEL, samples=(10**6,)) for i in range(2)]

        async def run():
            gateway = make_pooled_gateway(
                service, workers=2, max_queue=8, degrade_depth=4, batch_max=4, coalesce_ms=1.0, batch_sleep_s=0.02
            )
            await gateway.start()
            try:
                # sequential first: a calm queue guarantees these reach
                # validation / deadline filtering instead of being shed
                calm = [await tcp_request(gateway.bound_port, r) for r in (*hurried, *invalid)]
                flooded = await asyncio.gather(*[tcp_request(gateway.bound_port, r) for r in flood])
                return [*calm, *flooded]
            finally:
                await gateway.drain()

        results = asyncio.run(run())
        tallies: dict[str, int] = {}
        for payload, _ in results:
            tallies[payload["outcome"]] = tallies.get(payload["outcome"], 0) + 1

        assert len(results) == len(flood) + len(hurried) + len(invalid), "a request went unanswered"
        assert tallies.get(OUTCOME_ERROR, 0) == len(invalid)

        reg = get_registry()
        for outcome in (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_OVERLOADED, OUTCOME_DEADLINE, OUTCOME_ERROR):
            assert reg.counter_value("serve_requests_total", outcome=outcome) == tallies.get(outcome, 0), outcome


class TestCheckSamplesVectorized:
    def test_valid_indices_pass(self, service):
        service.check_samples(MODEL, ServeRequest(id="v", model=MODEL, samples=(0, 159, 42)))

    def test_first_offending_index_names_the_exact_field(self, service):
        """The numpy range check reports the same field path the old
        per-index Python loop reported: the *first* out-of-range index."""

        with pytest.raises(ConfigError) as excinfo:
            service.check_samples(MODEL, ServeRequest(id="v", model=MODEL, samples=(0, 160, 3, 9999)))
        assert excinfo.value.field == "request.samples[1]"
        assert excinfo.value.reason == "out-of-range"
        assert "160 test samples" in excinfo.value.detail

    def test_flat_sample_indices_concatenates_in_request_order(self):
        requests = [
            ServeRequest(id="a", model=MODEL, samples=(3, 1)),
            ServeRequest(id="b", model=MODEL, samples=(4,)),
        ]
        flat = flat_sample_indices(requests)
        assert flat.dtype == np.int64
        assert flat.tolist() == [3, 1, 4]


class TestEncoderByteIdentity:
    def test_tolist_payloads_byte_identical_to_per_element_encoder(self, service):
        """Regression pin: ``.tolist()`` fast-path encoding produces the
        exact frames the old per-element ``float()``/``int()`` loops did."""

        requests = [
            ServeRequest(id="t0", model=MODEL, samples=(0, 7, 31)),
            ServeRequest(id="t1", model=MODEL, samples=(159,)),
            ServeRequest(id="t2", model=MODEL, samples=(12, 12, 13)),
        ]
        session = service.base_session(MODEL)
        active = list(session.members)
        flat = flat_sample_indices(requests)
        probs, predictions, flags = session.evaluate(flat)
        breaker_states = service.board.states_for(MODEL)

        # the pre-vectorization encoder, verbatim
        old_frames = []
        offset = 0
        for request in requests:
            span = slice(offset, offset + len(request.samples))
            offset += len(request.samples)
            old_frames.append(
                response_frame(
                    {
                        "id": request.id,
                        "outcome": OUTCOME_OK,
                        "model": MODEL,
                        "members": list(session.members),
                        "probs": [[float(p) for p in row] for row in probs[span]],
                        "predictions": [int(p) for p in predictions[span]],
                        "flags": [int(f) for f in flags[span]],
                        "degraded": False,
                        "shed": [],
                        "missing": list(session.missing),
                        "quarantined": dict(session.quarantined),
                        "breakers": breaker_states,
                    }
                )
            )

        payloads = service.evaluate_requests(MODEL, requests, active=active, shed=[])
        assert [response_frame(p) for p in payloads] == old_frames

    def test_static_stanza_is_cached_and_shared(self, service):
        first = service.static_stanza(MODEL, ["ORG", "pp-Gamma_2"], [])
        second = service.static_stanza(MODEL, ["ORG", "pp-Gamma_2"], [])
        assert first is second, "stanza cache missed on an identical key"
        other = service.static_stanza(MODEL, ["ORG"], ["pp-Gamma_2"])
        assert other is not first
        assert other["shed"] == ["pp-Gamma_2"]
