"""Journal v3 chain format and the `campaign verify` auditor.

Covers the sealing/linking primitives, chain-aware resume refusals,
actionable version-mismatch errors, and the full verify walk: exit 0 on a
fresh campaign, exit 3 with the exact first offending record on chain
damage, exit 4 on a journal whose chain is intact but whose records do not
re-derive from the journalled config.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from polygraphmr.campaign import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    JOURNAL_VERSION,
    CampaignConfig,
    CampaignRunner,
    config_genesis,
    main,
    read_checkpoint,
    verify_campaign,
    write_checkpoint,
)
from polygraphmr.errors import CampaignError
from polygraphmr.journal import (
    CampaignJournal,
    chain_genesis,
    config_chain_hash,
    load_checkpoint,
    seal_record,
    sha256_hex,
    walk_chain,
)
from polygraphmr.metrics import get_registry
from polygraphmr.parallel import ParallelCampaignRunner
from polygraphmr.tracing import get_tracer


def _fake_trial(spec):
    return {"model": spec.model, "kind": spec.kind}


def _run_campaign(tmp_path, bare_cache, n_trials=3, **kwargs):
    config = CampaignConfig(cache=str(bare_cache()), n_trials=n_trials, seed=5)
    runner = CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial)
    runner.run(**kwargs)
    return config, tmp_path / "out"


def _reforge(out, mutate):
    """Tamper with a journal the way a capable adversary would: apply
    ``mutate`` to the decoded records, re-seal and re-link the whole chain,
    and re-issue a checksum-valid checkpoint sealing the forged head."""

    path = out / JOURNAL_NAME
    records, _, issue = walk_chain(path)
    assert issue is None
    mutate(records)
    head = records[0]["prev"]  # keep the original (config-derived) genesis
    lines = []
    for record in records:
        line, head = seal_record(record, head)
        lines.append(line)
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    checkpoint = read_checkpoint(out / CHECKPOINT_NAME)
    if checkpoint is not None:
        checkpoint["chain_head"] = head
        write_checkpoint(out / CHECKPOINT_NAME, checkpoint)


class TestChainPrimitives:
    def test_sealing_is_byte_stable(self):
        line, seal = seal_record({"type": "trial", "index": 0}, "aa" * 32)
        payload = json.loads(line)
        assert payload["prev"] == "aa" * 32
        assert payload["sha256"] == seal
        # re-sealing a read-back record reproduces the line exactly
        again, seal2 = seal_record(payload, "aa" * 32)
        assert (again, seal2) == (line, seal)

    def test_genesis_hashes_are_distinct_per_root_and_shard(self):
        sha = config_chain_hash({"seed": 1})
        heads = {
            chain_genesis(),
            chain_genesis(sha),
            chain_genesis(sha, shard=0),
            chain_genesis(sha, shard=1),
            chain_genesis(config_chain_hash({"seed": 2})),
        }
        assert len(heads) == 5

    def test_appends_link_each_record_to_its_predecessor(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", genesis=chain_genesis("ab" * 32))
        journal.append({"type": "header"})
        journal.append({"type": "trial", "index": 0})
        records, chain, issue = walk_chain(journal.path, genesis=journal.genesis)
        assert issue is None
        assert records[0]["prev"] == journal.genesis
        assert records[1]["prev"] == chain[0]
        assert journal.head == chain[-1]

    def test_scan_raises_on_broken_link_even_at_the_tail(self, tmp_path):
        # a well-sealed record with the wrong prev cannot be a torn write
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header"})
        line, _ = seal_record({"type": "trial", "index": 0}, sha256_hex("elsewhere"))
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        with pytest.raises(CampaignError) as exc_info:
            CampaignJournal(journal.path).read()
        assert exc_info.value.reason == "journal-chain-broken"

    def test_walk_chain_reports_torn_tail(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.append({"type": "header"})
        with open(journal.path, "ab") as fh:
            fh.write(b'{"torn')
        _, _, issue = walk_chain(journal.path)
        assert issue is not None
        assert issue.reason == "journal-torn-tail"
        assert issue.line == 2


class TestVerifyCampaign:
    def test_fresh_campaign_verifies(self, tmp_path, bare_cache):
        config, out = _run_campaign(tmp_path, bare_cache)
        report = verify_campaign(out)
        assert report["ok"]
        assert report["exit_code"] == 0
        assert report["status"] == "ok"
        assert report["records_verified"] == 4  # header + 3 trials
        assert report["trials"] == 3
        assert report["complete"]
        assert report["first_bad"] is None
        assert report["checkpoint"]["chain_head"] == report["chain_head"]

    def test_interrupted_campaign_still_verifies(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache, max_new_trials=2)
        report = verify_campaign(out)
        assert report["ok"]
        assert not report["complete"]
        assert report["trials"] == 2

    def test_single_flipped_byte_names_the_exact_record(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)
        lines = (out / JOURNAL_NAME).read_bytes().splitlines(keepends=True)
        flipped = bytearray(lines[2])
        flipped[flipped.index(b'"outcome"') + 3] ^= 0x01  # inside committed history
        (out / JOURNAL_NAME).write_bytes(b"".join([lines[0], lines[1], bytes(flipped), *lines[3:]]))
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["status"] == "chain-break"
        assert report["first_bad"]["file"] == JOURNAL_NAME
        assert report["first_bad"]["line"] == 3
        assert report["first_bad"]["record_index"] == 2
        assert report["first_bad"]["reason"] == "journal-bad-checksum"

    def test_deleted_record_breaks_the_chain_at_the_gap(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)
        lines = (out / JOURNAL_NAME).read_bytes().splitlines(keepends=True)
        (out / JOURNAL_NAME).write_bytes(b"".join(lines[:2] + lines[3:]))  # drop trial 1
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "journal-chain-broken"
        assert report["first_bad"]["line"] == 3  # the record after the gap

    def test_trimmed_tail_is_caught_by_the_checkpoint_seal(self, tmp_path, bare_cache):
        # deleting the *last* record leaves a perfectly chained journal;
        # only the checkpoint-sealed head + record count expose it
        _, out = _run_campaign(tmp_path, bare_cache)
        lines = (out / JOURNAL_NAME).read_bytes().splitlines(keepends=True)
        (out / JOURNAL_NAME).write_bytes(b"".join(lines[:-1]))
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "journal-behind-checkpoint"

    def test_tampered_checkpoint_head_is_a_chain_break(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)
        checkpoint = read_checkpoint(out / CHECKPOINT_NAME)
        checkpoint["chain_head"] = sha256_hex("forged")
        write_checkpoint(out / CHECKPOINT_NAME, checkpoint)
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "journal-chain-broken"
        assert report["first_bad"]["line"] == checkpoint["journal_records"]

    def test_corrupt_checkpoint_fails_the_audit(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)
        text = (out / CHECKPOINT_NAME).read_text()
        (out / CHECKPOINT_NAME).write_text(text.replace('"completed": 3', '"completed": 2'))
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "checkpoint-invalid"

    def test_forged_spec_is_a_replay_mismatch(self, tmp_path, bare_cache):
        # an adversary who re-seals and re-links the whole chain (and
        # re-issues the checkpoint) beats every hash — but the spec no
        # longer re-derives from the journalled config
        _, out = _run_campaign(tmp_path, bare_cache)

        def mutate(records):
            records[2]["spec"]["fault_seed"] += 1

        _reforge(out, mutate)
        report = verify_campaign(out)
        assert report["exit_code"] == 4
        assert report["status"] == "replay-mismatch"
        assert report["first_bad"]["reason"] == "spec-mismatch"
        assert report["first_bad"]["line"] == 3
        assert "trial 1" in report["first_bad"]["detail"]

    def test_forged_outcome_value_is_a_replay_mismatch(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)

        def mutate(records):
            records[1]["outcome"] = "fabricated"

        _reforge(out, mutate)
        report = verify_campaign(out)
        assert report["exit_code"] == 4
        assert report["first_bad"]["reason"] == "unknown-outcome"
        assert report["first_bad"]["line"] == 2

    def test_header_not_rooted_in_its_own_config_is_a_chain_break(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)

        def mutate(records):
            records[0]["config"]["seed"] = 99  # genesis no longer matches

        _reforge(out, mutate)
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["line"] == 1
        assert report["first_bad"]["reason"] == "journal-chain-broken"
        assert "genesis" in report["first_bad"]["detail"]

    def test_missing_journal_is_a_chain_break(self, tmp_path):
        report = verify_campaign(tmp_path)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "journal-missing"

    def test_verify_feeds_metrics_and_tracing(self, tmp_path, bare_cache):
        _, out = _run_campaign(tmp_path, bare_cache)
        get_registry().reset()
        get_tracer().reset()
        verify_campaign(out)
        registry = get_registry()
        assert registry.counter_total("journal_records_verified_total") == 4
        assert registry.counter_total("journal_chain_breaks_total") == 0
        spans = [s["name"] for s in get_tracer().to_dicts()]
        assert "journal.verify" in spans

        raw = bytearray((out / JOURNAL_NAME).read_bytes())
        raw[10] ^= 0xFF
        (out / JOURNAL_NAME).write_bytes(bytes(raw))
        verify_campaign(out)
        assert registry.counter_total("journal_chain_breaks_total") == 1


class TestResumeRefusals:
    def test_resume_refuses_a_broken_chain(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=4, seed=5)
        CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run(max_new_trials=3)
        lines = (tmp_path / "out" / JOURNAL_NAME).read_bytes().splitlines(keepends=True)
        (tmp_path / "out" / JOURNAL_NAME).write_bytes(b"".join(lines[:2] + lines[3:]))
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-chain-broken"
        assert "line 3" in str(exc_info.value)  # names the bad record

    def test_resume_refuses_a_tampered_checkpoint_head(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=4, seed=5)
        CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run(max_new_trials=2)
        checkpoint = read_checkpoint(tmp_path / "out" / CHECKPOINT_NAME)
        checkpoint["chain_head"] = sha256_hex("forged")
        write_checkpoint(tmp_path / "out" / CHECKPOINT_NAME, checkpoint)
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, tmp_path / "out", trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-chain-broken"

    def test_resume_refuses_a_journal_rooted_elsewhere(self, tmp_path, bare_cache):
        cache = bare_cache()
        config = CampaignConfig(cache=str(cache), n_trials=2, seed=5)
        out = tmp_path / "out"
        # a chained journal claiming this config but rooted at a foreign genesis
        journal = CampaignJournal(out / JOURNAL_NAME, genesis=chain_genesis("ff" * 16))
        journal.append(
            {"type": "header", "version": JOURNAL_VERSION, "config": config.to_dict(), "models": ["m"]}
        )
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, out, trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-chain-broken"
        assert "not rooted" in str(exc_info.value)


class TestVersionMismatch:
    def _journal_with_version(self, tmp_path, config, version):
        out = tmp_path / "out"
        journal = CampaignJournal(out / JOURNAL_NAME, genesis=config_genesis(config))
        journal.append(
            {"type": "header", "version": version, "config": config.to_dict(), "models": ["m"]}
        )
        return out

    def test_v2_journal_under_v3_runner_is_actionable(self, tmp_path, bare_cache):
        config = CampaignConfig(cache=str(bare_cache()), n_trials=2)
        out = self._journal_with_version(tmp_path, config, 2)
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, out, trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-version-mismatch"
        message = str(exc_info.value)
        assert "journal format v2" in message
        assert f"expects v{JOURNAL_VERSION}" in message
        assert "predates" in message and "fresh --out" in message

    def test_newer_journal_under_v3_runner_is_actionable(self, tmp_path, bare_cache):
        config = CampaignConfig(cache=str(bare_cache()), n_trials=2)
        out = self._journal_with_version(tmp_path, config, JOURNAL_VERSION + 1)
        with pytest.raises(CampaignError) as exc_info:
            CampaignRunner(config, out, trial_fn=_fake_trial).run(resume=True)
        assert exc_info.value.reason == "journal-version-mismatch"
        message = str(exc_info.value)
        assert f"journal format v{JOURNAL_VERSION + 1}" in message
        assert "newer" in message and "upgrade" in message

    def test_verify_reports_version_mismatch(self, tmp_path, bare_cache):
        config = CampaignConfig(cache=str(bare_cache()), n_trials=2)
        out = self._journal_with_version(tmp_path, config, 2)
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["reason"] == "journal-version-mismatch"
        assert "predates" in report["first_bad"]["detail"]


class TestVerifyShards:
    def _interrupted_parallel_run(self, tmp_path, bare_cache):
        def slow_trial(spec):
            time.sleep(0.15)
            return _fake_trial(spec)

        cache = bare_cache("m0", "m1")
        config = CampaignConfig(cache=str(cache), n_trials=12, seed=5)
        runner = ParallelCampaignRunner(config, tmp_path / "out", workers=2, trial_fn=slow_trial)
        threading.Timer(0.2, runner.request_stop).start()
        summary = runner.run()
        assert summary["stopped_early"]
        return tmp_path / "out"

    def test_interrupted_parallel_campaign_verifies_with_shards(self, tmp_path, bare_cache):
        out = self._interrupted_parallel_run(tmp_path, bare_cache)
        report = verify_campaign(out)
        assert report["ok"], report["first_bad"]
        assert report["shards"]
        checkpoint = read_checkpoint(out / CHECKPOINT_NAME)
        for key, mark in checkpoint["workers"].items():
            assert mark["chain_head"] == report["shards"][key]["chain_head"]

    def test_damaged_shard_fails_verification(self, tmp_path, bare_cache):
        out = self._interrupted_parallel_run(tmp_path, bare_cache)
        shard = next(p for p in out.iterdir() if ".w" in p.name)
        lines = shard.read_bytes().splitlines(keepends=True)
        assert lines, "expected at least one shard record"
        flipped = bytearray(lines[0])
        flipped[flipped.index(b'"spec"') + 2] ^= 0x01
        shard.write_bytes(b"".join([bytes(flipped), *lines[1:]]))
        report = verify_campaign(out)
        assert report["exit_code"] == 3
        assert report["first_bad"]["file"] == shard.name


class TestVerifyCLI:
    def test_verify_subcommand_ok_and_failure(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["--synthetic", str(tmp_path / "cache"), "--out", str(out), "--trials", "2"]) == 0
        capsys.readouterr()

        assert main(["verify", str(out)]) == 0
        assert capsys.readouterr().out.startswith("ok:")

        assert main(["verify", str(out), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] and report["trials"] == 2

        raw = bytearray((out / JOURNAL_NAME).read_bytes())
        raw[20] ^= 0xFF
        (out / JOURNAL_NAME).write_bytes(bytes(raw))
        assert main(["verify", str(out)]) == 3
        err = capsys.readouterr().err
        assert "FAIL" in err and JOURNAL_NAME in err

        assert main(["verify", str(out), "--json"]) == 3
        report = json.loads(capsys.readouterr().out)
        assert report["first_bad"]["line"] == 1


class TestCheckpointLoading:
    def test_load_checkpoint_distinguishes_absent_from_invalid(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.json") == (None, "absent")
        p = tmp_path / CHECKPOINT_NAME
        write_checkpoint(p, {"completed": 1})
        payload, problem = load_checkpoint(p)
        assert problem is None and payload == {"completed": 1}
        p.write_text(p.read_text().replace("1", "2"))
        assert load_checkpoint(p) == (None, "checkpoint-invalid")
