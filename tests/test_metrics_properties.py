"""Property-based checks of the metrics-shard merge.

The campaign folds per-worker metric shards with
:func:`polygraphmr.metrics.merge_registries`, which claims an exact,
order-independent merge: counters and histogram bucket counts are integer
additions, gauges fold with ``max``, and histogram sums fold with
``math.fsum`` over every component at once.  Hypothesis drives random shard
populations against those claims — commutativity, associativity, conserved
totals, and the quantile-bounding theorem (the merged histogram's quantile
estimate can never leave the interval spanned by the per-shard estimates,
because the merged CDF is a weighted average of the shard CDFs).
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from polygraphmr.metrics import MetricsRegistry, merge_registries  # noqa: E402

BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)

_counter_rows = st.dictionaries(
    st.sampled_from(["loads_total", "trials_total", "skips_total"]),
    st.dictionaries(
        st.sampled_from([("result", "hit"), ("result", "miss"), ("outcome", "ok")]),
        st.integers(min_value=0, max_value=1_000),
        max_size=3,
    ),
    max_size=3,
)

_observations = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
    max_size=30,
)

_gauges = st.dictionaries(
    st.sampled_from(["workers", "completed"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=2,
)


@st.composite
def registries(draw) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name, labelled in draw(_counter_rows).items():
        for (lk, lv), n in labelled.items():
            reg.counter(name, **{lk: lv}).inc(n)
    for name, value in draw(_gauges).items():
        reg.gauge(name).set(value)
    h = reg.histogram("lat", buckets=BOUNDS)
    for v in draw(_observations):
        h.observe(v)
    return reg


def _equal_exact(a: MetricsRegistry, b: MetricsRegistry) -> None:
    """Integer state must match exactly; float sums to fsum tolerance."""

    da, db = a.to_dict(), b.to_dict()
    assert da["counters"] == db["counters"]
    assert da["gauges"] == db["gauges"]
    assert len(da["histograms"]) == len(db["histograms"])
    for ra, rb in zip(da["histograms"], db["histograms"]):
        assert (ra["name"], ra["labels"]) == (rb["name"], rb["labels"])
        assert ra["bounds"] == rb["bounds"]
        assert ra["bucket_counts"] == rb["bucket_counts"]
        assert ra["count"] == rb["count"]
        assert math.isclose(ra["sum"], rb["sum"], rel_tol=1e-12, abs_tol=1e-12)


class TestMergeAlgebra:
    @given(registries(), registries())
    def test_merge_is_commutative(self, a, b):
        _equal_exact(merge_registries([a, b]), merge_registries([b, a]))

    @given(registries(), registries(), registries())
    def test_merge_is_associative(self, a, b, c):
        left = merge_registries([merge_registries([a, b]), c])
        right = merge_registries([a, merge_registries([b, c])])
        _equal_exact(left, right)
        _equal_exact(left, merge_registries([a, b, c]))

    @given(st.lists(registries(), min_size=1, max_size=5))
    def test_totals_are_conserved(self, shards):
        merged = merge_registries(shards)
        for name in ("loads_total", "trials_total", "skips_total"):
            assert merged.counter_total(name) == sum(s.counter_total(name) for s in shards)
        h = merged.histogram_for("lat")
        parts = [s.histogram_for("lat") for s in shards]
        assert h.count == sum(p.count for p in parts)
        for i in range(len(BOUNDS) + 1):
            assert h.bucket_counts[i] == sum(p.bucket_counts[i] for p in parts)
        assert math.isclose(
            h.sum, math.fsum(p.sum for p in parts), rel_tol=1e-12, abs_tol=1e-12
        )
        for name in ("workers", "completed"):
            assert merged.gauge_value(name) == max(s.gauge_value(name) for s in shards)

    @given(st.lists(registries(), min_size=1, max_size=5), st.floats(min_value=0.0, max_value=1.0))
    def test_merged_quantile_is_bounded_by_shard_quantiles(self, shards, q):
        """The merged CDF is a weighted average of shard CDFs, so the merged
        upper-bound quantile estimate cannot escape [min, max] of the
        per-shard estimates (over non-empty shards)."""

        merged_h = merge_registries(shards).histogram_for("lat")
        shard_qs = [
            est
            for est in (s.histogram_for("lat").quantile(q) for s in shards)
            if est is not None
        ]
        merged_q = merged_h.quantile(q)
        if not shard_qs:
            assert merged_q is None
        else:
            assert min(shard_qs) <= merged_q <= max(shard_qs)

    @given(registries())
    def test_merge_of_single_shard_is_identity(self, a):
        _equal_exact(merge_registries([a]), a)

    @given(registries(), registries())
    def test_serialisation_commutes_with_merge(self, a, b):
        """Merging JSON round-tripped shards equals round-tripping the merge —
        what makes worker shard files a faithful transport."""

        via_files = merge_registries(
            [MetricsRegistry.from_dict(a.to_dict()), MetricsRegistry.from_dict(b.to_dict())]
        )
        _equal_exact(via_files, merge_registries([a, b]))
