"""Differential + concurrency suite for the serving gateway.

The load-bearing guarantee: a coalesced micro-batched response is
**byte-identical** (probs, verdict, degraded flags — the whole frame) to the
same request run serially through the ensemble runtime.  Plus the overload
contract (bounded queue → explicit shed, sustained pressure → degraded
member sets via the circuit breakers, calm → recovery), deadline budgets,
and graceful drain with in-flight requests completed.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from polygraphmr.breaker import OPEN, BreakerBoard, BreakerPolicy
from polygraphmr.decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from polygraphmr.ensemble import EnsembleRuntime
from polygraphmr.errors import RetryPolicy
from polygraphmr.metrics import get_registry
from polygraphmr.serve import (
    OUTCOME_DEADLINE,
    OUTCOME_DEGRADED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_OVERLOADED,
    PolygraphService,
    ServeConfig,
    ServeGateway,
    ServeRequest,
    coalesce_slices,
    main,
    request_frame,
    response_frame,
)
from polygraphmr.store import ArtifactStore

MODEL = "tinynet"


@pytest.fixture()
def service(synthetic_cache):
    return PolygraphService(ArtifactStore(synthetic_cache), seed=0)


def make_gateway(service: PolygraphService, **overrides) -> ServeGateway:
    config = ServeConfig(host="127.0.0.1", port=0, **overrides)
    return ServeGateway(service, config)


async def tcp_request(port: int, request: ServeRequest) -> tuple[dict, bytes]:
    """One request over its own connection; returns (payload, raw frame bytes)."""

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request_frame(request))
    await writer.drain()
    raw = await reader.readline()
    writer.close()
    return json.loads(raw), raw


async def tcp_send_raw(port: int, frame: bytes) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(frame)
    await writer.drain()
    raw = await reader.readline()
    writer.close()
    return json.loads(raw)


class TestDifferential:
    def test_single_request_byte_equivalent_to_direct_ensemble_run(self, synthetic_cache, service):
        """The gateway's frame for one request equals — byte for byte — what
        an independent walk through the ensemble runtime produces."""

        samples = (3, 0, 17, 44)
        runtime = EnsembleRuntime(ArtifactStore(synthetic_cache), min_members=2, seed=0)
        plan = runtime.member_plan(MODEL)
        val = runtime.assemble(MODEL, "val", members=plan)
        test = runtime.assemble(MODEL, "test", members=plan)
        common = [s for s in val.members if s in set(test.members)]
        val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
        test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)
        module = LogisticDecisionModule(seed=0)
        org_val = val_stack[common.index("ORG")]
        labels = runtime.store.load_labels(MODEL, "val")
        module.fit(ensemble_features(val_stack), misprediction_targets(org_val, labels))
        sub = test_stack[:, list(samples), :]
        probs = sub.mean(axis=0)
        expected = {
            "id": "r1",
            "outcome": OUTCOME_OK,
            "model": MODEL,
            "members": common,
            "probs": [[float(p) for p in row] for row in probs],
            "predictions": [int(p) for p in probs.argmax(axis=1)],
            "flags": [int(f) for f in module.predict(ensemble_features(sub))],
            "degraded": False,
            "shed": [],
            "missing": [],
            "quarantined": {},
            "breakers": {},
        }

        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                return await tcp_request(gateway.bound_port, ServeRequest(id="r1", model=MODEL, samples=samples))
            finally:
                await gateway.drain()

        _, raw = asyncio.run(run())
        assert raw == response_frame(expected)

    def test_coalesced_micro_batch_byte_identical_to_serial(self, synthetic_cache, service):
        """N concurrent requests coalesced into micro-batches produce the
        same bytes as N serial runs through a fresh service."""

        requests = [ServeRequest(id=f"c{i}", model=MODEL, samples=(i, (i * 7) % 160, 159 - i)) for i in range(8)]

        async def run():
            gateway = make_gateway(service, coalesce_ms=100.0, batch_max=8)
            await gateway.start()
            try:
                return await asyncio.gather(*[tcp_request(gateway.bound_port, r) for r in requests])
            finally:
                await gateway.drain()

        results = asyncio.run(run())
        assert get_registry().counter_value("serve_batches_total") < len(requests), "nothing coalesced"

        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0)
        for request, (payload, raw) in zip(requests, results):
            assert payload["outcome"] == OUTCOME_OK
            assert raw == response_frame(serial.respond(request))

    def test_mixed_model_batch_stays_byte_identical(self, synthetic_cache, add_model, service):
        add_model(synthetic_cache, "othernet", seed=13)
        requests = [
            ServeRequest(id=f"m{i}", model=MODEL if i % 2 else "othernet", samples=(i, i + 1)) for i in range(6)
        ]

        async def run():
            gateway = make_gateway(service, coalesce_ms=100.0, batch_max=6)
            await gateway.start()
            try:
                return await asyncio.gather(*[tcp_request(gateway.bound_port, r) for r in requests])
            finally:
                await gateway.drain()

        results = asyncio.run(run())
        serial = PolygraphService(ArtifactStore(synthetic_cache), seed=0)
        for request, (_, raw) in zip(requests, results):
            assert raw == response_frame(serial.respond(request))


class TestDeadlines:
    def test_coalesce_slices_ride_the_retry_policy_schedule(self):
        """The dispatcher's coalescing waits ARE a RetryPolicy sleep schedule
        with max_total_sleep as the deadline budget."""

        assert coalesce_slices(0.02, 10.0) == RetryPolicy(
            attempts=5, base_delay=0.005, max_delay=0.005, jitter=0.0, max_total_sleep=10.0
        ).schedule()
        assert sum(coalesce_slices(0.02, 0.003)) <= 0.003 + 1e-12
        assert coalesce_slices(0.02, 0.0) == []
        assert coalesce_slices(0.0, 1.0) == []

    def test_expired_budget_answers_deadline_exceeded(self, service):
        """A 1 ms budget cannot survive a 50 ms batch; its companion without
        a deadline is served normally from the same batch."""

        async def run():
            gateway = make_gateway(service, coalesce_ms=20.0, batch_max=4, batch_sleep_s=0.05)
            await gateway.start()
            try:
                return await asyncio.gather(
                    tcp_request(gateway.bound_port, ServeRequest(id="hurry", model=MODEL, samples=(0,), deadline_ms=1.0)),
                    tcp_request(gateway.bound_port, ServeRequest(id="calm", model=MODEL, samples=(0,))),
                )
            finally:
                await gateway.drain()

        (hurried, _), (calm, _) = asyncio.run(run())
        assert hurried["outcome"] == OUTCOME_DEADLINE
        assert calm["outcome"] == OUTCOME_OK
        assert get_registry().counter_value("serve_deadline_exceeded_total") == 1
        assert get_registry().counter_value("serve_requests_total", outcome=OUTCOME_DEADLINE) == 1


class TestOverload:
    def test_bounded_queue_sheds_with_explicit_overloaded_reply(self, service):
        """Past max_queue pending requests the gateway replies ``overloaded``
        immediately — the queue is structurally bounded, never grows."""

        n = 12

        async def run():
            gateway = make_gateway(
                service, max_queue=2, degrade_depth=0, batch_max=1, coalesce_ms=0.0, batch_sleep_s=0.1
            )
            await gateway.start()
            assert gateway.queue.maxsize == 2
            try:
                return await asyncio.gather(
                    *[tcp_request(gateway.bound_port, ServeRequest(id=f"s{i}", model=MODEL, samples=(i,))) for i in range(n)]
                )
            finally:
                await gateway.drain()

        results = asyncio.run(run())
        outcomes = [payload["outcome"] for payload, _ in results]
        assert len(outcomes) == n, "every request got an explicit reply"
        shed = outcomes.count(OUTCOME_OVERLOADED)
        assert shed > 0, "overload never shed"
        assert set(outcomes) <= {OUTCOME_OK, OUTCOME_OVERLOADED}
        reg = get_registry()
        assert reg.counter_value("serve_shed_total") == shed
        assert reg.counter_value("serve_requests_total", outcome=OUTCOME_OVERLOADED) == shed
        assert reg.counter_value("serve_requests_total", outcome=OUTCOME_OK) == outcomes.count(OUTCOME_OK)

    def test_sustained_pressure_degrades_members_then_recovers(self, synthetic_cache):
        """Overloaded batches trip the sheddable members' breakers → degraded
        responses name the shed members; a calm queue closes them again."""

        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=2))
        service = PolygraphService(ArtifactStore(synthetic_cache), seed=0, breakers=board)
        full_members = list(service.base_session(MODEL).members)
        core, sheddable = full_members[:2], full_members[2:]

        async def run():
            gateway = make_gateway(
                service, max_queue=64, degrade_depth=2, batch_max=2, coalesce_ms=1.0, batch_sleep_s=0.02
            )
            await gateway.start()
            try:
                flood = await asyncio.gather(
                    *[tcp_request(gateway.bound_port, ServeRequest(id=f"f{i}", model=MODEL, samples=(i,))) for i in range(30)]
                )
                calm = []
                for i in range(6):  # sequential: queue depth ~0, breakers cool down and close
                    calm.append(await tcp_request(gateway.bound_port, ServeRequest(id=f"q{i}", model=MODEL, samples=(i,))))
                return flood, calm
            finally:
                await gateway.drain()

        flood, calm = asyncio.run(run())
        degraded = [payload for payload, _ in flood if payload["outcome"] == OUTCOME_DEGRADED]
        assert degraded, "sustained overload never degraded a response"
        worst = max(degraded, key=lambda p: len(p["shed"]))
        assert worst["members"] == core
        assert worst["shed"] == sorted(sheddable)
        assert worst["degraded"] is True
        assert all(state == OPEN for state in worst["breakers"].values())
        reg = get_registry()
        assert reg.counter_value("serve_degraded_total") == len(degraded)
        assert reg.counter_value("breaker_skips_total") > 0, "open breakers never served a cheap skip"

        final, _ = calm[-1]
        assert final["outcome"] == OUTCOME_OK
        assert final["members"] == full_members
        assert final["shed"] == [] and final["breakers"] == {}


class TestBreakerOpenMembers:
    def test_pre_opened_breaker_yields_degraded_member_responses(self, synthetic_cache):
        board = BreakerBoard(BreakerPolicy(failure_threshold=1, cooldown_ticks=10**6))
        board.record_failure(MODEL, "pp-Hist")
        service = PolygraphService(ArtifactStore(synthetic_cache), seed=0, breakers=board)

        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                return await tcp_request(gateway.bound_port, ServeRequest(id="b1", model=MODEL, samples=(0, 1)))
            finally:
                await gateway.drain()

        payload, _ = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_DEGRADED
        assert "pp-Hist" not in payload["members"]
        assert payload["quarantined"] == {"pp-Hist": "circuit-open"}
        assert payload["breakers"]["pp-Hist"] == OPEN


class TestDrain:
    def test_sigterm_style_drain_completes_in_flight_requests(self, service):
        """drain() (what the CLI runs on SIGTERM) answers everything already
        queued, then refuses new connections."""

        n = 8

        async def run():
            gateway = make_gateway(service, batch_max=2, coalesce_ms=1.0, batch_sleep_s=0.05, max_queue=64)
            await gateway.start()
            port = gateway.bound_port
            in_flight = [
                asyncio.create_task(tcp_request(port, ServeRequest(id=f"d{i}", model=MODEL, samples=(i,))))
                for i in range(n)
            ]
            await asyncio.sleep(0.03)  # let them hit the queue mid-load
            await gateway.drain()
            results = await asyncio.gather(*in_flight)
            refused = False
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.close()
            except OSError:
                refused = True
            return results, refused

        results, refused = asyncio.run(run())
        assert len(results) == n
        assert all(payload["outcome"] in (OUTCOME_OK, OUTCOME_DEGRADED) for payload, _ in results)
        assert refused, "gateway kept accepting connections after drain"
        hist = get_registry().histogram_for("serve_request_seconds")
        assert hist is not None and hist.count == n


class TestErrorsOverTheWire:
    def test_unknown_model_is_an_error_response(self, service):
        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                return await tcp_request(gateway.bound_port, ServeRequest(id="e1", model="nope", samples=(0,)))
            finally:
                await gateway.drain()

        payload, _ = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_ERROR
        assert payload["error"]["reason"] == "unknown-model"

    def test_out_of_range_sample_names_the_exact_field(self, service):
        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                return await tcp_request(gateway.bound_port, ServeRequest(id="e2", model=MODEL, samples=(0, 10**6)))
            finally:
                await gateway.drain()

        payload, _ = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_ERROR
        assert payload["error"]["field"] == "request.samples[1]"
        assert payload["error"]["reason"] == "out-of-range"

    def test_malformed_frame_keeps_the_id_and_field_path(self, service):
        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                return await tcp_send_raw(gateway.bound_port, b'{"id": "e3", "model": "tinynet", "bogus": 1}\n')
            finally:
                await gateway.drain()

        payload = asyncio.run(run())
        assert payload["id"] == "e3"
        assert payload["outcome"] == OUTCOME_ERROR
        assert payload["error"]["field"] == "request.bogus"
        assert payload["error"]["reason"] == "unknown-field"
        assert get_registry().counter_value("serve_requests_total", outcome=OUTCOME_ERROR) == 1


class TestTransportsAndOps:
    def test_unix_socket_round_trip(self, service, tmp_path):
        socket_path = str(tmp_path / "serve.sock")

        async def run():
            gateway = ServeGateway(service, ServeConfig(host=None, unix_path=socket_path))
            await gateway.start()
            try:
                reader, writer = await asyncio.open_unix_connection(socket_path)
                writer.write(request_frame(ServeRequest(id="u1", model=MODEL, samples=(0,))))
                await writer.drain()
                raw = await reader.readline()
                writer.close()
                return json.loads(raw)
            finally:
                await gateway.drain()

        payload = asyncio.run(run())
        assert payload["outcome"] == OUTCOME_OK

    def test_ping_and_metrics_ops_bypass_the_queue(self, service):
        async def run():
            gateway = make_gateway(service)
            await gateway.start()
            try:
                pong = await tcp_send_raw(gateway.bound_port, b'{"op": "ping", "id": "p"}\n')
                await tcp_request(gateway.bound_port, ServeRequest(id="m0", model=MODEL, samples=(0,)))
                snapshot = await tcp_send_raw(gateway.bound_port, b'{"op": "metrics"}\n')
                return pong, snapshot
            finally:
                await gateway.drain()

        pong, snapshot = asyncio.run(run())
        assert pong == {"id": "p", "ok": True, "op": "ping"}
        assert snapshot["requests"][OUTCOME_OK] == 1
        assert snapshot["shed"] == 0
        # admin ops never count as classifications
        assert sum(snapshot["requests"].values()) == 1


class TestCLI:
    def test_main_serves_until_sigterm_then_drains(self, tmp_path, capsys):
        """``main()`` end to end, in process: build a synthetic model, serve
        over a unix socket, answer a request, drain on SIGTERM, export
        metrics, print the ready line and drain summary, exit 0."""

        sock_path = str(tmp_path / "gw.sock")
        metrics_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        results: dict[str, object] = {}

        def client() -> None:
            try:
                deadline = time.monotonic() + 60.0
                while not os.path.exists(sock_path):
                    assert time.monotonic() < deadline, "gateway never bound its socket"
                    time.sleep(0.01)
                with socket.socket(socket.AF_UNIX) as sock:
                    while sock.connect_ex(sock_path) != 0:
                        assert time.monotonic() < deadline, "gateway never listened"
                        time.sleep(0.01)
                    sock.sendall(request_frame(ServeRequest(id="c1", model="net-00", samples=(0, 3))))
                    buf = b""
                    while not buf.endswith(b"\n"):
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        buf += chunk
                    results["payload"] = json.loads(buf)
            except BaseException as exc:  # surfaced after main() returns
                results["error"] = exc
            finally:
                # main() installed an asyncio SIGTERM handler: this triggers
                # the drain instead of killing the test process
                os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        rc = main(
            [
                "--cache",
                str(tmp_path / "cache"),
                "--synthetic-models",
                "1",
                "--seed",
                "7",
                "--unix",
                sock_path,
                "--metrics-out",
                str(metrics_path),
                "--prom-out",
                str(prom_path),
            ]
        )
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert "error" not in results, results["error"]
        assert rc == 0

        payload = results["payload"]
        assert payload["id"] == "c1"
        assert payload["outcome"] == OUTCOME_OK
        assert payload["degraded"] is False

        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines() if line.strip()]
        ready, summary = lines[0], lines[-1]
        assert ready["ready"] is True
        assert ready["models"] == ["net-00"]
        assert ready["unix"] == sock_path
        assert summary["drained"] is True
        assert summary["served"][OUTCOME_OK] == 1
        assert metrics_path.is_file()
        assert "serve_requests_total" in prom_path.read_text(encoding="utf-8")
