"""Salvage layer: carving damaged npz archives, and the store's opt-in
``allow_salvaged`` mode that serves carved arrays instead of quarantining."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from polygraphmr.errors import ArtifactCorrupt, ArtifactMissing, IntegrityMismatch
from polygraphmr.salvage import CRC_MISMATCH, RECOVERED, TRUNCATED, salvage_npz
from polygraphmr.store import ArtifactStore

ZIP_MAGIC = b"PK\x03\x04"


def _member_offsets(data: bytes) -> list[int]:
    """Byte offsets of every local-file-header signature."""

    offsets, i = [], 0
    while True:
        i = data.find(ZIP_MAGIC, i)
        if i < 0:
            return offsets
        offsets.append(i)
        i += 4


def _data_start(data: bytes, offset: int) -> int:
    """First payload byte of the member whose header sits at ``offset``."""

    nlen, elen = struct.unpack_from("<HH", data, offset + 26)
    return offset + 30 + nlen + elen


def _valid_probs(n: int = 40, c: int = 10, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.uniform(0.1, 1.0, size=(n, c))
    return (raw / raw.sum(axis=1, keepdims=True)).astype(np.float32)


def _write_salvageable_probs(path, *, probs: np.ndarray | None = None) -> np.ndarray:
    """An npz whose ``probs`` member is intact but whose container is broken:
    member order is (probs, filler) and the cut lands inside filler."""

    if probs is None:
        probs = _valid_probs()
    filler = np.arange(4096, dtype=np.float64)
    np.savez(path, probs=probs, filler=filler)
    data = path.read_bytes()
    offsets = _member_offsets(data)
    assert len(offsets) >= 2, "expected two members"
    path.write_bytes(data[: offsets[1] + 40])  # filler header survives, its data does not
    return probs


class TestCarving:
    def test_intact_archive_recovers_every_member(self, tmp_path):
        p = tmp_path / "ok.npz"
        a, b = _valid_probs(), np.arange(12, dtype=np.int64)
        np.savez(p, probs=a, aux=b)
        report = salvage_npz(p)
        assert report.ok
        assert report.recovered == ["aux", "probs"]
        assert np.array_equal(report.arrays["probs"], a)
        assert np.array_equal(report.arrays["aux"], b)
        assert report.n_lost == 0
        assert all(o.status == RECOVERED for o in report.outcomes)

    def test_compressed_archive_recovers(self, tmp_path):
        p = tmp_path / "ok.npz"
        a = _valid_probs()
        np.savez_compressed(p, probs=a)
        report = salvage_npz(p)
        assert np.array_equal(report.arrays["probs"], a)

    def test_tail_truncation_recovers_head_member(self, tmp_path):
        p = tmp_path / "cut.npz"
        probs = _write_salvageable_probs(p)
        report = salvage_npz(p)
        assert report.ok
        assert report.recovered == ["probs"]
        assert np.array_equal(report.arrays["probs"], probs)
        assert report.n_lost >= 1
        truncated = [o for o in report.outcomes if o.status == TRUNCATED]
        assert truncated and truncated[0].name == "filler.npy"

    def test_byte_flip_is_caught_by_crc(self, tmp_path):
        p = tmp_path / "flip.npz"
        np.savez(p, probs=_valid_probs(), aux=np.arange(12, dtype=np.int64))
        data = bytearray(p.read_bytes())
        offsets = _member_offsets(data)
        hit = _data_start(bytes(data), offsets[0]) + 200  # inside probs's payload
        assert hit < offsets[1]
        data[hit] ^= 0xFF
        p.write_bytes(bytes(data))
        report = salvage_npz(p)
        assert "probs" not in report.arrays
        assert np.array_equal(report.arrays["aux"], np.arange(12, dtype=np.int64))
        bad = {o.name: o.status for o in report.outcomes}
        assert bad["probs.npy"] == CRC_MISMATCH

    def test_hopeless_bytes_yield_empty_report_without_raising(self, tmp_path):
        p = tmp_path / "noise.npz"
        p.write_bytes(bytes(np.random.default_rng(0).integers(0, 256, size=2048, dtype=np.uint8)))
        report = salvage_npz(p)
        assert not report.ok
        assert report.arrays == {}

    def test_missing_file_propagates(self, tmp_path):
        with pytest.raises(ArtifactMissing):
            salvage_npz(tmp_path / "absent.npz")


class TestStoreSalvage:
    def _model_dir(self, tmp_path):
        mdir = tmp_path / "cache" / "m"
        mdir.mkdir(parents=True)
        return tmp_path / "cache", mdir

    def test_allow_salvaged_serves_carved_probs(self, tmp_path):
        root, mdir = self._model_dir(tmp_path)
        path = mdir / "ORG.val.probs.npz"
        probs = _write_salvageable_probs(path)

        store = ArtifactStore(root, allow_salvaged=True)
        out = store.load_probs("m", "ORG", "val")
        assert np.array_equal(out, probs.astype(np.float64))  # carved bytes, exactly
        assert store.is_salvaged(path)
        assert not store.is_quarantined(path)
        assert store.salvaged[str(path)].recovered == ["probs"]

    def test_default_store_quarantines_the_same_file(self, tmp_path):
        root, mdir = self._model_dir(tmp_path)
        path = mdir / "ORG.val.probs.npz"
        _write_salvageable_probs(path)

        store = ArtifactStore(root)  # allow_salvaged defaults off
        with pytest.raises(ArtifactCorrupt):
            store.load_probs("m", "ORG", "val")
        assert store.is_quarantined(path)
        assert not store.is_salvaged(path)

    def test_scan_model_reports_salvaged_status(self, tmp_path):
        root, mdir = self._model_dir(tmp_path)
        _write_salvageable_probs(mdir / "ORG.val.probs.npz")

        store = ArtifactStore(root, allow_salvaged=True)
        manifest = store.scan_model("m")
        by_file = {r.filename: r for r in manifest.records}
        record = by_file["ORG.val.probs.npz"]
        assert record.status.status == "salvaged"
        assert record.ok  # salvaged counts as usable
        assert manifest.n_salvaged == 1

    def test_semantic_garbage_is_never_salvaged(self, tmp_path):
        """Carving rescues bytes, not meaning: a carved probs matrix that is
        off the simplex must still be quarantined."""

        root, mdir = self._model_dir(tmp_path)
        path = mdir / "ORG.val.probs.npz"
        bad = np.ones((10, 5), dtype=np.float32)  # rows sum to 5
        _write_salvageable_probs(path, probs=bad)

        store = ArtifactStore(root, allow_salvaged=True)
        with pytest.raises(ArtifactCorrupt):
            store.load_probs("m", "ORG", "val")
        assert store.is_quarantined(path)
        assert not store.is_salvaged(path)

    def test_intact_but_off_simplex_raises_integrity_mismatch(self, tmp_path):
        root, mdir = self._model_dir(tmp_path)
        path = mdir / "ORG.val.probs.npz"
        np.savez(path, probs=np.ones((10, 5), dtype=np.float32))

        store = ArtifactStore(root, allow_salvaged=True)
        with pytest.raises(IntegrityMismatch):
            store.load_probs("m", "ORG", "val")
        assert store.is_quarantined(path)

    def test_ensemble_runs_through_a_salvaged_member(self, synthetic_cache):
        """End to end: damage one member's container in a salvageable way and
        the ensemble keeps it (full result) when salvage is enabled."""

        from polygraphmr.ensemble import DegradedResult, EnsembleRuntime

        target = synthetic_cache / "tinynet" / "pp-Hist.val.probs.npz"
        intact = np.load(target)["probs"]
        filler_path = synthetic_cache / "tinynet" / "rebuilt.npz"
        np.savez(filler_path, probs=intact, filler=np.arange(4096, dtype=np.float64))
        rebuilt = filler_path.read_bytes()
        filler_path.unlink()
        offsets = _member_offsets(rebuilt)
        target.write_bytes(rebuilt[: offsets[1] + 40])

        salvaging = EnsembleRuntime(ArtifactStore(synthetic_cache, allow_salvaged=True), seed=0)
        result = salvaging.run_model("tinynet")
        assert not isinstance(result, DegradedResult)
        assert "pp-Hist" in result.members

        strict = EnsembleRuntime(ArtifactStore(synthetic_cache), seed=0)
        degraded = strict.run_model("tinynet")
        assert isinstance(degraded, DegradedResult)
        assert "pp-Hist" in degraded.quarantined

    def test_seed_cache_headers_are_cut_through(self, seed_store):
        """Honesty check: the seed cache's damage cuts through the member
        headers, so salvage must report zero recoveries, not invent data."""

        model = seed_store.models()[0]
        mdir = seed_store.model_dir(model)
        npzs = sorted(mdir.glob("*.npz"))[:3]
        assert npzs
        for path in npzs:
            report = salvage_npz(path)
            assert report.n_recovered == 0


def test_salvage_survives_copy(tmp_path):
    """salvage_npz(data=...) works on in-memory bytes identically."""

    p = tmp_path / "cut.npz"
    probs = _write_salvageable_probs(p)
    via_file = salvage_npz(p)
    via_bytes = salvage_npz(p, data=p.read_bytes())
    assert via_file.recovered == via_bytes.recovered == ["probs"]
    assert np.array_equal(via_bytes.arrays["probs"], probs)
