"""Property tests for the serving wire codec: parse∘serialize is a fixed
point, malformed frames are rejected with exact field paths, and the frame
assembler reconstructs frames across arbitrary chunk splits."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from polygraphmr.errors import ConfigError, ServeError
from polygraphmr.serve import (
    MAX_ID_CHARS,
    MAX_SAMPLES_PER_REQUEST,
    FrameAssembler,
    ServeRequest,
    parse_request,
    request_frame,
)

_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_.", min_size=1, max_size=24
)
_models = _ids
_samples = st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=1, max_size=32)
_deadlines = st.one_of(
    st.none(),
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False).map(float),
)


@st.composite
def classify_requests(draw) -> ServeRequest:
    return ServeRequest(
        id=draw(_ids),
        model=draw(_models),
        samples=tuple(draw(_samples)),
        deadline_ms=draw(_deadlines),
    )


@st.composite
def classify_dicts(draw) -> dict:
    """Always-valid classify wire mappings (the raw-JSON view)."""

    d: dict = {
        "id": draw(_ids),
        "model": draw(_models),
        "samples": draw(_samples),
    }
    if draw(st.booleans()):
        d["deadline_ms"] = draw(
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False)
        )
    return d


class TestCodecFixedPoint:
    @given(classify_requests())
    def test_parse_of_serialize_is_a_fixed_point(self, request_):
        frame = request_frame(request_)
        assert frame.endswith(b"\n")
        again = parse_request(frame[:-1])
        assert again == request_
        assert request_frame(again) == frame

    @given(st.sampled_from(["ping", "metrics"]), st.one_of(st.just(""), _ids))
    def test_op_frames_round_trip(self, op, rid):
        request_ = ServeRequest(id=rid, op=op)
        assert parse_request(request_frame(request_)[:-1]) == request_

    @given(classify_dicts())
    def test_key_order_never_matters(self, d):
        shuffled = dict(reversed(list(d.items())))
        assert parse_request(json.dumps(shuffled)) == parse_request(json.dumps(d))

    @given(classify_dicts())
    def test_parse_accepts_bytes_and_str_identically(self, d):
        text = json.dumps(d)
        assert parse_request(text) == parse_request(text.encode("utf-8"))


class TestMalformedFramesNameTheField:
    @given(classify_dicts(), st.sampled_from(["id", "model", "samples", "deadline_ms"]))
    def test_structurally_wrong_value_names_the_exact_field(self, d, field):
        corrupted = {**d, field: {"not": "valid"}}
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps(corrupted))
        assert exc_info.value.field == f"request.{field}"
        assert exc_info.value.reason == "bad-type"

    @given(classify_dicts(), _ids)
    def test_unknown_fields_are_rejected_by_name(self, d, extra_key):
        if extra_key in ("id", "model", "samples", "deadline_ms", "op"):
            return
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps({**d, extra_key: 1}))
        assert exc_info.value.field == f"request.{extra_key}"
        assert exc_info.value.reason == "unknown-field"

    @given(classify_dicts(), st.integers(min_value=0, max_value=31), st.integers(max_value=-1))
    def test_negative_sample_is_named_by_index(self, d, pos, bad):
        samples = list(d["samples"])
        pos = pos % len(samples)
        samples[pos] = bad
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps({**d, "samples": samples}))
        assert exc_info.value.field == f"request.samples[{pos}]"
        assert exc_info.value.reason == "out-of-range"

    @given(classify_dicts(), st.integers(min_value=0, max_value=31), st.sampled_from([True, False, 1.5, "7", None]))
    def test_non_integer_sample_is_named_by_index(self, d, pos, bad):
        samples = list(d["samples"])
        pos = pos % len(samples)
        samples[pos] = bad
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps({**d, "samples": samples}))
        assert exc_info.value.field == f"request.samples[{pos}]"
        assert exc_info.value.reason == "bad-type"

    @given(classify_dicts(), st.sampled_from(["model", "samples"]))
    def test_missing_required_field_is_named(self, d, field):
        del d[field]
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps(d))
        assert exc_info.value.field == f"request.{field}"
        assert exc_info.value.reason == "missing-field"

    @given(classify_dicts(), st.sampled_from([0, 0.0, -1, -0.5, float("nan"), float("inf")]))
    def test_non_positive_or_non_finite_deadline_is_rejected(self, d, bad):
        text = json.dumps({**d, "deadline_ms": bad}, allow_nan=True)
        with pytest.raises(ConfigError) as exc_info:
            parse_request(text)
        assert exc_info.value.field == "request.deadline_ms"
        assert exc_info.value.reason == "out-of-range"

    @given(st.sampled_from(["ping", "metrics"]), st.sampled_from(["model", "samples", "deadline_ms"]))
    def test_classify_fields_are_rejected_on_admin_ops(self, op, field):
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps({"op": op, field: 1}))
        assert exc_info.value.field == f"request.{field}"
        assert exc_info.value.reason == "unexpected-field"

    @given(st.text(max_size=64))
    def test_non_json_or_non_object_frames_blame_the_request(self, text):
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError:
            decoded = ...  # not JSON at all
        if isinstance(decoded, dict):
            return
        with pytest.raises(ConfigError) as exc_info:
            parse_request(text)
        assert exc_info.value.field == "request"
        assert exc_info.value.reason in ("bad-json", "not-an-object")

    def test_bad_utf8_and_oversize_limits(self):
        with pytest.raises(ConfigError) as exc_info:
            parse_request(b"\xff\xfe{}")
        assert (exc_info.value.field, exc_info.value.reason) == ("request", "bad-utf8")
        with pytest.raises(ConfigError) as exc_info:
            parse_request(json.dumps({"id": "x" * (MAX_ID_CHARS + 1), "model": "m", "samples": [0]}))
        assert (exc_info.value.field, exc_info.value.reason) == ("request.id", "too-long")
        with pytest.raises(ConfigError) as exc_info:
            parse_request(
                json.dumps({"id": "r", "model": "m", "samples": [0] * (MAX_SAMPLES_PER_REQUEST + 1)})
            )
        assert (exc_info.value.field, exc_info.value.reason) == ("request.samples", "too-many")


class TestFrameAssembly:
    @given(
        st.lists(classify_requests(), min_size=1, max_size=8),
        st.data(),
    )
    @settings(max_examples=60)
    def test_reassembly_across_arbitrary_chunk_splits(self, requests, data):
        """However the byte stream is sliced, the assembler yields exactly
        the original frames, in order, each parseable back to its request."""

        stream = b"".join(request_frame(r) for r in requests)
        cuts = sorted(
            data.draw(
                st.lists(st.integers(min_value=0, max_value=len(stream)), max_size=16),
                label="cuts",
            )
        )
        chunks, prev = [], 0
        for cut in [*cuts, len(stream)]:
            chunks.append(stream[prev:cut])
            prev = cut

        assembler = FrameAssembler()
        frames = [frame for chunk in chunks for frame in assembler.feed(chunk)]
        assert assembler.pending_bytes == 0
        assert frames == [request_frame(r)[:-1] for r in requests]
        assert [parse_request(f) for f in frames] == requests

    @given(st.integers(min_value=1, max_value=64))
    def test_unterminated_oversize_frame_poisons_the_connection(self, limit):
        assembler = FrameAssembler(max_frame_bytes=limit)
        with pytest.raises(ServeError) as exc_info:
            assembler.feed(b"x" * (limit + 1))
        assert exc_info.value.reason == "frame-too-large"
        # a terminated frame of any length under the bound is still fine
        ok = FrameAssembler(max_frame_bytes=limit)
        assert ok.feed(b"y" * limit + b"\n") == [b"y" * limit]
