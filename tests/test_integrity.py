"""Integrity layer: container validation, semantic checks, retry behavior."""

from __future__ import annotations

import numpy as np
import pytest

from polygraphmr.errors import (
    ArtifactCorrupt,
    ArtifactMissing,
    IntegrityMismatch,
    RetryPolicy,
    TransientIOError,
    retry_with_backoff,
)
from polygraphmr.integrity import (
    check_probs,
    check_weights,
    load_npz_validated,
    probe_artifact,
    validate_zip_container,
)


def _write_npz(path, **arrays):
    np.savez(path, **arrays)
    return path


class TestContainerValidation:
    def test_valid_npz_passes(self, tmp_path):
        p = _write_npz(tmp_path / "ok.npz", probs=np.eye(3))
        report = validate_zip_container(p)
        assert report.ok
        assert "probs.npy" in report.members

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.npz"
        p.write_bytes(b"")
        report = validate_zip_container(p)
        assert not report.ok
        assert report.reason == "empty"

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not a zip file at all")
        report = validate_zip_container(p)
        assert not report.ok
        assert report.reason == "bad-magic"

    def test_no_eocd(self, tmp_path):
        src = _write_npz(tmp_path / "ok.npz", probs=np.eye(3))
        p = tmp_path / "headless.npz"
        p.write_bytes(src.read_bytes()[:40])  # keep local header, drop the rest
        report = validate_zip_container(p)
        assert not report.ok
        assert report.reason == "no-eocd"

    def test_middle_cut_detected_as_truncated(self, tmp_path):
        """The seed-cache damage pattern: head and tail intact, middle removed."""

        src = _write_npz(tmp_path / "ok.npz", probs=np.random.default_rng(0).random((64, 10)))
        data = src.read_bytes()
        cut = data[:100] + data[-120:]  # EOCD survives, offsets now lie
        p = tmp_path / "cut.npz"
        p.write_bytes(cut)
        report = validate_zip_container(p)
        assert not report.ok
        assert report.reason in ("truncated", "bad-zip")

    def test_probe_never_raises_on_missing(self, tmp_path):
        report = probe_artifact(tmp_path / "ghost.npz")
        assert not report.ok
        assert report.reason == "not-found"


class TestLoadNpz:
    def test_round_trip(self, tmp_path):
        p = _write_npz(tmp_path / "a.npz", probs=np.full((4, 2), 0.5))
        arrays = load_npz_validated(p, expect_keys=("probs",))
        assert arrays["probs"].shape == (4, 2)

    def test_missing_file_raises_artifact_missing(self, tmp_path):
        with pytest.raises(ArtifactMissing):
            load_npz_validated(tmp_path / "ghost.npz")

    def test_corrupt_raises_artifact_corrupt(self, tmp_path):
        p = tmp_path / "bad.npz"
        p.write_bytes(b"PK\x03\x04 followed by garbage")
        with pytest.raises(ArtifactCorrupt):
            load_npz_validated(p)

    def test_missing_keys_raise_integrity_mismatch(self, tmp_path):
        p = _write_npz(tmp_path / "b.npz", other=np.zeros(3))
        with pytest.raises(IntegrityMismatch) as exc_info:
            load_npz_validated(p, expect_keys=("probs",))
        assert exc_info.value.reason == "missing-keys"


class TestSemanticChecks:
    def test_good_probs(self):
        probs = np.full((5, 4), 0.25, dtype=np.float32)
        out = check_probs(probs, n_classes=4)
        assert out.dtype == np.float64

    @pytest.mark.parametrize(
        ("arr", "reason"),
        [
            (np.zeros(3), "probs-bad-shape"),
            (np.zeros((2, 3), dtype=np.int64), "probs-bad-dtype"),
            (np.array([[0.5, np.nan]]), "probs-not-finite"),
            (np.array([[1.5, -0.5]]), "probs-out-of-range"),
            (np.array([[0.3, 0.3]]), "probs-not-simplex"),
        ],
    )
    def test_bad_probs(self, arr, reason):
        with pytest.raises(IntegrityMismatch) as exc_info:
            check_probs(arr)
        assert exc_info.value.reason == reason

    def test_wrong_class_count(self):
        with pytest.raises(IntegrityMismatch) as exc_info:
            check_probs(np.full((2, 3), 1 / 3), n_classes=10)
        assert exc_info.value.reason == "probs-bad-classes"

    def test_weights_checks(self):
        ok = {"w": np.zeros((2, 2), dtype=np.float32)}
        assert check_weights(ok) is ok
        with pytest.raises(IntegrityMismatch):
            check_weights({})
        with pytest.raises(IntegrityMismatch):
            check_weights({"w": np.array([np.inf])})
        with pytest.raises(IntegrityMismatch):
            check_weights({"w": np.array([1, 2, 3])})


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        waits: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("blip")
            return "data"

        policy = RetryPolicy(attempts=3, base_delay=0.01, sleep=waits.append)
        assert retry_with_backoff(flaky, path="x", policy=policy) == "data"
        assert calls["n"] == 3
        assert waits == [0.01, 0.02]  # exponential

    def test_exhaustion_wraps_in_transient_io_error(self):
        def always_fails():
            raise OSError("dead disk")

        policy = RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda _: None)
        with pytest.raises(TransientIOError) as exc_info:
            retry_with_backoff(always_fails, path="/dev/bad", policy=policy)
        assert exc_info.value.attempts == 2

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("logic bug")

        policy = RetryPolicy(attempts=5, sleep=lambda _: None)
        with pytest.raises(ValueError):
            retry_with_backoff(boom, policy=policy)
        assert calls["n"] == 1

    def test_backoff_is_capped(self):
        policy = RetryPolicy(attempts=10, base_delay=0.5, max_delay=1.0, sleep=lambda _: None)
        assert policy.delay_for(6) == 1.0

    def test_jittered_schedule_is_deterministic_per_seed(self):
        policy = RetryPolicy(attempts=6, base_delay=0.01, jitter=0.5, seed=42, sleep=lambda _: None)
        assert policy.schedule() == policy.schedule()  # same policy, same schedule
        reseeded = RetryPolicy(attempts=6, base_delay=0.01, jitter=0.5, seed=43, sleep=lambda _: None)
        assert policy.schedule() != reseeded.schedule()

    def test_jitter_only_ever_adds_a_bounded_fraction(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=10.0, jitter=0.25, seed=1, sleep=lambda _: None)
        plain = RetryPolicy(attempts=5, base_delay=0.1, max_delay=10.0, sleep=lambda _: None)
        for with_jitter, base in zip(policy.schedule(), plain.schedule()):
            assert base <= with_jitter <= base * 1.25

    def test_total_sleep_per_call_is_capped(self):
        policy = RetryPolicy(
            attempts=20, base_delay=0.5, max_delay=4.0, max_total_sleep=2.5, sleep=lambda _: None
        )
        schedule = policy.schedule()
        assert len(schedule) == 19  # one sleep between each pair of attempts
        assert sum(schedule) <= 2.5 + 1e-9
        assert schedule[-1] == 0.0  # budget exhausted: later retries are immediate

    def test_backoff_sleeps_follow_the_schedule(self):
        waits: list[float] = []
        policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=1.0, seed=7, sleep=waits.append)

        def always_fails():
            raise OSError("blip")

        with pytest.raises(TransientIOError):
            retry_with_backoff(always_fails, path="x", policy=policy)
        assert waits == policy.schedule()
