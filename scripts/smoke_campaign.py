#!/usr/bin/env python3
"""End-to-end crash/resume smoke test for the campaign runner.

Builds a synthetic cache, starts a 5-trial campaign as a subprocess, SIGTERMs
it once the journal shows 2 completed trials, resumes it, and asserts the
journal ends up with exactly 5 checksum-valid trial records.  Exits 0 on
success; any deviation is a hard failure.  Run by CI on every push::

    PYTHONPATH=src python scripts/smoke_campaign.py
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from polygraphmr.campaign import CampaignJournal  # noqa: E402

N_TRIALS = 5
KILL_AFTER = 2
POLL_S = 0.05
DEADLINE_S = 120.0


def campaign_cmd(out_dir: Path, cache_dir: Path, *, resume: bool) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "polygraphmr.campaign",
        "--synthetic",
        str(cache_dir),
        "--out",
        str(out_dir),
        "--trials",
        str(N_TRIALS),
        "--seed",
        "7",
        "--timeout",
        "60",
    ]
    if resume:
        cmd.append("--resume")
    return cmd


def n_trials_journalled(journal: CampaignJournal) -> int:
    try:
        return len(journal.trial_records())
    except Exception:  # torn mid-write while we poll — count what parses
        return 0


def attempt(kill_after: int) -> int | None:
    """One kill/resume cycle; 0 = pass, 1 = fail, None = kill landed too
    late to interrupt (caller should retry with an earlier kill point)."""

    tmp = Path(tempfile.mkdtemp(prefix="polygraphmr-smoke-"))
    out_dir, cache_dir = tmp / "campaign", tmp / "cache"
    journal = CampaignJournal(out_dir / "journal.jsonl")

    env = {"PYTHONPATH": str(REPO_ROOT / "src")}
    proc = subprocess.Popen(campaign_cmd(out_dir, cache_dir, resume=False), env=env)
    deadline = time.monotonic() + DEADLINE_S
    while n_trials_journalled(journal) < kill_after:
        if proc.poll() is not None:
            print(f"FAIL: campaign exited ({proc.returncode}) before trial {kill_after}", file=sys.stderr)
            return 1
        if time.monotonic() > deadline:
            proc.kill()
            print("FAIL: timed out waiting for the first trials", file=sys.stderr)
            return 1
        time.sleep(POLL_S)
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)
    interrupted = n_trials_journalled(journal)
    if interrupted >= N_TRIALS:
        print(f"kill after {kill_after} landed too late ({interrupted} trials done); retrying")
        return None
    if interrupted < kill_after:
        print(f"FAIL: journal lost trials after SIGTERM: {interrupted} < {kill_after}", file=sys.stderr)
        return 1
    print(f"killed after {interrupted} trial(s) (exit {proc.returncode}); resuming")

    resumed = subprocess.run(campaign_cmd(out_dir, cache_dir, resume=True), env=env, capture_output=True, text=True)
    if resumed.returncode != 0:
        print(f"FAIL: resume exited {resumed.returncode}: {resumed.stderr}", file=sys.stderr)
        return 1
    summary = json.loads(resumed.stdout)

    trials = journal.trial_records()
    ok = (
        len(trials) == N_TRIALS
        and sorted(trials) == list(range(N_TRIALS))
        and summary["completed"] == N_TRIALS
        and all(r["outcome"] == "ok" for r in trials.values())
    )
    if not ok:
        print(f"FAIL: journal holds {sorted(trials)} / summary {summary}", file=sys.stderr)
        return 1
    print(f"OK: {len(trials)} checksum-valid trial records after kill + resume")
    return 0


def main() -> int:
    for kill_after in (KILL_AFTER, 1, 1):
        status = attempt(kill_after)
        if status is not None:
            return status
    print("FAIL: could not interrupt the campaign in three attempts", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
