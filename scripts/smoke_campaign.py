#!/usr/bin/env python3
"""End-to-end smoke test for the campaign runner: parallel speedup,
serial≡parallel byte-identity, and SIGTERM-drain/resume of a 4-worker run.

Three phases, all against the same 4-model synthetic cache::

    PYTHONPATH=src python scripts/smoke_campaign.py

1. **Equivalence + speedup** — a 16-trial campaign with ``--workers 4`` must
   produce a ``journal.jsonl`` byte-identical to the serial run's and (with
   each trial padded by ``--trial-sleep``, so the comparison measures the
   executor, not the model) complete at least 2x faster wall-clock.
2. **Kill/drain** — SIGTERM the 4-worker run mid-campaign; every worker
   finishes its in-flight trial and journals it (exit 3, no lost records).
3. **Resume** — ``--resume`` completes the interrupted run; the merged
   journal is byte-identical to the serial reference, every index exactly
   once.
4. **Scenario sweep** — a 3-scenario declarative sweep
   (``--scenarios channel-bitflip-10pct,quantize-4bit,stuck-at-zero-1pct``)
   is SIGKILLed mid-run, resumed to completion, byte-compared against both
   a straight serial run and a ``--workers 4`` run, audited with ``verify``
   (exit 0), and its ``report`` must reconcile per-scenario trial counts
   exactly with the journal.
5. **Batched identity** — ``--batch-size 8`` reruns the phase-1 campaign
   through the vectorized batch engine, serially and with 4 workers; both
   journals and checkpoints must be byte-identical to the per-trial serial
   reference and verify exit 0.

Every phase boundary is additionally audited with ``python -m
polygraphmr.campaign verify`` — after the serial run, after the shard
merge, after the SIGTERM kill (shards still present), and after the
resume — plus one negative check that a single flipped byte makes verify
fail with exit 3 naming the damaged record.

Exits 0 on success; any deviation is a hard failure.  Run by CI on every
push.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from polygraphmr.campaign import CampaignJournal, scan_campaign  # noqa: E402

N_TRIALS = 16
N_MODELS = 4
TRIAL_SLEEP_S = 0.2
MIN_SPEEDUP = 2.0
SPEEDUP_RETRIES = 3  # shared CI runners can blip; retry the timing, not the bytes
POLL_S = 0.05
DEADLINE_S = 300.0
ENV = {"PYTHONPATH": str(REPO_ROOT / "src")}


SCENARIOS = ("channel-bitflip-10pct", "quantize-4bit", "stuck-at-zero-1pct")


def campaign_cmd(
    cache: Path,
    out: Path,
    *,
    workers: int,
    resume: bool = False,
    scenarios: bool = False,
    batch_size: int | None = None,
) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "polygraphmr.campaign",
        "--synthetic",
        str(cache),
        "--synthetic-models",
        str(N_MODELS),
        "--out",
        str(out),
        "--trials",
        str(N_TRIALS),
        "--seed",
        "7",
        "--timeout",
        "60",
        "--trial-sleep",
        str(TRIAL_SLEEP_S),
        "--workers",
        str(workers),
    ]
    if scenarios:
        cmd += ["--scenarios", ",".join(SCENARIOS)]
    if resume:
        cmd.append("--resume")
    # the timing/kill phases measure the per-trial executor: speedup floors
    # and mid-run kill windows assume one sleep per trial, which the batch
    # engine deliberately amortizes away -- so batching is opt-in here
    cmd += ["--no-batch"] if batch_size is None else ["--batch-size", str(batch_size)]
    return cmd


def timed_run(
    cache: Path, out: Path, *, workers: int, scenarios: bool = False, batch_size: int | None = None
) -> tuple[float, dict]:
    start = time.monotonic()
    proc = subprocess.run(
        campaign_cmd(cache, out, workers=workers, scenarios=scenarios, batch_size=batch_size),
        env=ENV,
        capture_output=True,
        text=True,
    )
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: workers={workers} run exited {proc.returncode}: {proc.stderr}")
    return elapsed, json.loads(proc.stdout)


def verify_dir(out: Path, label: str) -> dict:
    """Run ``campaign verify --json`` against ``out``; exit-0 is mandatory."""

    proc = subprocess.run(
        [sys.executable, "-m", "polygraphmr.campaign", "verify", str(out), "--json"],
        env=ENV,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: verify ({label}) exited {proc.returncode}: {proc.stdout}{proc.stderr}")
    report = json.loads(proc.stdout)
    print(
        f"OK: verify ({label}): {report['records_verified']} record(s), "
        f"{report['trials']} trial(s) replay-match"
    )
    return report


def verify_detects_flipped_byte(out: Path) -> None:
    """Negative control: corrupt one byte in a copy of the campaign and
    verify must fail with exit 3, naming the damaged record."""

    import shutil

    damaged = out.parent / (out.name + "-damaged")
    shutil.copytree(out, damaged)
    raw = bytearray((damaged / "journal.jsonl").read_bytes())
    raw[len(raw) // 2] ^= 0x01
    (damaged / "journal.jsonl").write_bytes(bytes(raw))
    proc = subprocess.run(
        [sys.executable, "-m", "polygraphmr.campaign", "verify", str(damaged), "--json"],
        env=ENV,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 3:
        raise SystemExit(f"FAIL: verify of damaged journal exited {proc.returncode}, expected 3")
    report = json.loads(proc.stdout)
    if not report.get("first_bad") or report["first_bad"].get("line") is None:
        raise SystemExit(f"FAIL: damaged-journal report names no offending record: {report}")
    print(
        f"OK: flipped byte detected (exit 3) at {report['first_bad']['file']} "
        f"line {report['first_bad']['line']}"
    )


def n_trials_journalled(out: Path) -> int:
    try:
        return len(scan_campaign(out).trials)
    except Exception:  # torn mid-write while we poll — count what verifies
        return 0


def phase_equivalence_and_speedup(tmp: Path) -> None:
    cache = tmp / "cache"
    serial_out, parallel_out = tmp / "serial", tmp / "parallel"

    serial_s, serial_summary = timed_run(cache, serial_out, workers=1)
    parallel_s, parallel_summary = timed_run(cache, parallel_out, workers=4)

    serial_bytes = (serial_out / "journal.jsonl").read_bytes()
    parallel_bytes = (parallel_out / "journal.jsonl").read_bytes()
    if serial_bytes != parallel_bytes:
        raise SystemExit("FAIL: parallel merged journal differs from the serial journal")
    if (serial_out / "checkpoint.json").read_bytes() != (parallel_out / "checkpoint.json").read_bytes():
        raise SystemExit("FAIL: final checkpoints differ between serial and parallel")
    if serial_summary["outcomes"] != parallel_summary["outcomes"]:
        raise SystemExit(
            f"FAIL: outcome counts differ: {serial_summary['outcomes']} != {parallel_summary['outcomes']}"
        )
    print(f"OK: 4-worker journal byte-identical to serial ({len(serial_bytes)} bytes)")
    verify_dir(serial_out, "serial run")
    verify_dir(parallel_out, "4-worker merge")
    verify_detects_flipped_byte(serial_out)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"serial {serial_s:.2f}s / parallel {parallel_s:.2f}s -> speedup {speedup:.2f}x")
    attempt = 1
    while speedup < MIN_SPEEDUP and attempt < SPEEDUP_RETRIES:
        attempt += 1
        print(f"speedup below {MIN_SPEEDUP}x; re-timing (attempt {attempt}/{SPEEDUP_RETRIES})")
        retry = tmp / f"retry-{attempt}"
        serial_s, _ = timed_run(cache, retry / "serial", workers=1)
        parallel_s, _ = timed_run(cache, retry / "parallel", workers=4)
        speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        print(f"serial {serial_s:.2f}s / parallel {parallel_s:.2f}s -> speedup {speedup:.2f}x")
    if speedup < MIN_SPEEDUP:
        raise SystemExit(f"FAIL: parallel speedup {speedup:.2f}x < {MIN_SPEEDUP}x")
    print(f"OK: >= {MIN_SPEEDUP}x wall-clock speedup with 4 workers")


def phase_kill_and_resume(tmp: Path) -> None:
    cache = tmp / "cache"
    out = tmp / "killed"
    reference = (tmp / "serial" / "journal.jsonl").read_bytes()

    proc = subprocess.Popen(campaign_cmd(cache, out, workers=4), env=ENV)
    deadline = time.monotonic() + DEADLINE_S
    while n_trials_journalled(out) < 3:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: campaign exited ({proc.returncode}) before it could be killed")
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("FAIL: timed out waiting for the first parallel trials")
        time.sleep(POLL_S)
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=120)
    interrupted = n_trials_journalled(out)
    if proc.returncode != 3:
        raise SystemExit(f"FAIL: SIGTERMed parallel run exited {proc.returncode}, expected 3")
    if interrupted >= N_TRIALS:
        print("note: SIGTERM landed after completion was unavoidable; journal already full")
    print(f"killed 4-worker run after {interrupted} journalled trial(s) (exit 3); resuming")
    verify_dir(out, "post-kill (shards intact)")

    resumed = subprocess.run(
        campaign_cmd(cache, out, workers=4, resume=True), env=ENV, capture_output=True, text=True
    )
    if resumed.returncode != 0:
        raise SystemExit(f"FAIL: resume exited {resumed.returncode}: {resumed.stderr}")
    summary = json.loads(resumed.stdout)
    trials = CampaignJournal(out / "journal.jsonl").trial_records()
    if summary["completed"] != N_TRIALS or sorted(trials) != list(range(N_TRIALS)):
        raise SystemExit(f"FAIL: resume left {sorted(trials)} / summary {summary}")
    if (out / "journal.jsonl").read_bytes() != reference:
        raise SystemExit("FAIL: resumed parallel journal differs from the serial reference")
    print(f"OK: resume completed all {N_TRIALS} trials; merged journal byte-identical to serial")
    verify_dir(out, "post-resume merge")


def phase_scenario_sweep(tmp: Path) -> None:
    """Declarative sweep: SIGKILL mid-run, resume, byte-identity, report."""

    import os

    cache = tmp / "cache"
    serial_out, parallel_out, killed_out = tmp / "sc-serial", tmp / "sc-parallel", tmp / "sc-killed"

    _, serial_summary = timed_run(cache, serial_out, workers=1, scenarios=True)
    _, parallel_summary = timed_run(cache, parallel_out, workers=4, scenarios=True)
    reference = (serial_out / "journal.jsonl").read_bytes()
    if (parallel_out / "journal.jsonl").read_bytes() != reference:
        raise SystemExit("FAIL: scenario sweep: 4-worker journal differs from serial")
    if serial_summary["outcomes"] != parallel_summary["outcomes"]:
        raise SystemExit("FAIL: scenario sweep: outcome counts differ serial vs 4-worker")
    print(f"OK: {len(SCENARIOS)}-scenario sweep byte-identical serial vs 4 workers")

    proc = subprocess.Popen(
        campaign_cmd(cache, killed_out, workers=4, scenarios=True),
        env=ENV,
        start_new_session=True,  # killpg must not reach the smoke runner itself
    )
    deadline = time.monotonic() + DEADLINE_S
    while n_trials_journalled(killed_out) < 3:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: scenario sweep exited ({proc.returncode}) before SIGKILL")
        if time.monotonic() > deadline:
            os.killpg(proc.pid, signal.SIGKILL)
            raise SystemExit("FAIL: timed out waiting for scenario-sweep trials")
        time.sleep(POLL_S)
    os.killpg(proc.pid, signal.SIGKILL)  # parent AND workers: a true crash
    proc.wait(timeout=120)
    print(f"SIGKILLed scenario sweep after {n_trials_journalled(killed_out)} journalled trial(s); resuming")

    resumed = subprocess.run(
        campaign_cmd(cache, killed_out, workers=4, resume=True, scenarios=True),
        env=ENV,
        capture_output=True,
        text=True,
    )
    if resumed.returncode != 0:
        raise SystemExit(f"FAIL: scenario-sweep resume exited {resumed.returncode}: {resumed.stderr}")
    if (killed_out / "journal.jsonl").read_bytes() != reference:
        raise SystemExit("FAIL: resumed scenario sweep differs from the serial reference")
    print("OK: SIGKILLed scenario sweep resumed; journal byte-identical to serial")
    verify_dir(killed_out, "scenario sweep post-resume")

    report_proc = subprocess.run(
        [sys.executable, "-m", "polygraphmr.campaign", "report", str(killed_out), "--json"],
        env=ENV,
        capture_output=True,
        text=True,
    )
    if report_proc.returncode != 0:
        raise SystemExit(f"FAIL: campaign report exited {report_proc.returncode}: {report_proc.stderr}")
    report = json.loads(report_proc.stdout)
    journalled = len(CampaignJournal(killed_out / "journal.jsonl").trial_records())
    per_scenario = {name: row["trials"] for name, row in report["scenarios"].items()}
    if sum(per_scenario.values()) != journalled or not set(per_scenario) <= set(SCENARIOS):
        raise SystemExit(
            f"FAIL: report does not reconcile with the journal: {per_scenario} vs {journalled} trial(s)"
        )
    print(f"OK: report reconciles with the journal: {per_scenario} == {journalled} trial(s)")


def phase_batched_identity(tmp: Path) -> None:
    """The batch engine must be invisible on disk: batched serial and
    batched 4-worker runs both produce journal + checkpoint bytes identical
    to phase 1's per-trial serial reference, and verify exit 0."""

    cache = tmp / "cache"
    reference_out = tmp / "serial"  # phase 1's per-trial serial run
    reference = (reference_out / "journal.jsonl").read_bytes()
    reference_ckpt = (reference_out / "checkpoint.json").read_bytes()

    for label, workers in (("batched-serial", 1), ("batched-4w", 4)):
        out = tmp / label
        _, summary = timed_run(cache, out, workers=workers, batch_size=8)
        if summary["completed"] != N_TRIALS:
            raise SystemExit(f"FAIL: {label} completed {summary['completed']}/{N_TRIALS}")
        if (out / "journal.jsonl").read_bytes() != reference:
            raise SystemExit(f"FAIL: {label} journal differs from the per-trial serial reference")
        if (out / "checkpoint.json").read_bytes() != reference_ckpt:
            raise SystemExit(f"FAIL: {label} checkpoint differs from the per-trial serial reference")
        verify_dir(out, label)
    print("OK: --batch-size 8 journals byte-identical to the per-trial loop (serial and 4-worker)")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="polygraphmr-smoke-"))
    phase_equivalence_and_speedup(tmp)
    phase_kill_and_resume(tmp)
    phase_scenario_sweep(tmp)
    phase_batched_identity(tmp)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
