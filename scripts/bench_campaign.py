#!/usr/bin/env python3
"""Seeded campaign benchmark: the first point of the perf trajectory.

Runs the same synthetic-model campaign serially and with ``--workers N``
sweeps, records wall-clock, trials/sec, speedup, p50/p95/p99 trial
latency, verified-once artifact-cache statistics (hit rate, loads
avoided, bytes held — all read from the campaign's merged out-of-band
``metrics.json``), a journal-chaining micro-benchmark (records/sec
through the v3 hash-chained append path vs the v2-style seal-only path,
fsync and all), a declarative scenario-sweep timing row (serial vs the
largest worker count over three built-in scenarios, byte-identity checked),
and a batched-engine section: equivalence rows proving batch sizes 1/16/64
leave the journal byte-identical to the per-trial loop, plus throughput
rows (``--batched-trials``, larger so startup stops dominating) whose
speedup over this run's own per-trial rows is gated by
``--min-batched-speedup``.  Emits ``BENCH_campaign.json``::

    PYTHONPATH=src python scripts/bench_campaign.py --seed 7 --workers 4

The workload is sleep-padded (``--trial-sleep``) so the numbers measure the
campaign executor — journal/checkpoint machinery, fan-out, merge — rather
than the model math, which keeps trials/sec comparable across machines.
Every parallel run's journal is also checked byte-identical to the serial
reference (a benchmark that broke determinism would be measuring the wrong
thing).

With ``--baseline BENCH_campaign.json``, trials/sec for each matching
worker count is gated against the committed baseline: a regression beyond
``--max-regression`` (default 30%) fails the run (exit 1) after one
re-measurement.  The largest parallel run's cache hit rate is additionally
gated against ``--min-cache-hit-rate`` (default 0.90) — with the
shared-memory plane active, workers should essentially never touch the
disk after warmup.  CI runs this on every push and uploads the fresh JSON
and Prometheus dump as artifacts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from polygraphmr.faults import build_synthetic_model  # noqa: E402
from polygraphmr.journal import (  # noqa: E402
    CampaignJournal,
    canonical_json,
    chain_genesis,
    sha256_hex,
)
from polygraphmr.metrics import load_registry  # noqa: E402

SCHEMA = "polygraphmr/bench-campaign/v5"
ENV = {"PYTHONPATH": str(REPO_ROOT / "src")}
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
BENCH_SCENARIOS = ("channel-bitflip-10pct", "quantize-4bit", "stuck-at-zero-1pct")


def parse_workers(text: str) -> tuple[int, ...]:
    out = tuple(int(part) for part in text.split(",") if part)
    if not out or any(w < 2 for w in out):
        raise argparse.ArgumentTypeError(f"--workers needs parallel counts >= 2, got {text!r}")
    return out


def campaign_cmd(
    cache: Path,
    out: Path,
    metrics_json: Path,
    args,
    workers: int,
    scenarios: tuple[str, ...] = (),
    batch_size: int | None = None,
    trials: int | None = None,
) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "polygraphmr.campaign",
        "--cache",
        str(cache),
        "--out",
        str(out),
        "--trials",
        str(args.trials if trials is None else trials),
        "--seed",
        str(args.seed),
        "--timeout",
        "120",
        "--trial-sleep",
        str(args.trial_sleep),
        "--workers",
        str(workers),
        "--metrics-out",
        str(metrics_json),
    ]
    if scenarios:
        cmd += ["--scenarios", ",".join(scenarios)]
    # batch_size None pins the per-trial loop so legacy rows keep measuring
    # the journal/fan-out machinery and stay comparable release to release
    cmd += ["--no-batch"] if batch_size is None else ["--batch-size", str(batch_size)]
    return cmd


def run_one(
    cache: Path,
    out: Path,
    args,
    workers: int,
    scenarios: tuple[str, ...] = (),
    batch_size: int | None = None,
    trials: int | None = None,
) -> dict:
    """One timed campaign run -> a bench ``runs[]`` entry (sans speedup)."""

    trials = args.trials if trials is None else trials
    metrics_json = out.with_suffix(".metrics.json")
    start = time.monotonic()
    proc = subprocess.run(
        campaign_cmd(cache, out, metrics_json, args, workers, scenarios, batch_size, trials),
        env=ENV,
        capture_output=True,
        text=True,
    )
    wall_s = time.monotonic() - start
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: workers={workers} campaign exited {proc.returncode}: {proc.stderr}"
        )
    summary = json.loads(proc.stdout)
    if summary["completed"] != trials:
        raise SystemExit(f"FAIL: workers={workers} completed {summary['completed']}/{trials}")

    registry = load_registry(metrics_json)
    if registry is None:
        raise SystemExit(f"FAIL: workers={workers} wrote no readable metrics at {metrics_json}")
    hist = registry.histogram_for("campaign_trial_seconds")
    if hist is None or hist.count != trials:
        raise SystemExit(f"FAIL: workers={workers} trial histogram missing or short: {hist}")

    # verified-once cache statistics (negative hits are hits: a remembered
    # failure avoids a full failed parse just like a remembered success
    # avoids a full load)
    hits = registry.counter_total("artifact_cache_hits_total") + registry.counter_total(
        "artifact_cache_negative_hits_total"
    )
    misses = registry.counter_total("artifact_cache_misses_total")
    lookups = hits + misses

    journal = (out / "journal.jsonl").read_bytes()
    return {
        "workers": workers,
        "wall_s": round(wall_s, 4),
        "trials_per_s": round(trials / wall_s, 4),
        "trial_latency_s": {name: hist.quantile(q) for name, q in QUANTILES},
        "trial_latency_mean_s": round(hist.sum / hist.count, 6),
        "journal_sha256": hashlib.sha256(journal).hexdigest(),
        "cache": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "loads_avoided": int(hits),
            "bytes_held": int(registry.gauge_value("artifact_cache_bytes")),
            "plane_bytes": int(registry.gauge_value("artifact_cache_plane_bytes")),
        },
    }


def run_sweep(tmp: Path, cache: Path, args, label: str) -> list[dict]:
    """Serial reference plus every requested worker count, with the
    byte-identity cross-check and speedups filled in."""

    sweep_dir = tmp / label
    serial = run_one(cache, sweep_dir / "serial", args, workers=1)
    serial["speedup_vs_serial"] = 1.0
    runs = [serial]
    for workers in args.workers:
        entry = run_one(cache, sweep_dir / f"w{workers}", args, workers=workers)
        if entry["journal_sha256"] != serial["journal_sha256"]:
            raise SystemExit(
                f"FAIL: workers={workers} journal differs from the serial reference "
                "(determinism broken; timings are meaningless)"
            )
        entry["speedup_vs_serial"] = round(serial["wall_s"] / entry["wall_s"], 4)
        runs.append(entry)
        print(
            f"[{label}] workers={workers}: {entry['wall_s']:.2f}s "
            f"({entry['trials_per_s']:.2f} trials/s, {entry['speedup_vs_serial']:.2f}x, "
            f"cache hit rate {entry['cache']['hit_rate']:.2%})"
        )
    print(f"[{label}] serial: {serial['wall_s']:.2f}s ({serial['trials_per_s']:.2f} trials/s)")
    return runs


def bench_scenario_sweep(tmp: Path, cache: Path, args) -> dict:
    """Timing row for a declarative 3-scenario sweep: serial vs the largest
    worker count, with the same byte-identity cross-check as the main
    sweep — scenario resolution, hash pinning, and per-trial scenario
    dispatch all ride the measured path."""

    sweep_dir = tmp / "scenario"
    serial = run_one(cache, sweep_dir / "serial", args, workers=1, scenarios=BENCH_SCENARIOS)
    serial["speedup_vs_serial"] = 1.0
    biggest = max(args.workers)
    entry = run_one(cache, sweep_dir / f"w{biggest}", args, workers=biggest, scenarios=BENCH_SCENARIOS)
    if entry["journal_sha256"] != serial["journal_sha256"]:
        raise SystemExit(
            f"FAIL: scenario sweep workers={biggest} journal differs from the serial "
            "reference (determinism broken; timings are meaningless)"
        )
    entry["speedup_vs_serial"] = round(serial["wall_s"] / entry["wall_s"], 4)
    print(
        f"[scenario] serial {serial['wall_s']:.2f}s, workers={biggest} "
        f"{entry['wall_s']:.2f}s ({entry['trials_per_s']:.2f} trials/s, "
        f"{entry['speedup_vs_serial']:.2f}x) over {len(BENCH_SCENARIOS)} scenarios"
    )
    return {"scenarios": list(BENCH_SCENARIOS), "runs": [serial, entry]}


def bench_batched(tmp: Path, cache: Path, args, legacy_runs: list[dict]) -> dict:
    """The vectorized batch engine, two ways.

    *Equivalence rows* rerun the legacy workload (``--trials``) under batch
    sizes 1/16/64, serially and at the largest worker count, and require
    every journal byte-identical to the legacy serial reference — batching
    must be invisible on disk.  *Throughput rows* scale the same workload to
    ``--batched-trials`` so startup stops dominating, and report speedup
    against this run's own per-trial-loop rows (same sleep padding, same
    trial semantics) — the number the ``--min-batched-speedup`` gate holds.
    """

    bench_dir = tmp / "batched"
    reference = next(r for r in legacy_runs if r["workers"] == 1)
    biggest = max(args.workers)
    legacy_by_workers = {r["workers"]: r for r in legacy_runs}

    equivalence = []
    for workers, batch_size in ((1, 1), (1, 16), (biggest, 16), (biggest, 64)):
        entry = run_one(
            cache,
            bench_dir / f"eq-w{workers}-b{batch_size}",
            args,
            workers=workers,
            batch_size=batch_size,
        )
        if entry["journal_sha256"] != reference["journal_sha256"]:
            raise SystemExit(
                f"FAIL: batched workers={workers} batch_size={batch_size} journal differs "
                "from the per-trial serial reference (batching leaked into the bytes)"
            )
        equivalence.append(
            {
                "workers": workers,
                "batch_size": batch_size,
                "wall_s": entry["wall_s"],
                "trials_per_s": entry["trials_per_s"],
                "journal_sha256": entry["journal_sha256"],
            }
        )
        print(
            f"[batched] eq workers={workers} batch={batch_size}: {entry['wall_s']:.2f}s "
            f"({entry['trials_per_s']:.2f} trials/s, journal identical)"
        )

    throughput = []
    throughput_sha = None
    for workers, batch_size in ((1, 64), (biggest, 64)):
        entry = run_one(
            cache,
            bench_dir / f"tp-w{workers}-b{batch_size}",
            args,
            workers=workers,
            batch_size=batch_size,
            trials=args.batched_trials,
        )
        if throughput_sha is None:
            throughput_sha = entry["journal_sha256"]
        elif entry["journal_sha256"] != throughput_sha:
            raise SystemExit(
                f"FAIL: batched throughput workers={workers} journal differs across "
                "worker counts (determinism broken; timings are meaningless)"
            )
        legacy = legacy_by_workers.get(workers)
        speedup = (
            round(entry["trials_per_s"] / legacy["trials_per_s"], 4) if legacy else None
        )
        throughput.append(
            {
                "workers": workers,
                "batch_size": batch_size,
                "trials": args.batched_trials,
                "wall_s": entry["wall_s"],
                "trials_per_s": entry["trials_per_s"],
                "journal_sha256": entry["journal_sha256"],
                "speedup_vs_serial_loop": speedup,
            }
        )
        print(
            f"[batched] tp workers={workers} batch={batch_size} trials={args.batched_trials}: "
            f"{entry['wall_s']:.2f}s ({entry['trials_per_s']:.2f} trials/s"
            + (f", {speedup:.1f}x vs per-trial loop)" if speedup else ")")
        )
    return {
        "batch_sizes": [1, 16, 64],
        "equivalence": {"trials": args.trials, "runs": equivalence},
        "throughput": {"trials": args.batched_trials, "runs": throughput},
    }


def _overhead_record(index: int) -> dict:
    """A realistically-sized trial record for the journaling micro-bench."""

    return {
        "type": "trial",
        "index": index,
        "spec": {
            "index": index,
            "model": f"bench-{index % 4:02d}",
            "kind": "bitflip",
            "rate": 0.01,
            "sigma": 0.05,
            "fault_seed": 123456789 + index,
        },
        "outcome": "ok",
        "result": {"clean_acc": 0.91, "faulty_acc": 0.88, "delta": 0.03},
        "breakers": {"breakers": {f"m{j}": {"state": "closed", "n_skipped": 0} for j in range(5)}},
    }


def bench_journal_overhead(tmp: Path, n_records: int = 1500) -> dict:
    """Chaining overhead: records/sec through the real v3 append path
    (seal + link + fsync per record) vs the v2-style path (seal + fsync,
    no chain).  Both hit the same filesystem so the fsync cost — which
    dominates — is held constant and the delta isolates the chain."""

    v2_path = tmp / "overhead-v2.jsonl"
    start = time.monotonic()
    for i in range(n_records):
        payload = _overhead_record(i)
        payload["sha256"] = sha256_hex(canonical_json(payload))
        # mirror the real append path (open + write + flush + fsync per
        # record, exactly what the v2 journal did) minus the chain link
        with open(v2_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
    v2_s = time.monotonic() - start

    journal = CampaignJournal(tmp / "overhead-v3.jsonl", genesis=chain_genesis("00" * 32))
    start = time.monotonic()
    for i in range(n_records):
        journal.append(_overhead_record(i))
    v3_s = time.monotonic() - start

    v2_rps = n_records / v2_s
    v3_rps = n_records / v3_s
    entry = {
        "records": n_records,
        "v2_records_per_s": round(v2_rps, 2),
        "v3_records_per_s": round(v3_rps, 2),
        "chain_overhead_frac": round(max(0.0, (v2_rps - v3_rps) / v2_rps), 4),
    }
    print(
        f"[journal] v2 seal-only {v2_rps:.0f} rec/s, v3 chained {v3_rps:.0f} rec/s "
        f"({entry['chain_overhead_frac']:.2%} overhead)"
    )
    return entry


def validate_bench(payload: dict) -> None:
    """Schema check for ``BENCH_campaign.json``; raises ValueError."""

    if payload.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    config = payload.get("config")
    if not isinstance(config, dict):
        raise ValueError("config must be an object")
    for key in ("seed", "trials", "models", "trial_sleep_s"):
        if not isinstance(config.get(key), (int, float)):
            raise ValueError(f"config.{key} must be a number")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("runs must be a non-empty list")
    if runs[0].get("workers") != 1:
        raise ValueError("runs[0] must be the serial reference (workers == 1)")
    for run in runs:
        for key in ("workers", "wall_s", "trials_per_s", "speedup_vs_serial"):
            if not isinstance(run.get(key), (int, float)):
                raise ValueError(f"runs[].{key} must be a number")
        latency = run.get("trial_latency_s")
        if not isinstance(latency, dict):
            raise ValueError("runs[].trial_latency_s must be an object")
        for name, _ in QUANTILES:
            if not isinstance(latency.get(name), (int, float)):
                raise ValueError(f"runs[].trial_latency_s.{name} must be a number")
        cache = run.get("cache")
        if not isinstance(cache, dict):
            raise ValueError("runs[].cache must be an object")
        for key in ("hits", "misses", "hit_rate", "loads_avoided", "bytes_held"):
            if not isinstance(cache.get(key), (int, float)):
                raise ValueError(f"runs[].cache.{key} must be a number")
    journal = payload.get("journal")
    if not isinstance(journal, dict):
        raise ValueError("journal must be an object")
    for key in ("records", "v2_records_per_s", "v3_records_per_s", "chain_overhead_frac"):
        if not isinstance(journal.get(key), (int, float)):
            raise ValueError(f"journal.{key} must be a number")
    sweep = payload.get("scenario_sweep")
    if not isinstance(sweep, dict):
        raise ValueError("scenario_sweep must be an object")
    names = sweep.get("scenarios")
    if not isinstance(names, list) or not names or not all(isinstance(n, str) for n in names):
        raise ValueError("scenario_sweep.scenarios must be a non-empty list of names")
    sweep_runs = sweep.get("runs")
    if not isinstance(sweep_runs, list) or not sweep_runs:
        raise ValueError("scenario_sweep.runs must be a non-empty list")
    for run in sweep_runs:
        for key in ("workers", "wall_s", "trials_per_s", "speedup_vs_serial"):
            if not isinstance(run.get(key), (int, float)):
                raise ValueError(f"scenario_sweep.runs[].{key} must be a number")
    batched = payload.get("batched")
    if not isinstance(batched, dict):
        raise ValueError("batched must be an object")
    for section in ("equivalence", "throughput"):
        block = batched.get(section)
        if not isinstance(block, dict) or not isinstance(block.get("runs"), list) or not block["runs"]:
            raise ValueError(f"batched.{section}.runs must be a non-empty list")
        if not isinstance(block.get("trials"), int):
            raise ValueError(f"batched.{section}.trials must be an integer")
        for run in block["runs"]:
            for key in ("workers", "batch_size", "wall_s", "trials_per_s"):
                if not isinstance(run.get(key), (int, float)):
                    raise ValueError(f"batched.{section}.runs[].{key} must be a number")


def gate_against_baseline(runs: list[dict], baseline: dict, max_regression: float) -> list[str]:
    """trials/sec per worker count vs the committed baseline; returns the
    list of human-readable failures (empty = pass)."""

    base_by_workers = {r["workers"]: r for r in baseline.get("runs", [])}
    failures = []
    for run in runs:
        base = base_by_workers.get(run["workers"])
        if base is None:
            continue
        floor = base["trials_per_s"] * (1.0 - max_regression)
        if run["trials_per_s"] < floor:
            failures.append(
                f"workers={run['workers']}: {run['trials_per_s']:.2f} trials/s "
                f"< floor {floor:.2f} (baseline {base['trials_per_s']:.2f}, "
                f"max regression {max_regression:.0%})"
            )
    return failures


def gate_batched(batched: dict, baseline: dict, max_regression: float, min_speedup: float) -> list[str]:
    """The batched-engine gates: throughput rows vs the committed baseline's
    matching ``(workers, batch_size)`` rows, plus an absolute floor — the
    largest batched run must beat this run's own per-trial loop by at least
    ``min_speedup``× (the whole point of the batch engine)."""

    failures = []
    base_rows = {
        (r.get("workers"), r.get("batch_size")): r
        for r in (baseline or {}).get("batched", {}).get("throughput", {}).get("runs", [])
    }
    for run in batched["throughput"]["runs"]:
        base = base_rows.get((run["workers"], run["batch_size"]))
        if base is not None:
            floor = base["trials_per_s"] * (1.0 - max_regression)
            if run["trials_per_s"] < floor:
                failures.append(
                    f"batched workers={run['workers']} batch={run['batch_size']}: "
                    f"{run['trials_per_s']:.2f} trials/s < floor {floor:.2f} "
                    f"(baseline {base['trials_per_s']:.2f})"
                )
    if min_speedup > 0:
        best = max(
            (r for r in batched["throughput"]["runs"] if r.get("speedup_vs_serial_loop")),
            key=lambda r: r["speedup_vs_serial_loop"],
            default=None,
        )
        if best is None or best["speedup_vs_serial_loop"] < min_speedup:
            got = best["speedup_vs_serial_loop"] if best else 0.0
            failures.append(
                f"batched speedup {got:.1f}x < required {min_speedup:.1f}x vs the "
                "per-trial loop (batch engine regressed)"
            )
    return failures


def gate_cache_hit_rate(runs: list[dict], min_rate: float) -> list[str]:
    """The largest parallel run must keep its cache hit rate above the
    committed floor — with the shared-memory plane active, workers should
    essentially never touch the disk after warmup."""

    biggest = max(runs, key=lambda r: r["workers"])
    if biggest["workers"] < 2:
        return []
    rate = biggest.get("cache", {}).get("hit_rate", 0.0)
    if rate < min_rate:
        return [
            f"workers={biggest['workers']}: cache hit rate {rate:.4f} "
            f"< floor {min_rate:.2f} (plane or cache regressed)"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=32)
    parser.add_argument("--models", type=int, default=4)
    parser.add_argument(
        "--trial-sleep",
        type=float,
        default=0.25,
        help="sleep padding per trial (seconds); keeps the bench executor-bound",
    )
    parser.add_argument(
        "--workers",
        type=parse_workers,
        default=(2, 4),
        help="comma-separated parallel worker counts to sweep (default: 2,4)",
    )
    parser.add_argument("--out", default="BENCH_campaign.json", help="bench JSON output path")
    parser.add_argument(
        "--prom-out",
        default=None,
        help="also dump the largest sweep's metrics in Prometheus text format here",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_campaign.json to gate trials/sec against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="max tolerated fractional trials/sec regression vs baseline (default: 0.30)",
    )
    parser.add_argument(
        "--min-cache-hit-rate",
        type=float,
        default=0.90,
        help="fail if the largest parallel run's artifact-cache hit rate "
        "falls below this floor (default: 0.90; <=0 disables)",
    )
    parser.add_argument(
        "--batched-trials",
        type=int,
        default=512,
        help="trial count for the batched throughput rows (default: 512; "
        "large enough that process startup stops dominating)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=10.0,
        help="fail unless the best batched throughput row beats this run's "
        "own per-trial loop by this factor (default: 10.0; <=0 disables)",
    )
    args = parser.parse_args(argv)

    tmp = Path(tempfile.mkdtemp(prefix="polygraphmr-bench-"))
    cache = tmp / "cache"
    for i in range(args.models):
        build_synthetic_model(cache, f"bench-{i:02d}", n_val=96, n_test=96, seed=args.seed + i)

    runs = run_sweep(tmp, cache, args, "sweep")
    journal_overhead = bench_journal_overhead(tmp)
    scenario_sweep = bench_scenario_sweep(tmp, cache, args)
    batched = bench_batched(tmp, cache, args, runs)

    baseline = None
    raw_baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.is_file():
            raw_baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            baseline = raw_baseline
            try:
                validate_bench(baseline)
            except ValueError as exc:
                print(f"note: baseline {baseline_path} is from another schema ({exc}); gate skipped")
                baseline = None
        else:
            print(f"note: baseline {baseline_path} not found; gate skipped")

    # report the headline number against whatever baseline is committed,
    # even one from an older schema: the committed per-trial-loop rows are
    # directly comparable with the batched throughput rows (same sleep
    # padding, same trial semantics, just more trials)
    if raw_baseline is not None:
        committed_by_workers = {
            r.get("workers"): r
            for r in raw_baseline.get("runs", [])
            if isinstance(r, dict) and isinstance(r.get("trials_per_s"), (int, float))
        }
        for row in batched["throughput"]["runs"]:
            committed = committed_by_workers.get(row["workers"])
            if committed:
                row["speedup_vs_committed"] = round(
                    row["trials_per_s"] / committed["trials_per_s"], 4
                )
                print(
                    f"[batched] workers={row['workers']}: {row['speedup_vs_committed']:.1f}x "
                    f"the committed baseline ({committed['trials_per_s']:.2f} trials/s)"
                )

    failures = gate_against_baseline(runs, baseline, args.max_regression) if baseline else []
    if failures:
        # shared runners blip; re-measure once before declaring a regression
        print("regression gate tripped; re-measuring the sweep once")
        retry_runs = run_sweep(tmp, cache, args, "retry")
        by_workers = {r["workers"]: r for r in runs}
        for candidate in retry_runs:
            best = by_workers[candidate["workers"]]
            if candidate["trials_per_s"] > best["trials_per_s"]:
                by_workers[candidate["workers"]] = candidate
        runs = [by_workers[w] for w in sorted(by_workers)]
        failures = gate_against_baseline(runs, baseline, args.max_regression)

    if args.min_cache_hit_rate > 0:
        failures += gate_cache_hit_rate(runs, args.min_cache_hit_rate)
    failures += gate_batched(batched, baseline, args.max_regression, args.min_batched_speedup)

    payload = {
        "schema": SCHEMA,
        "config": {
            "seed": args.seed,
            "trials": args.trials,
            "models": args.models,
            "trial_sleep_s": args.trial_sleep,
        },
        "runs": runs,
        "journal": journal_overhead,
        "scenario_sweep": scenario_sweep,
        "batched": batched,
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
    }
    validate_bench(payload)
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    if args.prom_out:
        biggest = max(args.workers)
        metrics_json = tmp / "sweep" / f"w{biggest}.metrics.json"
        registry = load_registry(metrics_json)
        if registry is not None:
            prom = Path(args.prom_out)
            prom.parent.mkdir(parents=True, exist_ok=True)
            prom.write_text(registry.to_prometheus(), encoding="utf-8")
            print(f"wrote {prom}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
