#!/usr/bin/env python3
"""Serving-gateway benchmark: open-loop load against a live gateway.

Spawns ``python -m polygraphmr.serve`` over a synthetic cache with a pinned
per-batch service rate (``--batch-sleep``, so the numbers measure the
gateway — framing, coalescing, shedding, breaker hysteresis, and the
multi-process execution plane — rather than the model math or the host's
numpy throughput), then drives it with open-loop client load: each client
sends requests on a fixed pacing interval regardless of when responses come
back, the way real callers do.

Schema v2 sweeps **worker counts**: the same concurrency levels run against
an in-process gateway (``workers=0``) and against ``--serve-workers 1`` and
``--serve-workers 4`` pools, so the bench shows what forking the execution
plane buys at each load.  Per (workers, clients) level it records
requests/sec actually answered, client-side p50/p95/p99 latency, and the
outcome mix.  Emits ``BENCH_serve.json``::

    PYTHONPATH=src python scripts/bench_serve.py

With ``--baseline BENCH_serve.json``, answered requests/sec for each
matching (workers, clients) level is gated against the committed baseline:
a regression beyond ``--max-regression`` (default 30%) fails the run
(exit 1) after one re-measurement.  The pool gate (``--min-pool-speedup``,
default 2.0) requires the 4-worker pool to answer at least that multiple of
the in-process rps at the highest concurrency level — with a strictly lower
shed rate — so the execution plane must actually pay for itself.  Every
request must receive exactly one reply — a lost or duplicated frame fails
the bench outright.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from polygraphmr.serve import ServeRequest, request_frame  # noqa: E402

SCHEMA = "polygraphmr/bench-serve/v2"
ENV = {"PYTHONPATH": str(REPO_ROOT / "src")}
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
MODEL = "net-00"
READY_DEADLINE_S = 60.0

# worker-count sweep: in-process, a single-worker pool (pipe overhead visible
# in isolation), and the 4-worker plane the speedup gate judges
WORKERS = (0, 1, 4)

# (clients, requests per client, pacing interval seconds).  The first level
# offers roughly the pinned capacity (latency floor); the later levels offer
# far more (shed/degrade territory, where the pool's extra drain rate shows).
LEVELS = ((2, 30, 0.02), (8, 60, 0.002), (24, 60, 0.002))


def start_gateway(cache: Path, args, workers: int) -> tuple[subprocess.Popen, int]:
    cmd = [
        sys.executable,
        "-m",
        "polygraphmr.serve",
        "--cache",
        str(cache),
        "--synthetic-models",
        str(args.models),
        "--seed",
        str(args.seed),
        "--port",
        "0",
        "--batch-sleep",
        str(args.batch_sleep),
        "--batch-max",
        "8",
        "--coalesce-ms",
        "1.0",
        "--max-queue",
        "192",
        "--degrade-depth",
        "8",
        "--failure-threshold",
        "2",
        "--cooldown-ticks",
        "2",
        "--serve-workers",
        str(workers),
    ]
    proc = subprocess.Popen(cmd, env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + READY_DEADLINE_S
    ready_line = proc.stdout.readline()
    if time.monotonic() > deadline or not ready_line:
        proc.kill()
        raise SystemExit(f"FAIL: gateway never printed a ready line: {proc.stderr.read()}")
    ready = json.loads(ready_line)
    if not ready.get("ready") or not ready.get("port"):
        proc.kill()
        raise SystemExit(f"FAIL: bad ready line {ready_line!r}")
    if len(ready.get("workers", [])) != workers:
        proc.kill()
        raise SystemExit(f"FAIL: asked for {workers} workers, ready line says {ready.get('workers')}")
    return proc, int(ready["port"])


async def open_loop_client(port: int, client: int, n: int, interval_s: float) -> list[tuple[str, float, dict]]:
    """One paced client connection: fire every ``interval_s`` regardless of
    responses (open loop), collect (id, latency_s, payload) per request."""

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    sent: dict[str, float] = {}
    done: list[tuple[str, float, dict]] = []

    async def read_responses() -> None:
        while len(done) < n:
            raw = await reader.readline()
            if not raw:
                raise SystemExit(f"FAIL: connection closed with {n - len(done)} responses outstanding")
            payload = json.loads(raw)
            rid = payload["id"]
            done.append((rid, time.perf_counter() - sent.pop(rid), payload))

    collector = asyncio.create_task(read_responses())
    for i in range(n):
        rid = f"c{client}-{i}"
        sent[rid] = time.perf_counter()
        writer.write(request_frame(ServeRequest(id=rid, model=MODEL, samples=(i % 96,))))
        await writer.drain()
        await asyncio.sleep(interval_s)
    await collector
    writer.close()
    return done


async def run_level(port: int, workers: int, clients: int, n: int, interval_s: float) -> dict:
    start = time.perf_counter()
    per_client = await asyncio.gather(*[open_loop_client(port, c, n, interval_s) for c in range(clients)])
    wall_s = time.perf_counter() - start

    total = clients * n
    responses = [item for batch in per_client for item in batch]
    if len(responses) != total:
        raise SystemExit(f"FAIL: {len(responses)} responses to {total} requests")
    ids = {rid for rid, _, _ in responses}
    if len(ids) != total:
        raise SystemExit("FAIL: duplicate response ids")

    latencies = sorted(latency for _, latency, _ in responses)
    outcomes: dict[str, int] = {}
    for _, _, payload in responses:
        outcomes[payload["outcome"]] = outcomes.get(payload["outcome"], 0) + 1
    if outcomes.get("error"):
        raise SystemExit(f"FAIL: {outcomes['error']} error responses under clean load")
    return {
        "workers": workers,
        "clients": clients,
        "requests": total,
        "pacing_interval_s": interval_s,
        "offered_rps": round(clients / interval_s, 2),
        "achieved_rps": round(total / wall_s, 2),
        "wall_s": round(wall_s, 4),
        "latency_s": {name: round(latencies[min(total - 1, int(q * total))], 6) for name, q in QUANTILES},
        "outcomes": outcomes,
        "shed_rate": round(outcomes.get("overloaded", 0) / total, 4),
        "degraded_rate": round(outcomes.get("degraded", 0) / total, 4),
    }


async def settle(port: int, probes: int = 6) -> None:
    """Sequential calm probes between levels: each executes as its own calm
    batch (a breaker-board tick), so open breakers cool down and close and
    every level starts from the full member set."""

    for i in range(probes):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(request_frame(ServeRequest(id=f"settle-{i}", model=MODEL, samples=(0,))))
        await writer.drain()
        await reader.readline()
        writer.close()


def run_sweep(args) -> tuple[list[dict], dict[str, dict]]:
    """One full (workers x concurrency) sweep: a fresh gateway per worker
    count, every concurrency level against it, drain summaries collected."""

    levels: list[dict] = []
    servers: dict[str, dict] = {}
    for workers in WORKERS:
        tmp = Path(tempfile.mkdtemp(prefix="polygraphmr-bench-serve-"))
        proc, port = start_gateway(tmp / "cache", args, workers)
        try:
            for clients, n, interval_s in LEVELS:
                level = asyncio.run(run_level(port, workers, clients, n, interval_s))
                levels.append(level)
                print(
                    f"[serve w={workers}] clients={clients}: offered {level['offered_rps']:.0f} rps, "
                    f"answered {level['achieved_rps']:.0f} rps, p99 {level['latency_s']['p99'] * 1000:.1f} ms, "
                    f"shed {level['shed_rate']:.1%}, degraded {level['degraded_rate']:.1%}"
                )
                asyncio.run(settle(port))
        finally:
            summary = stop_gateway(proc)
        if workers > 0:
            pool = summary.get("pool", {})
            if not pool.get("worker_batches"):
                raise SystemExit(f"FAIL: {workers}-worker gateway reports no worker batches — pool never evaluated")
        servers[f"w{workers}"] = summary
    return levels, servers


def stop_gateway(proc: subprocess.Popen) -> dict:
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("FAIL: gateway did not drain within 60s of SIGTERM")
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: gateway exited {proc.returncode} on SIGTERM: {stderr}")
    lines = [line for line in stdout.splitlines() if line.strip()]
    summary = json.loads(lines[-1])
    if not summary.get("drained"):
        raise SystemExit(f"FAIL: no drain summary in gateway stdout: {stdout!r}")
    return summary


def validate_bench(payload: dict) -> None:
    """Schema check for ``BENCH_serve.json``; raises ValueError."""

    if payload.get("schema") != SCHEMA:
        raise ValueError(f"schema must be {SCHEMA!r}, got {payload.get('schema')!r}")
    config = payload.get("config")
    if not isinstance(config, dict):
        raise ValueError("config must be an object")
    for key in ("seed", "models", "batch_sleep_s"):
        if not isinstance(config.get(key), (int, float)):
            raise ValueError(f"config.{key} must be a number")
    if config.get("workers_levels") != list(WORKERS):
        raise ValueError(f"config.workers_levels must be {list(WORKERS)}")
    levels = payload.get("levels")
    if not isinstance(levels, list) or len(levels) < 2 * len(WORKERS):
        raise ValueError("levels must sweep every worker count across at least 2 concurrency levels")
    for level in levels:
        for key in (
            "workers",
            "clients",
            "requests",
            "offered_rps",
            "achieved_rps",
            "wall_s",
            "shed_rate",
            "degraded_rate",
        ):
            if not isinstance(level.get(key), (int, float)):
                raise ValueError(f"levels[].{key} must be a number")
        latency = level.get("latency_s")
        if not isinstance(latency, dict):
            raise ValueError("levels[].latency_s must be an object")
        for name, _ in QUANTILES:
            if not isinstance(latency.get(name), (int, float)):
                raise ValueError(f"levels[].latency_s.{name} must be a number")
        outcomes = level.get("outcomes")
        if not isinstance(outcomes, dict) or sum(outcomes.values()) != level["requests"]:
            raise ValueError("levels[].outcomes must tally to levels[].requests")
    servers = payload.get("servers")
    if not isinstance(servers, dict):
        raise ValueError("servers must map worker counts to drain summaries")
    for workers in WORKERS:
        summary = servers.get(f"w{workers}")
        if not isinstance(summary, dict) or not isinstance(summary.get("served"), dict):
            raise ValueError(f"servers.w{workers} must be the gateway's drain summary")


def gate_against_baseline(levels: list[dict], baseline: dict, max_regression: float) -> list[str]:
    """Answered requests/sec per (workers, clients) level vs the committed
    baseline; returns the list of human-readable failures (empty = pass)."""

    base_by_key = {(lvl["workers"], lvl["clients"]): lvl for lvl in baseline.get("levels", [])}
    failures = []
    for level in levels:
        base = base_by_key.get((level["workers"], level["clients"]))
        if base is None:
            continue
        floor = base["achieved_rps"] * (1.0 - max_regression)
        if level["achieved_rps"] < floor:
            failures.append(
                f"workers={level['workers']} clients={level['clients']}: {level['achieved_rps']:.0f} rps "
                f"< floor {floor:.0f} (baseline {base['achieved_rps']:.0f}, "
                f"max regression {max_regression:.0%})"
            )
    return failures


def gate_pool_speedup(levels: list[dict], min_speedup: float) -> list[str]:
    """The execution plane must pay for itself at the hottest level: answered
    rps with the largest pool >= ``min_speedup`` x in-process, and the pool
    must shed strictly less of the offered load."""

    if min_speedup <= 0:
        return []
    top_clients = max(lvl["clients"] for lvl in levels)
    by_workers = {lvl["workers"]: lvl for lvl in levels if lvl["clients"] == top_clients}
    base, pooled = by_workers.get(0), by_workers.get(max(WORKERS))
    if base is None or pooled is None:
        return [f"speedup gate needs workers=0 and workers={max(WORKERS)} at clients={top_clients}"]
    failures = []
    speedup = pooled["achieved_rps"] / base["achieved_rps"]
    if speedup < min_speedup:
        failures.append(
            f"pool speedup {speedup:.2f}x at clients={top_clients} "
            f"({pooled['achieved_rps']:.0f} vs {base['achieved_rps']:.0f} rps) < {min_speedup:.1f}x floor"
        )
    if pooled["shed_rate"] >= base["shed_rate"]:
        failures.append(
            f"pool shed rate {pooled['shed_rate']:.2%} at clients={top_clients} "
            f"not strictly below in-process {base['shed_rate']:.2%}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--models", type=int, default=2)
    parser.add_argument(
        "--batch-sleep",
        type=float,
        default=0.06,
        help="per-batch sleep pinning the gateway's service rate (seconds)",
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="bench JSON output path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_serve.json to gate answered rps against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="max tolerated fractional rps regression vs baseline (default: 0.30)",
    )
    parser.add_argument(
        "--min-pool-speedup",
        type=float,
        default=2.0,
        help="required answered-rps multiple of the largest pool over in-process "
        "at the hottest level (0 disables; default: 2.0)",
    )
    args = parser.parse_args(argv)

    levels, servers = run_sweep(args)

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.is_file():
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
            try:
                validate_bench(baseline)
            except ValueError as exc:
                print(f"note: baseline {baseline_path} is from another schema ({exc}); gate skipped")
                baseline = None
        else:
            print(f"note: baseline {baseline_path} not found; gate skipped")

    failures = gate_against_baseline(levels, baseline, args.max_regression) if baseline else []
    failures += gate_pool_speedup(levels, args.min_pool_speedup)
    if failures:
        # shared runners blip; re-measure once before declaring a regression
        print("gate tripped; re-measuring once")
        retry, retry_servers = run_sweep(args)
        by_key = {(lvl["workers"], lvl["clients"]): lvl for lvl in levels}
        for candidate in retry:
            key = (candidate["workers"], candidate["clients"])
            if candidate["achieved_rps"] > by_key[key]["achieved_rps"]:
                by_key[key] = candidate
        levels = [by_key[(w, c)] for w in WORKERS for c, _, _ in LEVELS]
        servers = retry_servers
        failures = gate_against_baseline(levels, baseline, args.max_regression) if baseline else []
        failures += gate_pool_speedup(levels, args.min_pool_speedup)

    # the overload levels must actually exercise the overload machinery —
    # a bench where nothing sheds or degrades is measuring the wrong regime
    if not any(lvl["shed_rate"] > 0 for lvl in levels):
        raise SystemExit("FAIL: no level ever shed — offered load never hit the queue bound")
    if not any(lvl["degraded_rate"] > 0 for lvl in levels):
        raise SystemExit("FAIL: no level ever degraded — pressure never tripped a breaker")

    payload = {
        "schema": SCHEMA,
        "config": {
            "seed": args.seed,
            "models": args.models,
            "batch_sleep_s": args.batch_sleep,
            "workers_levels": list(WORKERS),
            "levels": [{"clients": c, "requests_per_client": n, "pacing_interval_s": i} for c, n, i in LEVELS],
        },
        "levels": levels,
        "servers": servers,
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
    }
    validate_bench(payload)
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
