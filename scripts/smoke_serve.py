#!/usr/bin/env python3
"""End-to-end smoke test for the serving gateway: concurrent load,
mid-load SIGTERM drain, and shared-memory hygiene.

Three phases against one gateway subprocess over a synthetic cache::

    PYTHONPATH=src python scripts/smoke_serve.py

1. **Serve** — spawn ``python -m polygraphmr.serve`` (TCP, auto port,
   shared-memory plane on), wait for the ready line, fire concurrent
   classification requests plus a ping and a metrics op; every request must
   be answered ``ok`` with the full member set.
2. **SIGTERM mid-load** — start a paced stream of requests, SIGTERM the
   gateway while they are in flight, and require: every request accepted
   before the drain gets a terminal response, the process exits 0 within
   the deadline, the drain summary's per-outcome counts reconcile exactly
   with the responses received across both phases, and the metrics JSON +
   Prometheus dumps are written and parseable.
3. **Hygiene** — no ``pgmr-*`` shared-memory segment may remain under
   ``/dev/shm`` after exit (the plane publisher unlinks before serving, so
   even a SIGKILL cannot leak), and a fresh connection attempt must be
   refused.

The full cycle runs twice: once against an in-process gateway and once
against ``--serve-workers 4`` (the multi-process execution plane).  The
pooled cycle additionally requires the ready line to carry four live worker
pids, the drain summary's pool stanza to report worker batches with zero
crash fallbacks, the merged metrics JSON to carry the workers' shard
counters, and every worker process to be reaped after exit.

Exits 0 on success; any deviation is a hard failure.  Run by CI on every
push.
"""

from __future__ import annotations

import asyncio
import contextlib
import glob
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from polygraphmr.serve import OUTCOMES, ServeRequest, request_frame  # noqa: E402

N_MODELS = 2
MODEL = "net-00"
N_CONCURRENT = 24
N_MIDLOAD = 40
DEADLINE_S = 300.0
ENV = {"PYTHONPATH": str(REPO_ROOT / "src")}


def shm_segments() -> list[str]:
    return sorted(glob.glob("/dev/shm/pgmr-*"))


def start_gateway(tmp: Path, workers: int) -> tuple[subprocess.Popen, int, list[int]]:
    cmd = [
        sys.executable,
        "-m",
        "polygraphmr.serve",
        "--cache",
        str(tmp / "cache"),
        "--synthetic-models",
        str(N_MODELS),
        "--seed",
        "7",
        "--port",
        "0",
        "--batch-sleep",
        "0.01",
        "--batch-max",
        "8",
        "--serve-workers",
        str(workers),
        "--metrics-out",
        str(tmp / "metrics.json"),
        "--prom-out",
        str(tmp / "metrics.prom"),
    ]
    proc = subprocess.Popen(cmd, env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    start = time.monotonic()
    ready_line = proc.stdout.readline()
    if not ready_line or time.monotonic() - start > DEADLINE_S:
        proc.kill()
        raise SystemExit(f"FAIL: gateway never became ready: {proc.stderr.read()}")
    ready = json.loads(ready_line)
    if ready.get("ready") is not True or sorted(ready.get("models", [])) != [f"net-{i:02d}" for i in range(N_MODELS)]:
        raise SystemExit(f"FAIL: bad ready line: {ready_line!r}")
    pids = [int(pid) for pid in ready.get("workers", [])]
    if len(pids) != workers:
        raise SystemExit(f"FAIL: asked for {workers} pool workers, ready line lists pids {pids}")
    for pid in pids:
        os.kill(pid, 0)  # raises ProcessLookupError if the worker is not alive
    label = f"{workers}-worker pool" if workers else "in-process"
    print(f"OK: {label} gateway ready on port {ready['port']} serving {ready['models']}")
    return proc, int(ready["port"]), pids


async def one_request(port: int, request: ServeRequest) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request_frame(request))
    await writer.drain()
    raw = await reader.readline()
    writer.close()
    if not raw:
        raise SystemExit(f"FAIL: no response for request {request.id!r}")
    return json.loads(raw)


def phase_concurrent_requests(port: int) -> dict[str, int]:
    async def run():
        payloads = await asyncio.gather(
            *[one_request(port, ServeRequest(id=f"r{i}", model=MODEL, samples=(i % 96,))) for i in range(N_CONCURRENT)]
        )
        pong = await one_request(port, ServeRequest(id="hb", op="ping"))
        snapshot = await one_request(port, ServeRequest(op="metrics"))
        return payloads, pong, snapshot

    payloads, pong, snapshot = asyncio.run(run())
    outcomes: dict[str, int] = {}
    for payload in payloads:
        outcomes[payload["outcome"]] = outcomes.get(payload["outcome"], 0) + 1
        if payload["outcome"] != "ok":
            raise SystemExit(f"FAIL: request {payload['id']} answered {payload['outcome']}, expected ok")
        if payload["degraded"] or payload["shed"]:
            raise SystemExit(f"FAIL: unloaded gateway served degraded: {payload['id']}")
    if pong != {"id": "hb", "ok": True, "op": "ping"}:
        raise SystemExit(f"FAIL: bad pong {pong!r}")
    if snapshot["requests"]["ok"] != N_CONCURRENT or sum(snapshot["requests"].values()) != N_CONCURRENT:
        raise SystemExit(f"FAIL: metrics op disagrees with responses: {snapshot!r}")
    print(f"OK: {N_CONCURRENT} concurrent requests all ok; ping + metrics ops answered inline")
    return outcomes


def phase_sigterm_mid_load(proc: subprocess.Popen, port: int) -> tuple[dict[str, int], str]:
    """SIGTERM while a paced stream is in flight; every accepted request
    must still get a terminal reply before the process exits 0."""

    async def run():
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        payloads: list[dict] = []

        async def collect() -> None:
            # reads until the server closes the connection at the end of drain
            with contextlib.suppress(ConnectionError):
                while True:
                    raw = await reader.readline()
                    if not raw:
                        break
                    payloads.append(json.loads(raw))

        collector = asyncio.create_task(collect())
        # offered faster than the pinned service rate, so a backlog of
        # in-flight requests exists when the SIGTERM lands
        for i in range(N_MIDLOAD):
            writer.write(request_frame(ServeRequest(id=f"k{i}", model=MODEL, samples=(i % 96,))))
            await writer.drain()
            await asyncio.sleep(0.001)
        proc.send_signal(signal.SIGTERM)  # mid-load: the queue is not empty
        await collector
        writer.close()
        return payloads

    payloads = asyncio.run(run())
    try:
        stdout, stderr = proc.communicate(timeout=DEADLINE_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("FAIL: gateway did not exit after SIGTERM")
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: gateway exited {proc.returncode} after SIGTERM: {stderr}")
    answered = {payload["id"] for payload in payloads}
    expected = {f"k{i}" for i in range(N_MIDLOAD)}
    if answered != expected:
        raise SystemExit(
            f"FAIL: drain lost in-flight requests: {sorted(expected - answered)} unanswered, "
            f"{sorted(answered - expected)} unexpected"
        )
    if len(payloads) != N_MIDLOAD:
        raise SystemExit("FAIL: duplicate responses during drain")
    outcomes: dict[str, int] = {}
    for payload in payloads:
        outcomes[payload["outcome"]] = outcomes.get(payload["outcome"], 0) + 1
    bad = set(outcomes) - {"ok", "degraded"}
    if bad:
        raise SystemExit(f"FAIL: unexpected outcomes during drain: {outcomes}")
    lines = [line for line in stdout.splitlines() if line.strip()]
    summary = json.loads(lines[-1])
    if summary.get("drained") is not True:
        raise SystemExit(f"FAIL: no drain summary: {stdout!r}")
    print(
        f"OK: SIGTERM mid-load; all {N_MIDLOAD} in-flight requests answered during drain, "
        "exit 0, drain summary present"
    )
    return outcomes, summary


def check_reconciliation(summary: dict, outcomes: dict[str, int], tmp: Path, workers: int) -> None:
    for outcome in OUTCOMES:
        if summary["served"].get(outcome, 0) != outcomes.get(outcome, 0):
            raise SystemExit(
                f"FAIL: drain summary says {summary['served']}, responses tallied {outcomes}"
            )
    metrics = json.loads((tmp / "metrics.json").read_text(encoding="utf-8"))
    served = {
        row["labels"]["outcome"]: row["value"]
        for row in metrics["counters"]
        if row["name"] == "serve_requests_total"
    }
    if served != {k: v for k, v in outcomes.items() if v}:
        raise SystemExit(f"FAIL: metrics.json says {served}, responses tallied {outcomes}")
    prom = (tmp / "metrics.prom").read_text(encoding="utf-8")
    if "serve_requests_total" not in prom or "serve_request_seconds" not in prom:
        raise SystemExit("FAIL: Prometheus dump is missing the serve metrics")
    if workers:
        pool = summary.get("pool", {})
        if pool.get("workers") != workers or not pool.get("worker_batches"):
            raise SystemExit(f"FAIL: pooled drain summary has no worker batches: {pool!r}")
        if pool.get("restarts") or any(pool.get("fallbacks", {}).values()):
            raise SystemExit(f"FAIL: healthy pool reported restarts/fallbacks: {pool!r}")
        shard_batches = sum(
            row["value"] for row in metrics["counters"] if row["name"] == "serve_worker_batches_total"
        )
        if shard_batches != pool["worker_batches"]:
            raise SystemExit(
                f"FAIL: merged metrics carry {shard_batches} worker batches, pool stanza says "
                f"{pool['worker_batches']} — shard merge lost counts"
            )
    print("OK: drain summary, metrics.json, and responses all reconcile exactly")


def check_hygiene(port: int, before: list[str], worker_pids: list[int]) -> None:
    after = shm_segments()
    leaked = sorted(set(after) - set(before))
    if leaked:
        raise SystemExit(f"FAIL: shared-memory segments leaked: {leaked}")
    with socket.socket() as sock:
        sock.settimeout(1.0)
        if sock.connect_ex(("127.0.0.1", port)) == 0:
            raise SystemExit(f"FAIL: port {port} still accepting connections after exit")
    for pid in worker_pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise SystemExit(f"FAIL: pool worker {pid} survived gateway drain")
    suffix = f", all {len(worker_pids)} workers reaped" if worker_pids else ""
    print(f"OK: no /dev/shm leak, listener gone{suffix}")


def run_cycle(workers: int) -> None:
    shm_before = shm_segments()
    tmp = Path(tempfile.mkdtemp(prefix="polygraphmr-smoke-serve-"))
    proc, port, worker_pids = start_gateway(tmp, workers)
    try:
        outcomes = phase_concurrent_requests(port)
        drain_outcomes, summary = phase_sigterm_mid_load(proc, port)
    finally:
        if proc.poll() is None:
            proc.kill()
    for outcome, n in drain_outcomes.items():
        outcomes[outcome] = outcomes.get(outcome, 0) + n
    check_reconciliation(summary, outcomes, tmp, workers)
    check_hygiene(port, shm_before, worker_pids)


def main() -> int:
    for workers in (0, 4):
        run_cycle(workers)
    print("OK: serve smoke complete (in-process + pooled)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
