#!/usr/bin/env python3
"""Audit a PolygraphMR artifact cache: per-model valid/corrupt/missing counts.

Usage::

    PYTHONPATH=src python scripts/audit_cache.py [--cache .repro_cache] \
        [--json] [--strict] [--fail-on-corrupt] [--allow-salvaged]

``--json`` emits the machine-readable manifest (consumed by the campaign
CLI's ``--audit-json`` and by CI).  Exit status is 0 unless ``--strict``
(fail on any corrupt *or missing* artifact) or ``--fail-on-corrupt`` (fail
on corrupt only; missing is tolerated) is given.  With ``--allow-salvaged``,
corrupt containers whose needed arrays can be carved out count as
``salvaged`` instead of ``corrupt``.  The scan itself never crashes on a bad
file — that is the whole point of the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from polygraphmr.store import ArtifactStore  # noqa: E402


def format_table(cache) -> str:
    rows = [("model", "valid", "corrupt", "missing", "salvaged", "usable stems")]
    for name, manifest in sorted(cache.models.items()):
        usable = ",".join(manifest.usable_stems()) or "-"
        if len(usable) > 48:
            usable = usable[:45] + "..."
        rows.append(
            (
                name,
                str(manifest.n_valid),
                str(manifest.n_corrupt),
                str(manifest.n_missing),
                str(manifest.n_salvaged),
                usable,
            )
        )
    rows.append(
        ("TOTAL", str(cache.n_valid), str(cache.n_corrupt), str(cache.n_missing), str(cache.n_salvaged), "")
    )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
        if i == 0 or i == len(rows) - 2:
            lines.append("  ".join("-" * widths[j] for j in range(len(widths))))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache", default=".repro_cache", help="cache root to audit")
    parser.add_argument("--json", action="store_true", help="emit the full manifest as JSON")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any artifact is corrupt or missing",
    )
    parser.add_argument(
        "--fail-on-corrupt",
        action="store_true",
        help="exit non-zero if any artifact is corrupt (missing is tolerated)",
    )
    parser.add_argument(
        "--allow-salvaged",
        action="store_true",
        help="count corrupt containers with carvable arrays as salvaged",
    )
    args = parser.parse_args(argv)

    store = ArtifactStore(args.cache, allow_salvaged=args.allow_salvaged)
    cache = store.scan_all()
    if not cache.models:
        print(f"no model directories found under {args.cache!r}", file=sys.stderr)
        return 2

    if args.json:
        json.dump(cache.to_dict(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(format_table(cache))
        quarantined = sorted(store.quarantine.items())
        if quarantined:
            print(f"\nquarantined ({len(quarantined)}):")
            for path, reason in quarantined:
                print(f"  [{reason}] {path}")

    if args.strict and (cache.n_corrupt or cache.n_missing):
        return 1
    if args.fail_on_corrupt and cache.n_corrupt:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
