"""Per-submodel circuit breakers for the ensemble runtime.

A submodel whose artifacts fail validation once will very likely fail again
on the next batch — yet without a breaker the runtime re-reads and re-parses
the same corrupt bytes on every trial of a campaign.  Each (model, stem)
pair therefore gets a small state machine:

* **closed** — loads proceed normally.
* **open** — tripped after ``failure_threshold`` *consecutive* corrupt-load
  failures; the member is skipped without touching the disk.
* **half-open** — after a cool-down the breaker admits exactly one probe
  load; success closes it, failure re-opens it.

The cool-down is measured in runtime *ticks* (one tick per
:meth:`~polygraphmr.ensemble.EnsembleRuntime.run_model` call, i.e. per
campaign trial), never wall-clock time, so a resumed campaign replays the
same open/half-open/closed transitions as the run it replaces.  The whole
board serialises to plain JSON for the campaign journal.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import get_registry

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "merge_snapshots",
    "non_closed_in_snapshot",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip and how long to stay open.

    ``cooldown_ticks`` counts runtime ticks, not seconds — trial counts are
    reproducible across resumes, wall-clock is not.
    """

    failure_threshold: int = 3
    cooldown_ticks: int = 2


class CircuitBreaker:
    """State machine for one (model, stem) member."""

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_tick: int | None = None
        self.n_skipped = 0  # cheap skips served while open

    def _transition(self, to_state: str) -> None:
        """Move to ``to_state``, counting the transition (out-of-band) when
        the state actually changes."""

        if self.state != to_state:
            get_registry().counter("breaker_transitions_total", to=to_state).inc()
        self.state = to_state

    def allow(self, tick: int) -> bool:
        """Whether a load may be attempted at ``tick``; flips open → half-open
        when the cool-down has elapsed (the admitted load is the probe)."""

        if self.state in (CLOSED, HALF_OPEN):
            return True
        assert self.opened_at_tick is not None
        if tick - self.opened_at_tick >= self.policy.cooldown_ticks:
            self._transition(HALF_OPEN)
            return True
        self.n_skipped += 1
        get_registry().counter("breaker_skips_total").inc()
        return False

    def record_success(self) -> None:
        self._transition(CLOSED)
        self.consecutive_failures = 0
        self.opened_at_tick = None

    def record_failure(self, tick: int) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.policy.failure_threshold:
            self._transition(OPEN)
            self.opened_at_tick = tick

    # -- serialisation ---------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opened_at_tick": self.opened_at_tick,
            "n_skipped": self.n_skipped,
        }

    def restore(self, snap: dict) -> None:
        self.state = snap["state"]
        self.consecutive_failures = int(snap["consecutive_failures"])
        self.opened_at_tick = snap["opened_at_tick"]
        self.n_skipped = int(snap.get("n_skipped", 0))


class BreakerBoard:
    """All breakers for one runtime/campaign, keyed ``"<model>/<stem>"``."""

    def __init__(self, policy: BreakerPolicy | None = None):
        self.policy = policy or BreakerPolicy()
        self.tick_count = 0
        self._breakers: dict[str, CircuitBreaker] = {}

    @staticmethod
    def key(model: str, stem: str) -> str:
        return f"{model}/{stem}"

    def breaker(self, model: str, stem: str) -> CircuitBreaker:
        return self._breakers.setdefault(self.key(model, stem), CircuitBreaker(self.policy))

    def tick(self) -> int:
        """Advance the trial clock; called once per ``run_model``/trial."""

        self.tick_count += 1
        return self.tick_count

    def allow(self, model: str, stem: str) -> bool:
        return self.breaker(model, stem).allow(self.tick_count)

    def record_success(self, model: str, stem: str) -> None:
        self.breaker(model, stem).record_success()

    def record_failure(self, model: str, stem: str) -> None:
        self.breaker(model, stem).record_failure(self.tick_count)

    def state(self, model: str, stem: str) -> str:
        b = self._breakers.get(self.key(model, stem))
        return b.state if b is not None else CLOSED

    def non_closed(self) -> dict[str, str]:
        """Every breaker not in the closed state, keyed ``"<model>/<stem>"``."""

        return {k: b.state for k, b in sorted(self._breakers.items()) if b.state != CLOSED}

    def states_for(self, model: str) -> dict[str, str]:
        """Non-closed breaker states for one model's stems — what a
        :class:`~polygraphmr.ensemble.DegradedResult` reports."""

        prefix = f"{model}/"
        return {
            k.removeprefix(prefix): b.state
            for k, b in sorted(self._breakers.items())
            if k.startswith(prefix) and b.state != CLOSED
        }

    # -- serialisation ---------------------------------------------------

    def snapshot(self) -> dict:
        """Full JSON-serialisable state; journalled per trial so a resumed
        campaign restores exactly the breaker behaviour mid-sweep."""

        return {
            "tick_count": self.tick_count,
            "breakers": {k: b.snapshot() for k, b in sorted(self._breakers.items())},
        }

    def restore(self, snap: dict) -> None:
        self.tick_count = int(snap.get("tick_count", 0))
        self._breakers = {}
        for k, s in snap.get("breakers", {}).items():
            b = CircuitBreaker(self.policy)
            b.restore(s)
            self._breakers[k] = b


# -- snapshot algebra ------------------------------------------------------
#
# The campaign keeps one board *per model* (see
# polygraphmr.campaign.TrialExecutor), so the snapshots to combine are always
# disjoint in their breaker keys ("<model>/<stem>").  That makes the merge
# rule trivially deterministic: union the breaker entries (sorted by key) and
# sum the tick counts.  Summing ticks preserves the serial run's meaning —
# each board ticks once per trial of its model, so the sum is the total trial
# count, exactly what a single shared board would have counted.


def merge_snapshots(snaps) -> dict:
    """Fold per-model board snapshots into one board-shaped snapshot.

    ``snaps`` must have disjoint breaker keys (guaranteed when each snapshot
    belongs to a different model); a collision raises
    :class:`ValueError` rather than silently picking a winner.
    """

    tick_count = 0
    breakers: dict[str, dict] = {}
    for snap in snaps:
        tick_count += int(snap.get("tick_count", 0))
        for key, state in snap.get("breakers", {}).items():
            if key in breakers:
                raise ValueError(f"breaker key {key!r} present in multiple snapshots")
            breakers[key] = state
    return {"tick_count": tick_count, "breakers": {k: breakers[k] for k in sorted(breakers)}}


def non_closed_in_snapshot(snap: dict) -> dict[str, str]:
    """``BreakerBoard.non_closed()`` computed directly on a snapshot."""

    return {
        k: s["state"]
        for k, s in sorted(snap.get("breakers", {}).items())
        if s.get("state") != CLOSED
    }
