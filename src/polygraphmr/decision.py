"""Trainable decision module: flag likely CNN mispredictions.

PolygraphMR's decision module looks at the outputs of the whole submodel
ensemble for one input and predicts whether the original model's (ORG's)
top-1 prediction is wrong.  Here it is a seeded logistic regression over
features derived from the stacked probability tensor, trained on the ``val``
split and evaluated on ``test`` — pure numpy, no external ML dependency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .metrics import get_registry

__all__ = [
    "DetectionMetrics",
    "LogisticDecisionModule",
    "ensemble_features",
    "ensemble_features_batch",
    "misprediction_targets",
]


@dataclass(frozen=True)
class DetectionMetrics:
    """Quality of misprediction detection on one split."""

    n: int
    accuracy: float
    precision: float
    recall: float
    f1: float
    auc: float
    base_rate: float  # fraction of samples that actually are mispredictions

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "accuracy": round(self.accuracy, 6),
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
            "auc": round(self.auc, 6),
            "base_rate": round(self.base_rate, 6),
        }


def ensemble_features(stacked: np.ndarray) -> np.ndarray:
    """Feature matrix from a stacked probability tensor ``(M, N, C)``.

    Concatenates every member's probability vector with cheap agreement
    statistics (mean-prob entropy, max mean-prob, top-1 vote agreement,
    ORG-vs-ensemble disagreement) that carry most of the detection signal
    and keep the feature map usable when members drop out.
    """

    m, n, c = stacked.shape
    flat = np.transpose(stacked, (1, 0, 2)).reshape(n, m * c)
    mean = stacked.mean(axis=0)  # (N, C)
    eps = 1e-12
    entropy = -(mean * np.log(mean + eps)).sum(axis=1, keepdims=True)
    max_mean = mean.max(axis=1, keepdims=True)
    votes = stacked.argmax(axis=2)  # (M, N)
    majority = np.apply_along_axis(lambda col: np.bincount(col, minlength=c).argmax(), 0, votes)
    agreement = (votes == majority[None, :]).mean(axis=0, keepdims=True).T  # (N, 1)
    org_disagrees = (votes[0] != majority).astype(np.float64)[:, None]
    return np.concatenate([flat, entropy, max_mean, agreement, org_disagrees], axis=1)


def ensemble_features_batch(batched: np.ndarray) -> np.ndarray:
    """:func:`ensemble_features` over a batch of stacked tensors ``(B, M, N, C)``.

    ``out[b]`` is bit-identical to ``ensemble_features(batched[b])``: every
    statistic reduces over the member or class axis elementwise, and the
    majority vote is recomputed as a one-hot count + argmax, which breaks
    ties toward the lowest class exactly like ``np.bincount(...).argmax()``.
    """

    b, m, n, c = batched.shape
    flat = np.transpose(batched, (0, 2, 1, 3)).reshape(b, n, m * c)
    mean = batched.mean(axis=1)  # (B, N, C)
    eps = 1e-12
    entropy = -(mean * np.log(mean + eps)).sum(axis=2, keepdims=True)
    max_mean = mean.max(axis=2, keepdims=True)
    votes = batched.argmax(axis=3)  # (B, M, N)
    counts = (votes[..., None] == np.arange(c)).sum(axis=1)  # (B, N, C) vote tallies
    majority = counts.argmax(axis=2)  # (B, N)
    agreement = (votes == majority[:, None, :]).mean(axis=1)[..., None]  # (B, N, 1)
    org_disagrees = (votes[:, 0] != majority).astype(np.float64)[..., None]
    return np.concatenate([flat, entropy, max_mean, agreement, org_disagrees], axis=2)


def misprediction_targets(org_probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Binary target: 1 where ORG's top-1 prediction is wrong."""

    return (org_probs.argmax(axis=1) != np.asarray(labels).reshape(-1)).astype(np.float64)


def _rank_auc(scores: np.ndarray, targets: np.ndarray) -> float:
    """Mann-Whitney AUC via average ranks; 0.5 when one class is absent."""

    pos = targets > 0.5
    n_pos = int(pos.sum())
    n_neg = len(targets) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return float((ranks[pos].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


class LogisticDecisionModule:
    """L2-regularised logistic regression trained by full-batch gradient descent.

    Deterministic for a fixed ``seed``; features are standardised with the
    training split's statistics.
    """

    def __init__(self, *, lr: float = 0.5, epochs: int = 400, l2: float = 1e-3, seed: int = 0):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.w: np.ndarray | None = None
        self.b: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    # -- internals -------------------------------------------------------

    def _standardise(self, x: np.ndarray, *, fit: bool) -> np.ndarray:
        if fit:
            self._mu = x.mean(axis=0)
            self._sigma = x.std(axis=0)
            self._sigma[self._sigma < 1e-9] = 1.0
        assert self._mu is not None and self._sigma is not None
        return (x - self._mu) / self._sigma

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    # -- API -------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LogisticDecisionModule":
        start = time.perf_counter()
        x = self._standardise(np.asarray(features, dtype=np.float64), fit=True)
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        self.w = rng.normal(0.0, 0.01, size=d)
        self.b = 0.0
        for _ in range(self.epochs):
            p = self._sigmoid(x @ self.w + self.b)
            err = p - y
            self.w -= self.lr * (x.T @ err / n + self.l2 * self.w)
            self.b -= self.lr * float(err.mean())
        get_registry().histogram("decision_fit_seconds").observe(time.perf_counter() - start)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.w is None:
            raise RuntimeError("decision module is not fitted")
        start = time.perf_counter()
        x = self._standardise(np.asarray(features, dtype=np.float64), fit=False)
        out = self._sigmoid(x @ self.w + self.b)
        get_registry().histogram("decision_predict_seconds").observe(time.perf_counter() - start)
        return out

    def predict(self, features: np.ndarray, *, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(np.int64)

    def evaluate(self, features: np.ndarray, targets: np.ndarray, *, threshold: float = 0.5) -> DetectionMetrics:
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        scores = self.predict_proba(features)
        pred = (scores >= threshold).astype(np.float64)
        tp = float(((pred == 1) & (y == 1)).sum())
        fp = float(((pred == 1) & (y == 0)).sum())
        fn = float(((pred == 0) & (y == 1)).sum())
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
        return DetectionMetrics(
            n=len(y),
            accuracy=float((pred == y).mean()) if len(y) else 0.0,
            precision=precision,
            recall=recall,
            f1=f1,
            auc=_rank_auc(scores, y),
            base_rate=float(y.mean()) if len(y) else 0.0,
        )
