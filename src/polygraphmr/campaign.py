"""Crash-safe, resumable fault-injection campaign runner.

A reliability evaluation worth trusting takes thousands of configured
injection trials (MRFI-style), which makes the *evaluation loop itself* the
availability bottleneck: a sweep that dies at trial 4 312 of 5 000 must not
lose everything, and a hung trial must not stall the fleet.  This runner is
built around three guarantees:

* **Write-ahead journal** — every trial outcome is one append-only JSONL
  record carrying a SHA-256 checksum over its canonical JSON.  Records are
  flushed and fsynced per trial, so at most the torn tail of the final line
  is ever lost to a crash.
* **Atomic checkpoints** — a small checksummed ``checkpoint.json`` is
  replaced atomically after every trial; it cross-checks the journal on
  resume and catches a journal that lost committed records.
* **Deterministic trials** — each trial's spec is derived from
  ``(campaign seed, trial index)`` alone, and the circuit-breaker board is
  snapshotted into every record, so ``--resume`` replays the interrupted
  campaign *exactly*: same specs, same breaker transitions, same results.

A per-trial watchdog bounds each trial's wall-clock; a trial that exceeds it
is journalled as ``trial_timeout`` and the sweep moves on.

Run ``python -m polygraphmr.campaign --help`` for the CLI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .breaker import BreakerBoard, BreakerPolicy
from .ensemble import EnsembleRuntime
from .errors import CampaignError
from .faults import FaultSpec, build_synthetic_model, measure_degradation
from .store import ArtifactStore

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_ERROR",
    "OUTCOME_TIMEOUT",
    "CampaignConfig",
    "TrialSpec",
    "CampaignJournal",
    "read_checkpoint",
    "write_checkpoint",
    "CampaignRunner",
    "main",
]

JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_VERSION = 1

OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "trial_timeout"


def _canonical(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _seal(record: dict) -> str:
    """Serialise ``record`` with an embedded checksum over everything else."""

    payload = dict(record)
    payload["sha256"] = _sha256(_canonical(record))
    return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign; journalled in the header record so
    a resume can refuse to continue under different settings."""

    cache: str
    n_trials: int = 10
    seed: int = 0
    kinds: tuple[str, ...] = ("bitflip", "gaussian")
    rates: tuple[float, ...] = (0.001, 0.01, 0.05)
    sigmas: tuple[float, ...] = (0.02, 0.05, 0.1)
    models: tuple[str, ...] = ()  # empty = every model in the cache
    timeout_s: float = 120.0  # <= 0 disables the watchdog
    allow_salvaged: bool = False
    failure_threshold: int = 3
    cooldown_ticks: int = 2
    min_members: int = 2

    def to_dict(self) -> dict:
        return {
            "cache": self.cache,
            "n_trials": self.n_trials,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rates": list(self.rates),
            "sigmas": list(self.sigmas),
            "models": list(self.models),
            "timeout_s": self.timeout_s,
            "allow_salvaged": self.allow_salvaged,
            "failure_threshold": self.failure_threshold,
            "cooldown_ticks": self.cooldown_ticks,
            "min_members": self.min_members,
        }


@dataclass(frozen=True)
class TrialSpec:
    """One trial's full parameterisation — a pure function of (seed, index)."""

    index: int
    model: str
    kind: str
    rate: float
    sigma: float
    fault_seed: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "model": self.model,
            "kind": self.kind,
            "rate": self.rate,
            "sigma": self.sigma,
            "fault_seed": self.fault_seed,
        }


def derive_trial_spec(config: CampaignConfig, models: list[str], index: int) -> TrialSpec:
    """Deterministically derive trial ``index``'s spec.

    Seeded with ``[config.seed, index]`` so any trial can be re-derived in
    isolation — the property that makes resume exact.
    """

    if not models:
        raise CampaignError("no-models", f"cache {config.cache!r} has no model directories")
    rng = np.random.default_rng([config.seed, index])
    return TrialSpec(
        index=index,
        model=models[index % len(models)],
        kind=config.kinds[int(rng.integers(len(config.kinds)))],
        rate=float(config.rates[int(rng.integers(len(config.rates)))]),
        sigma=float(config.sigmas[int(rng.integers(len(config.sigmas)))]),
        fault_seed=int(rng.integers(2**31 - 1)),
    )


class CampaignJournal:
    """Append-only JSONL write-ahead journal with per-record checksums."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Durably append one record: single write, flush, fsync."""

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(_seal(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _read_verified(self) -> tuple[list[dict], int]:
        """(verified records, byte length of the valid prefix).

        A torn or corrupt *final* line is dropped — that is exactly the
        crash-mid-append this journal exists to survive.  Damage anywhere
        earlier means committed history was altered and raises
        :class:`CampaignError`.
        """

        if not self.path.is_file():
            return [], 0
        records: list[dict] = []
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        offset = 0
        for i, line in enumerate(lines):
            if line == b"" and i == len(lines) - 1:
                break  # trailing newline of the last complete record
            bad = None
            payload: dict = {}
            try:
                payload = json.loads(line.decode("utf-8"))
                claimed = payload.pop("sha256", None) if isinstance(payload, dict) else None
                if not isinstance(payload, dict) or claimed != _sha256(_canonical(payload)):
                    bad = "journal-bad-checksum"
            except (json.JSONDecodeError, UnicodeDecodeError):
                bad = "journal-unparseable-line"
            if bad is not None:
                if i >= len(lines) - 2:  # last line, torn (with or without the final \n)
                    break
                raise CampaignError(bad, f"{self.path} line {i + 1}")
            records.append(payload)
            offset += len(line) + 1
        return records, offset

    def read(self) -> list[dict]:
        return self._read_verified()[0]

    def repair_tail(self) -> list[dict]:
        """Drop any torn final line *from the file itself* so the next append
        starts on a fresh line; returns the surviving records."""

        records, offset = self._read_verified()
        if self.path.is_file() and offset < self.path.stat().st_size:
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        return records

    def trial_records(self) -> dict[int, dict]:
        return {r["index"]: r for r in self.read() if r.get("type") == "trial"}


def write_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically replace the checkpoint: tmp file + fsync + ``os.replace``."""

    p = Path(path)
    body = dict(payload)
    body["sha256"] = _sha256(_canonical(payload))
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(body, fh, sort_keys=True, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, p)


def read_checkpoint(path: str | Path) -> dict | None:
    """The checkpoint payload, or ``None`` when absent or checksum-invalid.

    The journal is the source of truth; an unreadable checkpoint merely
    forfeits the fast consistency cross-check.
    """

    p = Path(path)
    if not p.is_file():
        return None
    try:
        body = json.loads(p.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None
    if not isinstance(body, dict):
        return None
    claimed = body.pop("sha256", None)
    if claimed != _sha256(_canonical(body)):
        return None
    return body


class CampaignRunner:
    """Drives trials through the journal/checkpoint machinery.

    ``trial_fn(spec) -> dict`` is injectable for tests (e.g. to fake a hang
    for the watchdog); the default runs
    :func:`polygraphmr.faults.measure_degradation` against a shared store,
    runtime, and circuit-breaker board.
    """

    def __init__(
        self,
        config: CampaignConfig,
        out_dir: str | Path,
        *,
        trial_fn=None,
        audit: dict | None = None,
    ):
        self.config = config
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.journal = CampaignJournal(self.out_dir / JOURNAL_NAME)
        self.checkpoint_path = self.out_dir / CHECKPOINT_NAME
        self.audit = audit
        self._trial_fn = trial_fn or self._run_trial
        self._stop = threading.Event()
        self._build_runtime()
        self.models = list(config.models) if config.models else self.store.models()

    def _build_runtime(self, breaker_snapshot: dict | None = None) -> None:
        self.store = ArtifactStore(self.config.cache, allow_salvaged=self.config.allow_salvaged)
        self.board = BreakerBoard(
            BreakerPolicy(self.config.failure_threshold, self.config.cooldown_ticks)
        )
        if breaker_snapshot is not None:
            self.board.restore(breaker_snapshot)
        self.runtime = EnsembleRuntime(
            self.store,
            min_members=self.config.min_members,
            seed=self.config.seed,
            breakers=self.board,
        )

    def request_stop(self) -> None:
        """Finish the in-flight trial, journal it, then exit the loop —
        the graceful-SIGTERM path."""

        self._stop.set()

    # -- trial execution -------------------------------------------------

    def _run_trial(self, spec: TrialSpec) -> dict:
        fault = FaultSpec(kind=spec.kind, rate=spec.rate, sigma=spec.sigma, seed=spec.fault_seed)
        return measure_degradation(
            self.store, spec.model, fault, seed=self.config.seed, runtime=self.runtime
        )

    def _call_with_watchdog(self, spec: TrialSpec):
        """(outcome, value, error) — never raises, never hangs past the timeout."""

        if self.config.timeout_s <= 0:
            try:
                return OUTCOME_OK, self._trial_fn(spec), None
            except Exception as exc:  # noqa: BLE001 - outcome, not crash
                return OUTCOME_ERROR, None, exc
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._trial_fn(spec)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        worker = threading.Thread(target=target, daemon=True, name=f"trial-{spec.index}")
        worker.start()
        worker.join(self.config.timeout_s)
        if worker.is_alive():
            return OUTCOME_TIMEOUT, None, None
        if "error" in box:
            return OUTCOME_ERROR, None, box["error"]
        return OUTCOME_OK, box.get("value"), None

    def _execute_trial(self, index: int) -> dict:
        spec = derive_trial_spec(self.config, self.models, index)
        pre_breakers = self.board.snapshot()
        started = time.monotonic()
        outcome, value, error = self._call_with_watchdog(spec)
        record = {
            "type": "trial",
            "index": index,
            "spec": spec.to_dict(),
            "outcome": outcome,
            "elapsed_s": round(time.monotonic() - started, 3),
        }
        if outcome == OUTCOME_TIMEOUT:
            # The abandoned worker thread still holds the old store/board;
            # rebuild both from the pre-trial snapshot so it cannot mutate
            # anything the remaining trials depend on.
            self._build_runtime(breaker_snapshot=pre_breakers)
            record["breakers"] = pre_breakers
        else:
            record["breakers"] = self.board.snapshot()
        if outcome == OUTCOME_OK:
            record["result"] = value
        elif outcome == OUTCOME_ERROR:
            record["error"] = repr(error)
        return record

    # -- resume plumbing -------------------------------------------------

    def _header_record(self) -> dict:
        record = {
            "type": "header",
            "version": JOURNAL_VERSION,
            "config": self.config.to_dict(),
            "models": self.models,
        }
        if self.audit is not None:
            record["audit"] = self.audit
        return record

    def _load_resume_state(self) -> tuple[dict[int, dict], int]:
        """(completed trials, journal record count) after tail repair and
        consistency checks; restores the breaker board mid-sweep."""

        records = self.journal.repair_tail()
        if not records:
            self.journal.append(self._header_record())
            return {}, 1
        header = records[0]
        if header.get("type") != "header":
            raise CampaignError("journal-no-header", str(self.journal.path))
        if header.get("config") != self.config.to_dict():
            raise CampaignError(
                "config-mismatch",
                "journal was written by a campaign with different settings; "
                "start a fresh --out directory instead",
            )
        checkpoint = read_checkpoint(self.checkpoint_path)
        if checkpoint is not None and checkpoint.get("journal_records", 0) > len(records):
            raise CampaignError(
                "journal-behind-checkpoint",
                f"checkpoint committed {checkpoint['journal_records']} record(s) "
                f"but the journal holds {len(records)} — committed history was lost",
            )
        # pin the model roster to what the interrupted run saw, so the
        # index -> model assignment cannot drift if the cache changed
        self.models = list(header.get("models", self.models))
        trials = {r["index"]: r for r in records if r.get("type") == "trial"}
        if trials:
            last = trials[max(trials)]
            self._build_runtime(breaker_snapshot=last.get("breakers"))
        return trials, len(records)

    def _write_checkpoint(self, done: dict[int, dict], journal_records: int) -> None:
        next_index = next(
            (i for i in range(self.config.n_trials) if i not in done), self.config.n_trials
        )
        write_checkpoint(
            self.checkpoint_path,
            {
                "version": JOURNAL_VERSION,
                "n_trials": self.config.n_trials,
                "completed": len(done),
                "next_index": next_index,
                "journal_records": journal_records,
            },
        )

    # -- the loop --------------------------------------------------------

    def run(self, *, resume: bool = False, max_new_trials: int | None = None) -> dict:
        """Run (or resume) the campaign; returns a summary dict.

        Without ``resume``, an existing non-empty journal is refused rather
        than clobbered.  ``max_new_trials`` bounds how many *new* trials this
        call executes — tests use it to simulate a mid-campaign crash.
        """

        if resume:
            done, journal_records = self._load_resume_state()
        else:
            if self.journal.repair_tail():
                raise CampaignError(
                    "journal-exists",
                    f"{self.journal.path} already holds records; pass resume=True / --resume",
                )
            self.journal.append(self._header_record())
            done = {}
            journal_records = 1

        new_trials = 0
        stopped_early = False
        for index in range(self.config.n_trials):
            if index in done:
                continue
            if self._stop.is_set() or (max_new_trials is not None and new_trials >= max_new_trials):
                stopped_early = True
                break
            record = self._execute_trial(index)
            self.journal.append(record)
            journal_records += 1
            done[index] = record
            new_trials += 1
            self._write_checkpoint(done, journal_records)

        outcomes = {OUTCOME_OK: 0, OUTCOME_ERROR: 0, OUTCOME_TIMEOUT: 0}
        for record in done.values():
            outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
        return {
            "n_trials": self.config.n_trials,
            "completed": len(done),
            "new_trials": new_trials,
            "stopped_early": stopped_early or self._stop.is_set(),
            "outcomes": outcomes,
            "breakers": self.board.non_closed(),
            "journal": str(self.journal.path),
            "checkpoint": str(self.checkpoint_path),
        }


# -- CLI -------------------------------------------------------------------


def _csv(cast):
    def parse(text: str):
        return tuple(cast(part) for part in text.split(",") if part)

    return parse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.campaign",
        description="Run a crash-safe, resumable fault-injection campaign.",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--out", required=True, help="campaign directory for journal + checkpoint")
    parser.add_argument("--trials", type=int, default=10, help="total trial count (default: 10)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--models", type=_csv(str), default=(), help="comma-separated model subset")
    parser.add_argument("--kinds", type=_csv(str), default=("bitflip", "gaussian"))
    parser.add_argument("--rates", type=_csv(float), default=(0.001, 0.01, 0.05))
    parser.add_argument("--sigmas", type=_csv(float), default=(0.02, 0.05, 0.1))
    parser.add_argument("--timeout", type=float, default=120.0, help="per-trial watchdog seconds; <=0 disables")
    parser.add_argument("--resume", action="store_true", help="continue at the first unfinished trial")
    parser.add_argument("--allow-salvaged", action="store_true", help="serve carved arrays from corrupt npz")
    parser.add_argument("--failure-threshold", type=int, default=3)
    parser.add_argument("--cooldown-ticks", type=int, default=2)
    parser.add_argument("--min-members", type=int, default=2)
    parser.add_argument(
        "--audit-json",
        default=None,
        help="path to `scripts/audit_cache.py --json` output to embed in the journal header",
    )
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and campaign against it",
    )
    args = parser.parse_args(argv)

    cache = args.cache
    if args.synthetic is not None:
        build_synthetic_model(args.synthetic, seed=args.seed)
        cache = args.synthetic

    audit = None
    if args.audit_json is not None:
        try:
            audit = json.loads(Path(args.audit_json).read_text(encoding="utf-8")).get("totals")
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: could not read audit json {args.audit_json!r}: {exc!r}", file=sys.stderr)

    config = CampaignConfig(
        cache=str(cache),
        n_trials=args.trials,
        seed=args.seed,
        kinds=args.kinds,
        rates=args.rates,
        sigmas=args.sigmas,
        models=args.models,
        timeout_s=args.timeout,
        allow_salvaged=args.allow_salvaged,
        failure_threshold=args.failure_threshold,
        cooldown_ticks=args.cooldown_ticks,
        min_members=args.min_members,
    )
    runner = CampaignRunner(config, args.out, audit=audit)

    def handle_stop(_signum, _frame):
        runner.request_stop()

    signal.signal(signal.SIGTERM, handle_stop)
    signal.signal(signal.SIGINT, handle_stop)

    try:
        summary = runner.run(resume=args.resume)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    json.dump(summary, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if summary["completed"] == config.n_trials else 3


if __name__ == "__main__":
    raise SystemExit(main())
