"""Crash-safe, resumable fault-injection campaign runner.

A reliability evaluation worth trusting takes thousands of configured
injection trials (MRFI-style), which makes the *evaluation loop itself* the
availability bottleneck: a sweep that dies at trial 4 312 of 5 000 must not
lose everything, and a hung trial must not stall the fleet.  This runner is
built around three guarantees:

* **Tamper-evident write-ahead journal** — every trial outcome is one
  append-only JSONL record, sealed with a SHA-256 over its canonical JSON
  and hash-chained to its predecessor (:mod:`polygraphmr.journal`, format
  v3).  Records are flushed and fsynced per trial, so at most the torn
  tail of the final line is ever lost to a crash — and a dropped,
  reordered, or spliced record anywhere breaks the chain.  ``python -m
  polygraphmr.campaign verify <dir>`` audits a finished (or interrupted)
  campaign end to end: chain walk, checkpoint-sealed head, and a replay of
  every trial spec from the journalled config.
* **Atomic checkpoints** — a small checksummed ``checkpoint.json`` is
  replaced atomically after every trial; it seals the journal's current
  chain head + record count, so on resume a journal that lost or rewrote
  committed records is refused.
* **Deterministic trials** — each trial's spec is derived from
  ``(campaign seed, trial index)`` alone, and every trial record is a pure
  function of the trial sub-sequence of its *model* (circuit-breaker boards
  are per model, see :class:`TrialExecutor`), so ``--resume`` replays an
  interrupted campaign *exactly* — and a parallel run
  (:mod:`polygraphmr.parallel`, ``--workers N``) produces a merged journal
  byte-identical to a serial one.

Journal records deliberately carry **no wall-clock data**: timing lives in
the run summary only, so the journal bytes depend on nothing but the config.

A per-trial watchdog bounds each trial's wall-clock; a trial that exceeds it
is journalled as ``trial_timeout`` and the sweep moves on.

Run ``python -m polygraphmr.campaign --help`` for the CLI.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from .batching import DEFAULT_BATCH_SIZE
from .breaker import BreakerBoard, BreakerPolicy, merge_snapshots, non_closed_in_snapshot
from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .ensemble import EnsembleRuntime
from .errors import CampaignError, ConfigError
from .faults import FaultSpec, build_synthetic_model, measure_degradation
from .journal import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    JOURNAL_VERSION,
    CampaignJournal,
    CampaignState,
    ChainIssue,
    canonical_json,
    chain_genesis,
    config_chain_hash,
    load_checkpoint,
    merge_journal,
    read_checkpoint,
    scan_campaign,
    seal_record,
    shard_journals,
    shard_name,
    sha256_hex,
    walk_chain,
    write_checkpoint,
)
from .metrics import (
    METRICS_NAME,
    MetricsRegistry,
    get_registry,
    load_registry,
    merge_registries,
    metrics_shards,
)
from .store import ArtifactStore
from .tracing import get_tracer

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_ERROR",
    "OUTCOME_TIMEOUT",
    "CampaignConfig",
    "TrialSpec",
    "TrialExecutor",
    "CampaignJournal",
    "CampaignState",
    "ChainIssue",
    "walk_chain",
    "scan_campaign",
    "shard_name",
    "shard_journals",
    "merge_journal",
    "validate_resume",
    "read_checkpoint",
    "write_checkpoint",
    "checkpoint_payload",
    "config_from_dict",
    "config_genesis",
    "scenarios_config_field",
    "verify_campaign",
    "verify_main",
    "report_campaign",
    "report_main",
    "CampaignRunner",
    "main",
]

OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "trial_timeout"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign; journalled in the header record so
    a resume can refuse to continue under different settings.

    Deliberately *not* part of the config: the worker count.  Parallelism is
    an execution detail — the journal a campaign produces is identical for
    any ``--workers`` value, so resuming with a different worker count is
    legal and exact.
    """

    cache: str
    n_trials: int = 10
    seed: int = 0
    kinds: tuple[str, ...] = ("bitflip", "gaussian")
    rates: tuple[float, ...] = (0.001, 0.01, 0.05)
    sigmas: tuple[float, ...] = (0.02, 0.05, 0.1)
    models: tuple[str, ...] = ()  # empty = every model in the cache
    # declarative scenario sweep: each entry is one scenario's *canonical
    # JSON* (hashable, and exactly the bytes its identity hash covers).
    # Empty = legacy kinds/rates/sigmas sweep.  Build with
    # ``scenarios_config_field``; recover objects with ``scenario_objects``.
    scenarios: tuple[str, ...] = ()
    timeout_s: float = 120.0  # <= 0 disables the watchdog
    allow_salvaged: bool = False
    failure_threshold: int = 3
    cooldown_ticks: int = 2
    min_members: int = 2
    trial_sleep_s: float = 0.0  # artificial per-trial latency (testing aid)

    def to_dict(self) -> dict:
        out = {
            "cache": self.cache,
            "n_trials": self.n_trials,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rates": list(self.rates),
            "sigmas": list(self.sigmas),
            "models": list(self.models),
            "timeout_s": self.timeout_s,
            "allow_salvaged": self.allow_salvaged,
            "failure_threshold": self.failure_threshold,
            "cooldown_ticks": self.cooldown_ticks,
            "min_members": self.min_members,
            "trial_sleep_s": self.trial_sleep_s,
        }
        if self.scenarios:
            # only present when sweeping scenarios, so legacy campaigns keep
            # journalling the exact same header bytes (and genesis hash)
            out["scenarios"] = [json.loads(s) for s in self.scenarios]
        return out

    def scenario_objects(self) -> tuple:
        """The sweep's :class:`~polygraphmr.scenarios.Scenario` objects,
        re-validated from their canonical JSON (cached per scenario list)."""

        return _scenarios_from_canonical(self.scenarios)

    def breaker_policy(self) -> BreakerPolicy:
        return BreakerPolicy(self.failure_threshold, self.cooldown_ticks)


def scenarios_config_field(scenarios) -> tuple[str, ...]:
    """Encode Scenario objects as the config's canonical-JSON tuple."""

    return tuple(s.canonical_json() for s in scenarios)


@lru_cache(maxsize=32)
def _scenarios_from_canonical(scenarios: tuple[str, ...]) -> tuple:
    from .scenarios import parse_scenario

    return tuple(parse_scenario(json.loads(s)) for s in scenarios)


def config_from_dict(d: dict) -> CampaignConfig:
    """Rebuild a :class:`CampaignConfig` from its journalled ``to_dict``
    form — the auditor's path from a sealed header back to a live config.

    Scenario entries are re-validated and re-canonicalised on the way in,
    so a journalled scenario that no longer parses (or was edited into an
    invalid state) surfaces as :class:`~polygraphmr.errors.ConfigError`
    here rather than as a derivation failure deep in the replay audit."""

    from .scenarios import parse_scenario

    return CampaignConfig(
        cache=d["cache"],
        n_trials=d["n_trials"],
        seed=d["seed"],
        kinds=tuple(d["kinds"]),
        rates=tuple(d["rates"]),
        sigmas=tuple(d["sigmas"]),
        models=tuple(d["models"]),
        scenarios=tuple(
            parse_scenario(s, source="config.scenarios").canonical_json() for s in d.get("scenarios", [])
        ),
        timeout_s=d["timeout_s"],
        allow_salvaged=d["allow_salvaged"],
        failure_threshold=d["failure_threshold"],
        cooldown_ticks=d["cooldown_ticks"],
        min_members=d["min_members"],
        trial_sleep_s=d["trial_sleep_s"],
    )


def config_genesis(config: CampaignConfig) -> str:
    """The canonical journal's chain-genesis hash for this campaign."""

    return chain_genesis(config_chain_hash(config.to_dict()))


@dataclass(frozen=True)
class TrialSpec:
    """One trial's full parameterisation — a pure function of (seed, index).

    In a scenario sweep, ``scenario``/``scenario_sha256`` name the trial's
    scenario and pin its canonical-config identity; ``kind``/``rate``/
    ``sigma`` then mirror the scenario's own parameters (informational —
    the scenario is the source of truth).  Legacy sweeps leave both None
    and their journalled form carries no scenario keys at all, so pre-
    scenario journals stay byte-identical.
    """

    index: int
    model: str
    kind: str
    rate: float
    sigma: float
    fault_seed: int
    scenario: str | None = None
    scenario_sha256: str | None = None

    def to_dict(self) -> dict:
        out = {
            "index": self.index,
            "model": self.model,
            "kind": self.kind,
            "rate": self.rate,
            "sigma": self.sigma,
            "fault_seed": self.fault_seed,
        }
        if self.scenario is not None:
            out["scenario"] = self.scenario
            out["scenario_sha256"] = self.scenario_sha256
        return out


def derive_trial_spec(
    config: CampaignConfig, models: list[str], index: int, *, scenarios=None
) -> TrialSpec:
    """Deterministically derive trial ``index``'s spec.

    Seeded with ``[config.seed, index]`` so any trial can be re-derived in
    isolation — the property that makes resume exact (and lets ``verify``
    replay-check a journal without running a single trial).  A scenario
    sweep draws one scenario from the configured list per trial; the
    scenario's canonical hash rides along in the spec, so the journalled
    record pins *what* was injected, not just which name.

    ``scenarios`` lets a hot loop pass the pre-resolved scenario objects
    (see :meth:`TrialExecutor.derive_spec`) instead of re-resolving the
    config's canonical JSON on every call.
    """

    if not models:
        raise CampaignError("no-models", f"cache {config.cache!r} has no model directories")
    rng = np.random.default_rng([config.seed, index])
    if config.scenarios:
        if scenarios is None:
            scenarios = config.scenario_objects()
        scenario = scenarios[int(rng.integers(len(config.scenarios)))]
        return TrialSpec(
            index=index,
            model=models[index % len(models)],
            kind=scenario.kind,
            rate=float(scenario.rate),
            sigma=float(scenario.sigma),
            fault_seed=int(rng.integers(2**31 - 1)),
            scenario=scenario.name,
            scenario_sha256=scenario.config_hash(),
        )
    return TrialSpec(
        index=index,
        model=models[index % len(models)],
        kind=config.kinds[int(rng.integers(len(config.kinds)))],
        rate=float(config.rates[int(rng.integers(len(config.rates)))]),
        sigma=float(config.sigmas[int(rng.integers(len(config.sigmas)))]),
        fault_seed=int(rng.integers(2**31 - 1)),
    )


def discover_models(config: CampaignConfig) -> list[str]:
    """The campaign's model roster: the configured subset, or every model
    directory in the cache (sorted, so the ``index -> model`` map is stable)."""

    if config.models:
        return list(config.models)
    return ArtifactStore(config.cache).models()


# -- resume guards ----------------------------------------------------------


def _version_mismatch_detail(found) -> str:
    if isinstance(found, int) and found < JOURNAL_VERSION:
        hint = (
            f"it predates the v{JOURNAL_VERSION} hash chain — finish it with a polygraphmr "
            f"release that writes v{found} journals, or start a fresh --out directory"
        )
    else:
        hint = (
            "it was written by a newer polygraphmr than this one — upgrade this checkout, "
            "or start a fresh --out directory"
        )
    return f"journal format v{found}, this runner expects v{JOURNAL_VERSION}; {hint}"


def validate_resume(state: CampaignState, config: CampaignConfig, checkpoint: dict | None) -> dict:
    """Shared resume guards for the serial and parallel runners.

    Returns the verified header record.  Raises :class:`CampaignError` when
    the header is absent or written by a different config/format version,
    when the journal is not chain-rooted in this campaign's config, when
    the checkpoint committed more durable history than the journal (or any
    shard) still holds, or when the checkpoint-sealed chain head disagrees
    with the chain the journal actually carries — extending tampered
    evidence is never allowed.
    """

    if state.header is None:
        raise CampaignError("journal-no-header", "no verifiable header record; cannot resume")
    if state.header.get("version") != JOURNAL_VERSION:
        raise CampaignError(
            "journal-version-mismatch", _version_mismatch_detail(state.header.get("version"))
        )
    if state.header.get("config") != config.to_dict():
        raise CampaignError(
            "config-mismatch",
            "journal was written by a campaign with different settings; "
            "start a fresh --out directory instead",
        )
    genesis = config_genesis(config)
    if state.canonical_chain and state.header.get("prev") != genesis:
        raise CampaignError(
            "journal-chain-broken",
            f"{JOURNAL_NAME} line 1 (header): prev does not match the genesis hash "
            f"{genesis[:12]}… derived from this campaign's config — the journal is "
            "not rooted in this campaign",
        )
    if checkpoint is not None:
        if checkpoint.get("journal_records", 0) > state.canonical_records:
            raise CampaignError(
                "journal-behind-checkpoint",
                f"checkpoint committed {checkpoint['journal_records']} record(s) "
                f"but the journal holds {state.canonical_records} — committed history was lost",
            )
        if checkpoint.get("completed", 0) > len(state.trials):
            raise CampaignError(
                "journal-behind-checkpoint",
                f"checkpoint committed {checkpoint['completed']} trial(s) "
                f"but journal + shards hold {len(state.trials)}",
            )
        sealed = checkpoint.get("chain_head")
        n = checkpoint.get("journal_records", 0)
        if sealed is not None and 0 < n <= len(state.canonical_chain) and state.canonical_chain[n - 1] != sealed:
            raise CampaignError(
                "journal-chain-broken",
                f"checkpoint seals chain head {str(sealed)[:12]}… over {JOURNAL_NAME} "
                f"record {n} but the journal's chain reads "
                f"{state.canonical_chain[n - 1][:12]}… there — committed history was altered",
            )
        for key, mark in checkpoint.get("workers", {}).items():
            have = state.shard_counts.get(int(key), 0)
            if mark.get("journalled", 0) > have:
                raise CampaignError(
                    "journal-behind-checkpoint",
                    f"checkpoint committed {mark['journalled']} record(s) for worker {key} "
                    f"but its shard holds {have}",
                )
            shard_chain = state.shard_chains.get(int(key), [])
            shard_head = mark.get("chain_head")
            shard_n = mark.get("journalled", 0)
            if (
                shard_head is not None
                and 0 < shard_n <= len(shard_chain)
                and shard_chain[shard_n - 1] != shard_head
            ):
                raise CampaignError(
                    "journal-chain-broken",
                    f"checkpoint seals chain head {str(shard_head)[:12]}… over "
                    f"{shard_name(int(key))} record {shard_n} but the shard's chain reads "
                    f"{shard_chain[shard_n - 1][:12]}… there — committed history was altered",
                )
    return state.header


def checkpoint_payload(
    config: CampaignConfig, done: dict[int, dict], journal_records: int, chain_head: str
) -> dict:
    """The canonical checkpoint body — identical for serial and (post-merge)
    parallel runs, so the final checkpoints of both are byte-comparable.

    ``chain_head`` seals the canonical journal's chain at ``journal_records``
    records: together they pin the journal's entire committed history, the
    anchor ``verify`` and ``--resume`` cross-check.
    """

    next_index = next((i for i in range(config.n_trials) if i not in done), config.n_trials)
    return {
        "version": JOURNAL_VERSION,
        "n_trials": config.n_trials,
        "completed": len(done),
        "next_index": next_index,
        "journal_records": journal_records,
        "chain_head": chain_head,
    }


# -- trial execution -------------------------------------------------------


class TrialExecutor:
    """Executes single trials deterministically — the one code path shared by
    the serial runner and every parallel worker.

    **Per-model breaker boards.**  Each model gets its own
    :class:`~polygraphmr.breaker.BreakerBoard`, ticked once per trial *of
    that model*.  Trial ``i`` always belongs to ``models[i % len(models)]``,
    so a model's trial sub-sequence — and therefore its board's entire
    state-machine history — is a pure function of the config, independent of
    how trials are spread over workers.  That is the invariant behind the
    serial ≡ parallel byte-identity guarantee: the journalled ``breakers``
    snapshot of trial ``i`` depends only on trials ``i % M, i % M + M, …``
    of the same model, never on interleaving.

    The executor opens its own :class:`ArtifactStore` lazily, so a parallel
    worker constructs it *after* ``fork`` — quarantine registries, salvage
    caches, and runtimes are never shared across processes.

    ``trial_fn(spec) -> dict`` is injectable for tests (e.g. to fake a hang
    for the watchdog); the default runs
    :func:`polygraphmr.faults.measure_degradation`.

    The executor owns one :class:`~polygraphmr.cache.ArtifactCache`
    (``use_cache=False`` disables it) shared by every store generation it
    builds — including rebuilds after a trial timeout, because cached
    entries are immutable validated values an abandoned thread cannot
    corrupt.  A parallel worker passes the parent's published
    :class:`~polygraphmr.cache.SharedMemoryPlane` as ``plane`` so cache
    misses resolve zero-copy instead of re-reading the disk.  Cache
    settings are executor tuning, not campaign identity: they never enter
    the journalled config.
    """

    def __init__(
        self,
        config: CampaignConfig,
        models: list[str],
        *,
        trial_fn=None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        use_cache: bool = True,
        plane=None,
    ):
        self.config = config
        self.models = list(models)
        self._trial_fn = trial_fn or self._run_trial
        # a custom trial_fn has no vectorized equivalent, so only the real
        # trial body is eligible for the batch kernel
        self.batchable = trial_fn is None
        # resolved once per executor: derive_spec and _scenario_for run in
        # the hot loop and must not re-parse the config's canonical JSON
        self.scenarios = config.scenario_objects()
        self.boards: dict[str, BreakerBoard] = {}
        self.cache = ArtifactCache(cache_bytes, plane=plane) if use_cache else None
        self._store: ArtifactStore | None = None
        self._runtimes: dict[str, EnsembleRuntime] = {}

    @property
    def store(self) -> ArtifactStore:
        if self._store is None:
            self._store = ArtifactStore(
                self.config.cache,
                allow_salvaged=self.config.allow_salvaged,
                cache=self.cache,
            )
        return self._store

    def board_for(self, model: str) -> BreakerBoard:
        board = self.boards.get(model)
        if board is None:
            board = self.boards[model] = BreakerBoard(self.config.breaker_policy())
        return board

    def runtime_for(self, model: str) -> EnsembleRuntime:
        runtime = self._runtimes.get(model)
        if runtime is None:
            runtime = self._runtimes[model] = EnsembleRuntime(
                self.store,
                min_members=self.config.min_members,
                seed=self.config.seed,
                breakers=self.board_for(model),
            )
        return runtime

    def restore_boards(self, trials: dict[int, dict]) -> None:
        """Restore every model's board from the *latest* journalled trial of
        that model — the per-model analogue of PR 2's mid-sweep restore."""

        last: dict[str, dict] = {}
        for index in sorted(trials):
            record = trials[index]
            model = record.get("spec", {}).get("model")
            if model is not None and record.get("breakers") is not None:
                last[model] = record["breakers"]
        for model, snap in last.items():
            board = BreakerBoard(self.config.breaker_policy())
            board.restore(snap)
            self.boards[model] = board
            self._runtimes.pop(model, None)

    def _scenario_for(self, spec: TrialSpec):
        """Resolve a spec's scenario from the config, cross-checking the
        journalled hash — a spec naming a scenario the config does not carry
        (or carrying different bytes) must never silently run something else."""

        for scenario in self.scenarios:
            if scenario.name == spec.scenario:
                if scenario.config_hash() != spec.scenario_sha256:
                    raise CampaignError(
                        "scenario-mismatch",
                        f"trial {spec.index}: scenario {spec.scenario!r} hashes to "
                        f"{scenario.config_hash()[:12]}… in the config but the spec pins "
                        f"{str(spec.scenario_sha256)[:12]}…",
                    )
                return scenario
        raise CampaignError(
            "scenario-mismatch",
            f"trial {spec.index}: scenario {spec.scenario!r} is not in the campaign config",
        )

    def derive_spec(self, index: int) -> TrialSpec:
        """:func:`derive_trial_spec` against this executor's pre-resolved
        scenario objects — the hot-loop entry point."""

        return derive_trial_spec(self.config, self.models, index, scenarios=self.scenarios)

    def fault_for(self, spec: TrialSpec):
        """The seeded fault object a spec describes: a scenario-pinned
        :class:`~polygraphmr.scenarios.ScenarioFault` or a legacy
        :class:`~polygraphmr.faults.FaultSpec`."""

        if spec.scenario is not None:
            return self._scenario_for(spec).fault(spec.fault_seed)
        return FaultSpec(kind=spec.kind, rate=spec.rate, sigma=spec.sigma, seed=spec.fault_seed)

    def _run_trial(self, spec: TrialSpec) -> dict:
        fault = self.fault_for(spec)
        return measure_degradation(
            self.store, spec.model, fault, seed=self.config.seed, runtime=self.runtime_for(spec.model)
        )

    def _call_with_watchdog(self, spec: TrialSpec):
        """(outcome, value, error) — never raises, never hangs past the timeout."""

        if self.config.timeout_s <= 0:
            try:
                return OUTCOME_OK, self._trial_fn(spec), None
            except Exception as exc:  # noqa: BLE001 - outcome, not crash
                return OUTCOME_ERROR, None, exc
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._trial_fn(spec)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        worker = threading.Thread(target=target, daemon=True, name=f"trial-{spec.index}")
        worker.start()
        worker.join(self.config.timeout_s)
        if worker.is_alive():
            return OUTCOME_TIMEOUT, None, None
        if "error" in box:
            return OUTCOME_ERROR, None, box["error"]
        return OUTCOME_OK, box.get("value"), None

    def _rebuild_after_timeout(self, model: str, pre_snapshot: dict) -> None:
        # The abandoned watchdog thread still holds the old store and this
        # model's old board; replace both (and every runtime that referenced
        # the old store) so it cannot mutate anything later trials depend on.
        self._store = None
        self._runtimes = {}
        board = BreakerBoard(self.config.breaker_policy())
        board.restore(pre_snapshot)
        self.boards[model] = board

    def execute(self, index: int) -> dict:
        """Run one trial and build its (deterministic) journal record.

        Each trial is wrapped in a tracing span and metered into the
        ``campaign_trial_seconds`` histogram / ``campaign_trials_total``
        counter — all out-of-band; the returned record carries no timing.
        """

        registry = get_registry()
        spec = self.derive_spec(index)
        with get_tracer().span(
            "campaign.trial",
            index=index,
            model=spec.model,
            observe=registry.histogram("campaign_trial_seconds"),
        ) as span:
            if self.config.trial_sleep_s > 0:
                time.sleep(self.config.trial_sleep_s)
            pre_breakers = self.board_for(spec.model).snapshot()
            outcome, value, error = self._call_with_watchdog(spec)
            span.set(outcome=outcome)
            record = {
                "type": "trial",
                "index": index,
                "spec": spec.to_dict(),
                "outcome": outcome,
            }
            if outcome == OUTCOME_TIMEOUT:
                self._rebuild_after_timeout(spec.model, pre_breakers)
                record["breakers"] = pre_breakers
            else:
                record["breakers"] = self.boards[spec.model].snapshot()
            if outcome == OUTCOME_OK:
                record["result"] = value
            elif outcome == OUTCOME_ERROR:
                record["error"] = repr(error)
        registry.counter("campaign_trials_total", outcome=outcome).inc()
        if spec.scenario is not None:
            registry.counter(
                "campaign_scenario_trials_total", scenario=spec.scenario, outcome=outcome
            ).inc()
        if outcome == OUTCOME_TIMEOUT:
            # the watchdog firing was previously only journalled; count it so
            # dashboards see hung trials without parsing the journal
            registry.counter("campaign_watchdog_fired_total").inc()
        return record


def summarize_trials(config: CampaignConfig, done: dict[int, dict]) -> dict:
    """Outcome counts + merged non-closed breaker states, computed purely
    from journal records so serial and parallel summaries agree exactly."""

    outcomes = {OUTCOME_OK: 0, OUTCOME_ERROR: 0, OUTCOME_TIMEOUT: 0}
    last_snap: dict[str, dict] = {}
    for index in sorted(done):
        record = done[index]
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
        model = record.get("spec", {}).get("model")
        if model is not None and record.get("breakers") is not None:
            last_snap[model] = record["breakers"]
    merged = merge_snapshots(last_snap[m] for m in sorted(last_snap))
    return {
        "n_trials": config.n_trials,
        "completed": len(done),
        "outcomes": outcomes,
        "breakers": non_closed_in_snapshot(merged),
    }


def header_record(config: CampaignConfig, models: list[str], audit: dict | None = None) -> dict:
    record = {
        "type": "header",
        "version": JOURNAL_VERSION,
        "config": config.to_dict(),
        "models": list(models),
    }
    if audit is not None:
        record["audit"] = audit
    return record


class CampaignRunner:
    """Drives trials serially through the journal/checkpoint machinery.

    For the multiprocess executor see
    :class:`polygraphmr.parallel.ParallelCampaignRunner`; both delegate trial
    execution to the same :class:`TrialExecutor`, which is what keeps their
    journals byte-identical.
    """

    def __init__(
        self,
        config: CampaignConfig,
        out_dir: str | Path,
        *,
        trial_fn=None,
        audit: dict | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        use_cache: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        use_batch: bool = True,
    ):
        self.config = config
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.journal = CampaignJournal(self.out_dir / JOURNAL_NAME, genesis=config_genesis(config))
        self.checkpoint_path = self.out_dir / CHECKPOINT_NAME
        self.audit = audit
        self._stop = threading.Event()
        self.models = discover_models(config)
        self.executor = TrialExecutor(
            config, self.models, trial_fn=trial_fn, cache_bytes=cache_bytes, use_cache=use_cache
        )
        # batch settings are executor tuning like the cache: they never
        # enter the journalled config, because batched and serial runs must
        # produce the same bytes
        self.batch_size = max(1, int(batch_size))
        self.use_batch = bool(use_batch) and self.executor.batchable

    def request_stop(self) -> None:
        """Finish the in-flight trial, journal it, then exit the loop —
        the graceful-SIGTERM path."""

        self._stop.set()

    # -- resume plumbing -------------------------------------------------

    def _header_record(self) -> dict:
        return header_record(self.config, self.models, self.audit)

    def _load_resume_state(self) -> tuple[dict[int, dict], dict, int]:
        """(completed trials, header, canonical record count) after tail
        repair and consistency checks — scanning the merged journal *and*
        any shards a parallel run left behind; restores per-model breaker
        boards mid-sweep."""

        state = scan_campaign(self.out_dir, repair=True)
        if state.canonical_records == 0 and not state.trials:
            header = self._header_record()
            self.journal.append(header)
            return {}, header, 1
        header = validate_resume(state, self.config, read_checkpoint(self.checkpoint_path))
        if state.canonical_chain:
            self.journal.prime_head(state.canonical_chain[-1])
        # pin the model roster to what the interrupted run saw, so the
        # index -> model assignment cannot drift if the cache changed
        self.models = list(header.get("models", self.models))
        self.executor.models = self.models
        self.executor.restore_boards(state.trials)
        return dict(state.trials), header, state.canonical_records

    def _write_checkpoint(self, done: dict[int, dict], journal_records: int, chain_head: str) -> None:
        write_checkpoint(
            self.checkpoint_path,
            checkpoint_payload(self.config, done, journal_records, chain_head),
        )

    def _run_batched(
        self, done: dict[int, dict], journal_records: int, max_new_trials: int | None
    ) -> tuple[int, int, bool]:
        """The batched main loop: plan windows over the pending trials, run
        each through the :class:`~polygraphmr.batching.BatchTrialEngine`,
        and flush every completed window to the journal in index order with
        one fsync + one checkpoint per window.

        Returns ``(new_trials, journal_records, stopped_early)`` with the
        same semantics the serial loop reports.
        """

        from .batching import BatchTrialEngine, plan_windows

        pending = [i for i in range(self.config.n_trials) if i not in done]
        bounded = pending if max_new_trials is None else pending[: max(0, max_new_trials)]
        stopped_early = len(bounded) < len(pending)
        new_trials = 0
        engine = BatchTrialEngine(self.executor, batch_size=self.batch_size)
        for window in plan_windows(bounded, len(self.models), self.batch_size):
            if self._stop.is_set():
                stopped_early = True
                break
            records, aborted = engine.execute_window(window, stop=self._stop)
            if records:
                self.journal.append_many(records)
                journal_records += len(records)
                for record in records:
                    done[record["index"]] = record
                new_trials += len(records)
                self._write_checkpoint(done, journal_records, self.journal.head)
            if aborted:
                stopped_early = True
                break
        return new_trials, journal_records, stopped_early

    # -- metrics (strictly out-of-band) ----------------------------------

    def _discard_stale_metric_shards(self) -> None:
        """Metric shards are per-run scratch: a shard left by a dead run
        would double-count if folded into this run's totals."""

        for path in metrics_shards(self.out_dir).values():
            path.unlink()

    def _finalize_metrics(self, completed: int) -> MetricsRegistry:
        """Fold the process-global registry with any worker shards into
        ``metrics.json``, then delete the shards.

        Never touches the journal or checkpoint — metrics files are a
        separate artefact with no determinism contract on their bytes.
        """

        registry = get_registry()
        registry.gauge("campaign_trials_completed").set(float(completed))
        shards = [load_registry(p) for _, p in sorted(metrics_shards(self.out_dir).items())]
        merged = merge_registries([registry, *[s for s in shards if s is not None]])
        merged.write_json(self.out_dir / METRICS_NAME)
        self._discard_stale_metric_shards()
        self.merged_registry = merged
        return merged

    # -- the loop --------------------------------------------------------

    def run(self, *, resume: bool = False, max_new_trials: int | None = None) -> dict:
        """Run (or resume) the campaign; returns a summary dict.

        Without ``resume``, an existing non-empty journal (or any shard) is
        refused rather than clobbered.  ``max_new_trials`` bounds how many
        *new* trials this call executes — tests use it to simulate a
        mid-campaign crash.

        The process-global metrics registry and tracer are reset on entry so
        the campaign's ``metrics.json`` describes exactly one run, even when
        several runners execute in the same process.
        """

        get_registry().reset()
        get_tracer().reset()
        if resume:
            done, header, journal_records = self._load_resume_state()
        else:
            state = scan_campaign(self.out_dir, repair=True)
            if state.canonical_records or state.trials:
                raise CampaignError(
                    "journal-exists",
                    f"{self.journal.path} (or a shard) already holds records; "
                    "pass resume=True / --resume",
                )
            header = self._header_record()
            self.journal.append(header)
            done = {}
            journal_records = 1
        self._discard_stale_metric_shards()

        if self.use_batch:
            new_trials, journal_records, stopped_early = self._run_batched(
                done, journal_records, max_new_trials
            )
        else:
            new_trials = 0
            stopped_early = False
            for index in range(self.config.n_trials):
                if index in done:
                    continue
                if self._stop.is_set() or (
                    max_new_trials is not None and new_trials >= max_new_trials
                ):
                    stopped_early = True
                    break
                record = self.executor.execute(index)
                self.journal.append(record)
                journal_records += 1
                done[index] = record
                new_trials += 1
                self._write_checkpoint(done, journal_records, self.journal.head)

        if not stopped_early and len(done) == self.config.n_trials and shard_journals(self.out_dir):
            # a previous parallel (or mixed) run left shards: fold everything
            # into the canonical journal so the final artefact is identical
            # to a pure serial run's
            _, chain_head = merge_journal(self.out_dir, header, done)
            self.journal.prime_head(chain_head)
            journal_records = 1 + len(done)
            self._write_checkpoint(done, journal_records, chain_head)

        self._finalize_metrics(len(done))
        summary = summarize_trials(self.config, done)
        summary.update(
            {
                "new_trials": new_trials,
                "stopped_early": stopped_early or self._stop.is_set(),
                "journal": str(self.journal.path),
                "checkpoint": str(self.checkpoint_path),
                "metrics": str(self.out_dir / METRICS_NAME),
            }
        )
        return summary


# -- verification (`campaign verify`) ---------------------------------------

VERIFY_OK = 0
VERIFY_CHAIN_BREAK = 3
VERIFY_REPLAY_MISMATCH = 4


def _strip_links(record: dict) -> dict:
    """A record's chained identity minus its chain position — what must agree
    when the same trial appears in the canonical journal and a shard."""

    return {k: v for k, v in record.items() if k not in ("prev", "sha256")}


def verify_campaign(out_dir: str | Path) -> dict:
    """Audit a campaign directory end to end; returns the verification report.

    Four passes, stopping at the exact first offending record:

    1. **Chain walk** — every canonical-journal record's seal and ``prev``
       link, rooted at the genesis hash derived from the journalled config;
       then every shard's chain, each rooted at its own shard genesis.
    2. **Cross-file consistency** — a trial journalled in two files must be
       identical (minus chain position); duplicate indices within a file are
       refused.
    3. **Checkpoint seal** — the checkpoint's ``chain_head`` must be the
       journal's actual chain hash at the sealed record count, and it can
       never have committed more history than the files still hold.
    4. **Replay audit** — every trial's journalled spec must re-derive
       exactly from the journalled config + model roster, proving the
       journal replay-matches the campaign it claims to record.

    ``exit_code`` is 0 (ok), 3 (chain break: seal/link/checkpoint damage),
    or 4 (replay mismatch: the chain is intact but records don't re-derive
    from the config).  Verified-record and failure tallies flow into the
    ``journal_records_verified_total`` / ``journal_chain_breaks_total`` /
    ``journal_replay_mismatches_total`` counters, under a ``journal.verify``
    tracing span.

    Trust model: the chain makes *silent* history rewrites detectable — any
    splice forces re-sealing every later record and changes the chain head.
    An adversary who can rewrite journal, shards, *and* checkpoint together
    can still forge a self-consistent directory; pinning the reported
    ``chain_head`` somewhere external (CI log, signed release notes) closes
    that loop.
    """

    out = Path(out_dir)
    registry = get_registry()
    with get_tracer().span("journal.verify", out_dir=str(out)) as span:
        report = _verify_campaign(out)
        registry.counter("journal_records_verified_total").inc(report["records_verified"])
        if report["status"] == "chain-break":
            registry.counter("journal_chain_breaks_total").inc()
        elif report["status"] == "replay-mismatch":
            registry.counter("journal_replay_mismatches_total").inc()
        span.set(status=report["status"], records_verified=report["records_verified"])
    return report


def _verify_campaign(out: Path) -> dict:
    report: dict = {
        "out_dir": str(out),
        "ok": False,
        "status": "chain-break",
        "exit_code": VERIFY_CHAIN_BREAK,
        "records_verified": 0,
        "trials": 0,
        "complete": False,
        "chain_head": None,
        "shards": {},
        "checkpoint": {"present": False},
        "first_bad": None,
    }

    def fail(status: str, code: int, file: str, line: int | None, reason: str, detail: str) -> dict:
        report["status"] = status
        report["exit_code"] = code
        report["first_bad"] = {
            "file": file,
            "line": line,
            "record_index": None if line is None else line - 1,
            "reason": reason,
            "detail": detail,
        }
        return report

    def chain_fail(file: str, line: int | None, reason: str, detail: str) -> dict:
        return fail("chain-break", VERIFY_CHAIN_BREAK, file, line, reason, detail)

    def replay_fail(file: str, line: int | None, reason: str, detail: str) -> dict:
        return fail("replay-mismatch", VERIFY_REPLAY_MISMATCH, file, line, reason, detail)

    journal_path = out / JOURNAL_NAME
    if not journal_path.is_file():
        return chain_fail(JOURNAL_NAME, None, "journal-missing", f"no {JOURNAL_NAME} in {out}")

    # 1a. canonical chain: every seal and every internal link, in line order
    records, chain, issue = walk_chain(journal_path)
    report["records_verified"] += len(records)
    if issue is not None:
        return chain_fail(JOURNAL_NAME, issue.line, issue.reason, issue.detail)
    if not records or records[0].get("type") != "header":
        return chain_fail(JOURNAL_NAME, 1, "journal-no-header", "no verifiable header record")
    header = records[0]
    found = header.get("version")
    if found != JOURNAL_VERSION:
        return chain_fail(JOURNAL_NAME, 1, "journal-version-mismatch", _version_mismatch_detail(found))
    cfg_dict = header.get("config")
    if not isinstance(cfg_dict, dict):
        return chain_fail(JOURNAL_NAME, 1, "journal-bad-header", "header carries no config object")
    config_sha = config_chain_hash(cfg_dict)
    genesis = chain_genesis(config_sha)
    if header.get("prev") != genesis:
        return chain_fail(
            JOURNAL_NAME,
            1,
            "journal-chain-broken",
            f"header prev {str(header.get('prev'))[:12]}… is not the genesis hash "
            f"{genesis[:12]}… derived from the journalled config",
        )
    report["chain_head"] = chain[-1]

    # trial provenance: index -> (file, line, record)
    trials: dict = {}
    for lineno, r in enumerate(records[1:], start=2):
        if r.get("type") != "trial":
            return chain_fail(
                JOURNAL_NAME,
                lineno,
                "journal-unknown-record",
                f"unexpected record type {r.get('type')!r} after the header",
            )
        idx = r.get("index")
        if idx in trials:
            return chain_fail(
                JOURNAL_NAME,
                lineno,
                "journal-duplicate-trial",
                f"trial {idx!r} already journalled at {trials[idx][0]} line {trials[idx][1]}",
            )
        trials[idx] = (JOURNAL_NAME, lineno, r)

    # 1b+2. shard chains, each rooted at its own shard genesis
    shard_chain_by_worker: dict[int, list[str]] = {}
    for worker, shard in sorted(shard_journals(out).items()):
        name = shard.path.name
        s_records, s_chain, s_issue = walk_chain(
            shard.path, genesis=chain_genesis(config_sha, shard=worker)
        )
        report["records_verified"] += len(s_records)
        if s_issue is not None:
            return chain_fail(name, s_issue.line, s_issue.reason, s_issue.detail)
        shard_chain_by_worker[worker] = s_chain
        report["shards"][f"{worker:02d}"] = {
            "records": len(s_records),
            "chain_head": s_chain[-1] if s_chain else None,
        }
        for lineno, r in enumerate(s_records, start=1):
            if r.get("type") != "trial":
                return chain_fail(
                    name,
                    lineno,
                    "journal-unknown-record",
                    f"unexpected record type {r.get('type')!r} in a shard",
                )
            idx = r.get("index")
            if idx in trials:
                ofile, oline, other = trials[idx]
                if ofile == name or _strip_links(r) != _strip_links(other):
                    return chain_fail(
                        name,
                        lineno,
                        "journal-record-conflict" if ofile != name else "journal-duplicate-trial",
                        f"trial {idx!r} disagrees with {ofile} line {oline}"
                        if ofile != name
                        else f"trial {idx!r} already journalled at {ofile} line {oline}",
                    )
            else:
                trials[idx] = (name, lineno, r)
    report["trials"] = len(trials)

    # 3. checkpoint: must seal a head (and counts) the files actually carry
    cp_payload, cp_problem = load_checkpoint(out / CHECKPOINT_NAME)
    if cp_problem == "checkpoint-invalid":
        return chain_fail(
            CHECKPOINT_NAME, None, "checkpoint-invalid", "checkpoint exists but fails its checksum"
        )
    if cp_payload is not None:
        report["checkpoint"] = {
            "present": True,
            "journal_records": cp_payload.get("journal_records"),
            "chain_head": cp_payload.get("chain_head"),
        }
        n = cp_payload.get("journal_records", 0)
        if isinstance(n, int) and n > len(chain):
            return chain_fail(
                JOURNAL_NAME,
                None,
                "journal-behind-checkpoint",
                f"checkpoint committed {n} record(s) but the journal holds {len(chain)}",
            )
        sealed = cp_payload.get("chain_head")
        if sealed is not None and isinstance(n, int) and n > 0 and chain[n - 1] != sealed:
            return chain_fail(
                JOURNAL_NAME,
                n,
                "journal-chain-broken",
                f"checkpoint seals chain head {str(sealed)[:12]}… over record {n} "
                f"but the journal's chain reads {chain[n - 1][:12]}… there",
            )
        if cp_payload.get("completed", 0) > len(trials):
            return chain_fail(
                JOURNAL_NAME,
                None,
                "journal-behind-checkpoint",
                f"checkpoint committed {cp_payload['completed']} trial(s) "
                f"but journal + shards hold {len(trials)}",
            )
        for key, mark in sorted(cp_payload.get("workers", {}).items()):
            try:
                w = int(key)
            except (TypeError, ValueError):
                return chain_fail(
                    CHECKPOINT_NAME, None, "checkpoint-invalid", f"malformed worker key {key!r}"
                )
            wchain = shard_chain_by_worker.get(w, [])
            wn = mark.get("journalled", 0) if isinstance(mark, dict) else 0
            if isinstance(wn, int) and wn > len(wchain):
                return chain_fail(
                    shard_name(w),
                    None,
                    "journal-behind-checkpoint",
                    f"checkpoint committed {wn} record(s) for worker {key} "
                    f"but its shard holds {len(wchain)}",
                )
            whead = mark.get("chain_head") if isinstance(mark, dict) else None
            if whead is not None and isinstance(wn, int) and wn > 0 and wchain[wn - 1] != whead:
                return chain_fail(
                    shard_name(w),
                    wn,
                    "journal-chain-broken",
                    f"checkpoint seals chain head {str(whead)[:12]}… over record {wn} "
                    f"but the shard's chain reads {wchain[wn - 1][:12]}… there",
                )

    # 4. replay audit: every trial must re-derive from the journalled config
    try:
        config = config_from_dict(cfg_dict)
    except (KeyError, TypeError, ValueError) as exc:  # ValueError covers ConfigError
        return chain_fail(JOURNAL_NAME, 1, "journal-bad-header", f"journalled config is malformed: {exc!r}")
    models = header.get("models")
    if trials and (not isinstance(models, list) or not models):
        file, line, _ = min(trials.values(), key=lambda v: (v[0], v[1]))
        return replay_fail(
            file, line, "journal-bad-header", "header has no model roster to re-derive trial specs from"
        )
    outcomes = {OUTCOME_OK, OUTCOME_ERROR, OUTCOME_TIMEOUT}
    for idx, (file, line, r) in sorted(trials.items(), key=lambda kv: (kv[1][0], kv[1][1])):
        if not isinstance(idx, int) or not (0 <= idx < config.n_trials):
            return replay_fail(
                file, line, "trial-out-of-range", f"trial index {idx!r} outside [0, {config.n_trials})"
            )
        if r.get("outcome") not in outcomes:
            return replay_fail(file, line, "unknown-outcome", f"outcome {r.get('outcome')!r}")
        try:
            expected = derive_trial_spec(config, list(models), idx).to_dict()
        except Exception as exc:  # noqa: BLE001 - any derivation failure is a finding
            return replay_fail(
                file, line, "spec-underivable", f"trial {idx} cannot be re-derived: {exc!r}"
            )
        if r.get("spec") != expected:
            return replay_fail(
                file,
                line,
                "spec-mismatch",
                f"trial {idx}'s journalled spec does not re-derive from the journalled config",
            )
    report["complete"] = all(i in trials for i in range(config.n_trials))

    report["ok"] = True
    report["status"] = "ok"
    report["exit_code"] = VERIFY_OK
    return report


# -- cross-scenario report (`campaign report`) -------------------------------


def report_campaign(out_dir: str | Path) -> dict:
    """Cross-scenario survival report, computed purely from the journal.

    Groups every journalled trial by its scenario (legacy sweeps group by
    fault kind, keyed ``kind:<kind>``) and summarises, per scenario:

    * ``trials`` / ``outcomes`` — trial counts by outcome; the per-scenario
      ``trials`` sum equals the journal's total trial count *exactly*, so
      the report reconciles against the journal record-for-record.
    * ``survived`` / ``survival_rate`` — trials that completed ``ok`` with
      the faulted detector still better than chance (faulted AUC ≥ 0.5):
      the ensemble's misprediction detection survived the injection.
    * ``degraded`` / ``degraded_rate`` — ok-trials the ensemble ran in
      degraded mode (members missing or quarantined).
    * ``override`` — mean decision-gate flag rate (the fraction of inputs
      where the gate overrides ORG's answer), clean vs faulted.
    * ``mean_delta_auc`` — mean clean→faulted AUC shift.

    The report never re-runs a trial and never touches journal bytes; it is
    a pure read of the same records ``verify`` audits.
    """

    out = Path(out_dir)
    state = scan_campaign(out)
    if state.header is None:
        raise CampaignError("journal-no-header", f"no verifiable header record in {out}")
    rows: dict[str, dict] = {}
    stats: dict[str, dict] = {}
    for index in sorted(state.trials):
        record = state.trials[index]
        spec = record.get("spec", {})
        name = spec.get("scenario") or f"kind:{spec.get('kind')}"
        row = rows.setdefault(
            name,
            {
                "scenario_sha256": spec.get("scenario_sha256"),
                "trials": 0,
                "outcomes": {OUTCOME_OK: 0, OUTCOME_ERROR: 0, OUTCOME_TIMEOUT: 0},
                "survived": 0,
                "degraded": 0,
            },
        )
        acc = stats.setdefault(name, {"clean": [], "faulted": [], "delta_auc": []})
        row["trials"] += 1
        outcome = record.get("outcome")
        row["outcomes"][outcome] = row["outcomes"].get(outcome, 0) + 1
        result = record.get("result")
        if outcome != OUTCOME_OK or not isinstance(result, dict):
            continue
        faulted_auc = result.get("faulted", {}).get("auc")
        if isinstance(faulted_auc, (int, float)) and faulted_auc >= 0.5:
            row["survived"] += 1
        if result.get("degraded"):
            row["degraded"] += 1
        override = result.get("override")
        if isinstance(override, dict):
            acc["clean"].append(float(override.get("clean", 0.0)))
            acc["faulted"].append(float(override.get("faulted", 0.0)))
        delta_auc = result.get("delta", {}).get("auc")
        if isinstance(delta_auc, (int, float)):
            acc["delta_auc"].append(float(delta_auc))

    def mean(values: list[float]) -> float | None:
        return round(sum(values) / len(values), 6) if values else None

    scenarios: dict[str, dict] = {}
    for name in sorted(rows):
        row, acc = rows[name], stats[name]
        n = row["trials"]
        row["survival_rate"] = round(row["survived"] / n, 6) if n else 0.0
        row["degraded_rate"] = round(row["degraded"] / n, 6) if n else 0.0
        row["override"] = {"clean": mean(acc["clean"]), "faulted": mean(acc["faulted"])}
        row["mean_delta_auc"] = mean(acc["delta_auc"])
        scenarios[name] = row
    return {
        "schema": "polygraphmr/campaign-report/v1",
        "out_dir": str(out),
        "n_trials": state.header.get("config", {}).get("n_trials"),
        "completed": len(state.trials),
        "scenarios": scenarios,
    }


def report_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.campaign report",
        description="Summarise a campaign journal per scenario: trial counts by "
        "outcome, ensemble survival (faulted AUC >= 0.5), degraded-mode and "
        "decision-gate override rates.  Counts reconcile exactly with the journal.",
    )
    parser.add_argument("out_dir", help="campaign directory (journal + checkpoint)")
    parser.add_argument("--json", action="store_true", help="machine-readable report on stdout")
    args = parser.parse_args(argv)
    try:
        report = report_campaign(args.out_dir)
    except CampaignError as exc:
        print(f"report error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(f"{report['completed']}/{report['n_trials']} trial(s) journalled in {report['out_dir']}")
    header = ("scenario", "trials", "ok", "err", "t/o", "survival", "degraded", "override", "Δauc")
    table = [header]
    for name, row in report["scenarios"].items():
        oc = row["outcomes"]
        ov = row["override"]
        override = (
            f"{ov['clean']:.3f}→{ov['faulted']:.3f}" if ov["clean"] is not None and ov["faulted"] is not None else "-"
        )
        delta = f"{row['mean_delta_auc']:+.4f}" if row["mean_delta_auc"] is not None else "-"
        table.append(
            (
                name,
                str(row["trials"]),
                str(oc.get(OUTCOME_OK, 0)),
                str(oc.get(OUTCOME_ERROR, 0)),
                str(oc.get(OUTCOME_TIMEOUT, 0)),
                f"{row['survival_rate']:.3f}",
                f"{row['degraded_rate']:.3f}",
                override,
                delta,
            )
        )
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    for i, r in enumerate(table):
        print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))
    return 0


# -- CLI -------------------------------------------------------------------


def _csv(cast):
    def parse(text: str):
        return tuple(cast(part) for part in text.split(",") if part)

    return parse


def verify_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.campaign verify",
        description="Audit a campaign's hash-chained journal: walk every chain, "
        "cross-check the checkpoint-sealed head, and re-derive every trial spec "
        "from the journalled config.  Exit 0 = verified, 3 = chain break, "
        "4 = replay mismatch.",
    )
    parser.add_argument("out_dir", help="campaign directory (journal + checkpoint)")
    parser.add_argument("--json", action="store_true", help="machine-readable report on stdout")
    args = parser.parse_args(argv)
    report = verify_campaign(args.out_dir)
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif report["ok"]:
        head = report["chain_head"] or ""
        print(
            f"ok: {report['records_verified']} record(s) across "
            f"{1 + len(report['shards'])} file(s) verified, {report['trials']} trial(s) "
            f"replay-match, chain head {head[:16]}…"
        )
    else:
        bad = report["first_bad"] or {}
        where = str(bad.get("file", "?"))
        if bad.get("line") is not None:
            where += f" line {bad['line']} (record {bad['record_index']})"
        print(
            f"FAIL [{report['status']}] {bad.get('reason')} at {where}: {bad.get('detail')}",
            file=sys.stderr,
        )
    return report["exit_code"]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["verify"]:
        return verify_main(argv[1:])
    if argv[:1] == ["report"]:
        return report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.campaign",
        description="Run a crash-safe, resumable fault-injection campaign.",
        epilog="subcommands: python -m polygraphmr.campaign verify <dir> [--json] — "
        "audit a campaign's hash-chained journal (exit 0/3/4); "
        "python -m polygraphmr.campaign report <dir> [--json] — "
        "cross-scenario survival report from the journal",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--out", required=True, help="campaign directory for journal + checkpoint")
    parser.add_argument("--trials", type=int, default=10, help="total trial count (default: 10)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 fans trials out per model and merges the "
        "journal shards into a byte-identical canonical journal (default: 1)",
    )
    parser.add_argument("--models", type=_csv(str), default=(), help="comma-separated model subset")
    parser.add_argument("--kinds", type=_csv(str), default=("bitflip", "gaussian"))
    parser.add_argument("--rates", type=_csv(float), default=(0.001, 0.01, 0.05))
    parser.add_argument("--sigmas", type=_csv(float), default=(0.02, 0.05, 0.1))
    parser.add_argument(
        "--scenarios",
        type=_csv(str),
        default=(),
        help="comma-separated scenario sweep: built-in names and/or .json/.toml "
        "config paths (replaces the --kinds/--rates/--sigmas sweep; see "
        "python -m polygraphmr.faults --list-scenarios)",
    )
    parser.add_argument("--timeout", type=float, default=120.0, help="per-trial watchdog seconds; <=0 disables")
    parser.add_argument("--resume", action="store_true", help="continue at the first unfinished trial")
    parser.add_argument("--allow-salvaged", action="store_true", help="serve carved arrays from corrupt npz")
    parser.add_argument("--failure-threshold", type=int, default=3)
    parser.add_argument("--cooldown-ticks", type=int, default=2)
    parser.add_argument("--min-members", type=int, default=2)
    parser.add_argument(
        "--trial-sleep",
        type=float,
        default=0.0,
        help="artificial seconds of latency per trial (testing/benchmark aid)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="byte budget for the verified-once artifact cache per executor "
        f"(default: {DEFAULT_CACHE_BYTES})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verified-once artifact cache and the parallel "
        "shared-memory plane (every load re-reads and re-validates)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="max trials per model batched through the vectorized kernel; "
        "journal bytes are identical at every size "
        f"(default: {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable the batched trial kernel and run the per-trial serial loop",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="also write the merged campaign metrics (JSON) to this path",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        help="also write the merged campaign metrics in Prometheus text format to this path",
    )
    parser.add_argument(
        "--audit-json",
        default=None,
        help="path to `scripts/audit_cache.py --json` output to embed in the journal header",
    )
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and campaign against it",
    )
    parser.add_argument(
        "--synthetic-models",
        type=int,
        default=1,
        help="with --synthetic: number of models to build (default: 1)",
    )
    args = parser.parse_args(argv)

    cache = args.cache
    if args.synthetic is not None:
        if args.synthetic_models <= 1:
            build_synthetic_model(args.synthetic, seed=args.seed)
        else:
            for i in range(args.synthetic_models):
                build_synthetic_model(
                    args.synthetic, f"synthetic-{i:02d}", n_val=96, n_test=96, seed=args.seed + i
                )
        cache = args.synthetic

    audit = None
    if args.audit_json is not None:
        try:
            audit = json.loads(Path(args.audit_json).read_text(encoding="utf-8")).get("totals")
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: could not read audit json {args.audit_json!r}: {exc!r}", file=sys.stderr)

    scenarios: tuple[str, ...] = ()
    if args.scenarios:
        from .scenarios import resolve_scenarios

        try:
            scenarios = scenarios_config_field(resolve_scenarios(args.scenarios))
        except ConfigError as exc:
            print(f"scenario error: {exc}", file=sys.stderr)
            return 2

    config = CampaignConfig(
        cache=str(cache),
        n_trials=args.trials,
        seed=args.seed,
        kinds=args.kinds,
        rates=args.rates,
        sigmas=args.sigmas,
        models=args.models,
        scenarios=scenarios,
        timeout_s=args.timeout,
        allow_salvaged=args.allow_salvaged,
        failure_threshold=args.failure_threshold,
        cooldown_ticks=args.cooldown_ticks,
        min_members=args.min_members,
        trial_sleep_s=args.trial_sleep,
    )
    run_opts = {
        "cache_bytes": args.cache_bytes,
        "use_cache": not args.no_cache,
        "batch_size": args.batch_size,
        "use_batch": not args.no_batch,
    }
    if args.workers > 1:
        from .parallel import ParallelCampaignRunner

        runner = ParallelCampaignRunner(
            config, args.out, workers=args.workers, audit=audit, **run_opts
        )
    else:
        runner = CampaignRunner(config, args.out, audit=audit, **run_opts)

    def handle_stop(_signum, _frame):
        runner.request_stop()

    signal.signal(signal.SIGTERM, handle_stop)
    signal.signal(signal.SIGINT, handle_stop)

    try:
        summary = runner.run(resume=args.resume)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    merged = getattr(runner, "merged_registry", None)
    if merged is not None:
        if args.metrics_out:
            merged.write_json(args.metrics_out)
        if args.metrics_prom:
            prom = Path(args.metrics_prom)
            prom.parent.mkdir(parents=True, exist_ok=True)
            prom.write_text(merged.to_prometheus(), encoding="utf-8")
    json.dump(summary, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if summary["completed"] == config.n_trials else 3


if __name__ == "__main__":
    raise SystemExit(main())
