"""Crash-safe, resumable fault-injection campaign runner.

A reliability evaluation worth trusting takes thousands of configured
injection trials (MRFI-style), which makes the *evaluation loop itself* the
availability bottleneck: a sweep that dies at trial 4 312 of 5 000 must not
lose everything, and a hung trial must not stall the fleet.  This runner is
built around three guarantees:

* **Write-ahead journal** — every trial outcome is one append-only JSONL
  record carrying a SHA-256 checksum over its canonical JSON.  Records are
  flushed and fsynced per trial, so at most the torn tail of the final line
  is ever lost to a crash.
* **Atomic checkpoints** — a small checksummed ``checkpoint.json`` is
  replaced atomically after every trial; it cross-checks the journal on
  resume and catches a journal that lost committed records.
* **Deterministic trials** — each trial's spec is derived from
  ``(campaign seed, trial index)`` alone, and every trial record is a pure
  function of the trial sub-sequence of its *model* (circuit-breaker boards
  are per model, see :class:`TrialExecutor`), so ``--resume`` replays an
  interrupted campaign *exactly* — and a parallel run
  (:mod:`polygraphmr.parallel`, ``--workers N``) produces a merged journal
  byte-identical to a serial one.

Journal records deliberately carry **no wall-clock data**: timing lives in
the run summary only, so the journal bytes depend on nothing but the config.

A per-trial watchdog bounds each trial's wall-clock; a trial that exceeds it
is journalled as ``trial_timeout`` and the sweep moves on.

Run ``python -m polygraphmr.campaign --help`` for the CLI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .breaker import BreakerBoard, BreakerPolicy, merge_snapshots, non_closed_in_snapshot
from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .ensemble import EnsembleRuntime
from .errors import CampaignError
from .faults import FaultSpec, build_synthetic_model, measure_degradation
from .metrics import (
    METRICS_NAME,
    MetricsRegistry,
    get_registry,
    load_registry,
    merge_registries,
    metrics_shards,
)
from .store import ArtifactStore
from .tracing import get_tracer

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_ERROR",
    "OUTCOME_TIMEOUT",
    "CampaignConfig",
    "TrialSpec",
    "TrialExecutor",
    "CampaignJournal",
    "CampaignState",
    "scan_campaign",
    "shard_name",
    "shard_journals",
    "merge_journal",
    "validate_resume",
    "read_checkpoint",
    "write_checkpoint",
    "CampaignRunner",
    "main",
]

JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_VERSION = 2

_SHARD_RE = re.compile(r"^journal\.w(\d{2,})\.jsonl$")

OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"
OUTCOME_TIMEOUT = "trial_timeout"


def _canonical(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _seal(record: dict) -> str:
    """Serialise ``record`` with an embedded checksum over everything else.

    Sealing is byte-stable: re-sealing a record read back from a journal
    reproduces the original line exactly (sorted keys, repr-round-tripped
    floats) — the property the shard merger relies on.
    """

    payload = dict(record)
    payload["sha256"] = _sha256(_canonical(record))
    return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a campaign; journalled in the header record so
    a resume can refuse to continue under different settings.

    Deliberately *not* part of the config: the worker count.  Parallelism is
    an execution detail — the journal a campaign produces is identical for
    any ``--workers`` value, so resuming with a different worker count is
    legal and exact.
    """

    cache: str
    n_trials: int = 10
    seed: int = 0
    kinds: tuple[str, ...] = ("bitflip", "gaussian")
    rates: tuple[float, ...] = (0.001, 0.01, 0.05)
    sigmas: tuple[float, ...] = (0.02, 0.05, 0.1)
    models: tuple[str, ...] = ()  # empty = every model in the cache
    timeout_s: float = 120.0  # <= 0 disables the watchdog
    allow_salvaged: bool = False
    failure_threshold: int = 3
    cooldown_ticks: int = 2
    min_members: int = 2
    trial_sleep_s: float = 0.0  # artificial per-trial latency (testing aid)

    def to_dict(self) -> dict:
        return {
            "cache": self.cache,
            "n_trials": self.n_trials,
            "seed": self.seed,
            "kinds": list(self.kinds),
            "rates": list(self.rates),
            "sigmas": list(self.sigmas),
            "models": list(self.models),
            "timeout_s": self.timeout_s,
            "allow_salvaged": self.allow_salvaged,
            "failure_threshold": self.failure_threshold,
            "cooldown_ticks": self.cooldown_ticks,
            "min_members": self.min_members,
            "trial_sleep_s": self.trial_sleep_s,
        }

    def breaker_policy(self) -> BreakerPolicy:
        return BreakerPolicy(self.failure_threshold, self.cooldown_ticks)


@dataclass(frozen=True)
class TrialSpec:
    """One trial's full parameterisation — a pure function of (seed, index)."""

    index: int
    model: str
    kind: str
    rate: float
    sigma: float
    fault_seed: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "model": self.model,
            "kind": self.kind,
            "rate": self.rate,
            "sigma": self.sigma,
            "fault_seed": self.fault_seed,
        }


def derive_trial_spec(config: CampaignConfig, models: list[str], index: int) -> TrialSpec:
    """Deterministically derive trial ``index``'s spec.

    Seeded with ``[config.seed, index]`` so any trial can be re-derived in
    isolation — the property that makes resume exact.
    """

    if not models:
        raise CampaignError("no-models", f"cache {config.cache!r} has no model directories")
    rng = np.random.default_rng([config.seed, index])
    return TrialSpec(
        index=index,
        model=models[index % len(models)],
        kind=config.kinds[int(rng.integers(len(config.kinds)))],
        rate=float(config.rates[int(rng.integers(len(config.rates)))]),
        sigma=float(config.sigmas[int(rng.integers(len(config.sigmas)))]),
        fault_seed=int(rng.integers(2**31 - 1)),
    )


def discover_models(config: CampaignConfig) -> list[str]:
    """The campaign's model roster: the configured subset, or every model
    directory in the cache (sorted, so the ``index -> model`` map is stable)."""

    if config.models:
        return list(config.models)
    return ArtifactStore(config.cache).models()


class CampaignJournal:
    """Append-only JSONL write-ahead journal with per-record checksums.

    The same class backs the canonical ``journal.jsonl`` and the per-worker
    shards (``journal.wNN.jsonl``) of a parallel run — one sealed-record
    format everywhere.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Durably append one record: single write, flush, fsync."""

        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(_seal(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _read_verified(self) -> tuple[list[dict], int]:
        """(verified records, byte length of the valid prefix).

        A torn or corrupt *final* line is dropped — that is exactly the
        crash-mid-append this journal exists to survive.  Damage anywhere
        earlier means committed history was altered and raises
        :class:`CampaignError`.
        """

        if not self.path.is_file():
            return [], 0
        records: list[dict] = []
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        offset = 0
        for i, line in enumerate(lines):
            if i == len(lines) - 1:
                # ``line`` is whatever follows the last "\n" (b"" when the
                # file ends cleanly).  The trailing newline is what commits
                # an append, so even a checksum-valid tail here is a torn
                # write: drop it — counting it would leave the file without
                # a terminator and make the *next* append glue onto it.
                break
            bad = None
            payload: dict = {}
            try:
                payload = json.loads(line.decode("utf-8"))
                claimed = payload.pop("sha256", None) if isinstance(payload, dict) else None
                if not isinstance(payload, dict) or claimed != _sha256(_canonical(payload)):
                    bad = "journal-bad-checksum"
            except (json.JSONDecodeError, UnicodeDecodeError):
                bad = "journal-unparseable-line"
            if bad is not None:
                if i >= len(lines) - 2:  # last line, torn (with or without the final \n)
                    break
                raise CampaignError(bad, f"{self.path} line {i + 1}")
            records.append(payload)
            offset += len(line) + 1
        return records, offset

    def read(self) -> list[dict]:
        return self._read_verified()[0]

    def repair_tail(self) -> list[dict]:
        """Drop any torn final line *from the file itself* so the next append
        starts on a fresh line; returns the surviving records."""

        records, offset = self._read_verified()
        if self.path.is_file() and offset < self.path.stat().st_size:
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        return records

    def trial_records(self) -> dict[int, dict]:
        return {r["index"]: r for r in self.read() if r.get("type") == "trial"}


# -- shards ----------------------------------------------------------------


def shard_name(worker: int) -> str:
    """Journal shard filename for one worker, e.g. ``journal.w03.jsonl``."""

    return f"journal.w{worker:02d}.jsonl"


def shard_journals(out_dir: str | Path) -> dict[int, CampaignJournal]:
    """Every journal shard in ``out_dir``, keyed by worker id."""

    out: dict[int, CampaignJournal] = {}
    d = Path(out_dir)
    if d.is_dir():
        for p in sorted(d.iterdir()):
            m = _SHARD_RE.match(p.name)
            if m:
                out[int(m.group(1))] = CampaignJournal(p)
    return out


@dataclass
class CampaignState:
    """Everything on disk about a campaign: the canonical journal plus any
    worker shards, deduplicated by trial index (canonical wins)."""

    header: dict | None
    trials: dict[int, dict]
    canonical_records: int  # verified record count in journal.jsonl
    shard_counts: dict[int, int] = field(default_factory=dict)  # worker -> trial records

    def complete(self, n_trials: int) -> bool:
        return all(i in self.trials for i in range(n_trials))


def scan_campaign(out_dir: str | Path, *, repair: bool = False) -> CampaignState:
    """Read the canonical journal *and* every shard; with ``repair=True``,
    torn tails are truncated in place (the resume path)."""

    canonical = CampaignJournal(Path(out_dir) / JOURNAL_NAME)
    records = canonical.repair_tail() if repair else canonical.read()
    header = records[0] if records and records[0].get("type") == "header" else None
    trials = {r["index"]: r for r in records if r.get("type") == "trial"}
    shard_counts: dict[int, int] = {}
    for worker, shard in shard_journals(out_dir).items():
        shard_records = shard.repair_tail() if repair else shard.read()
        shard_trials = [r for r in shard_records if r.get("type") == "trial"]
        shard_counts[worker] = len(shard_trials)
        for r in shard_trials:
            trials.setdefault(r["index"], r)
    return CampaignState(header, trials, len(records), shard_counts)


def merge_journal(out_dir: str | Path, header: dict, trials: dict[int, dict]) -> Path:
    """Fold shards into the canonical journal, **in index order**.

    The canonical file is atomically *replaced* (tmp + fsync + ``os.replace``)
    with header + every trial record sorted by index; only then are the
    shards deleted.  Until the replace lands, the shards remain the write-
    ahead source of truth, so a crash at any point loses nothing, and
    re-running the merge is idempotent.  Because sealing is byte-stable and
    records carry no wall-clock data, the merged file is byte-identical to
    the journal a serial run writes.
    """

    out = Path(out_dir)
    path = out / JOURNAL_NAME
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(_seal(header) + "\n")
        for index in sorted(trials):
            fh.write(_seal(trials[index]) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    for shard in shard_journals(out).values():
        shard.path.unlink(missing_ok=True)
    return path


# -- checkpoints -----------------------------------------------------------


def write_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically replace the checkpoint: tmp file + fsync + ``os.replace``."""

    p = Path(path)
    body = dict(payload)
    body["sha256"] = _sha256(_canonical(payload))
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(body, fh, sort_keys=True, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, p)


def read_checkpoint(path: str | Path) -> dict | None:
    """The checkpoint payload, or ``None`` when absent or checksum-invalid.

    The journal is the source of truth; an unreadable checkpoint merely
    forfeits the fast consistency cross-check.
    """

    p = Path(path)
    if not p.is_file():
        return None
    try:
        body = json.loads(p.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None
    if not isinstance(body, dict):
        return None
    claimed = body.pop("sha256", None)
    if claimed != _sha256(_canonical(body)):
        return None
    return body


def validate_resume(state: CampaignState, config: CampaignConfig, checkpoint: dict | None) -> dict:
    """Shared resume guards for the serial and parallel runners.

    Returns the verified header record.  Raises :class:`CampaignError` when
    the header is absent or written by a different config/format version, or
    when the checkpoint committed more durable history than the journal (or
    any shard) still holds.
    """

    if state.header is None:
        raise CampaignError("journal-no-header", "no verifiable header record; cannot resume")
    if state.header.get("version") != JOURNAL_VERSION:
        raise CampaignError(
            "journal-version-mismatch",
            f"journal format v{state.header.get('version')} != v{JOURNAL_VERSION}",
        )
    if state.header.get("config") != config.to_dict():
        raise CampaignError(
            "config-mismatch",
            "journal was written by a campaign with different settings; "
            "start a fresh --out directory instead",
        )
    if checkpoint is not None:
        if checkpoint.get("journal_records", 0) > state.canonical_records:
            raise CampaignError(
                "journal-behind-checkpoint",
                f"checkpoint committed {checkpoint['journal_records']} record(s) "
                f"but the journal holds {state.canonical_records} — committed history was lost",
            )
        if checkpoint.get("completed", 0) > len(state.trials):
            raise CampaignError(
                "journal-behind-checkpoint",
                f"checkpoint committed {checkpoint['completed']} trial(s) "
                f"but journal + shards hold {len(state.trials)}",
            )
        for key, mark in checkpoint.get("workers", {}).items():
            have = state.shard_counts.get(int(key), 0)
            if mark.get("journalled", 0) > have:
                raise CampaignError(
                    "journal-behind-checkpoint",
                    f"checkpoint committed {mark['journalled']} record(s) for worker {key} "
                    f"but its shard holds {have}",
                )
    return state.header


def checkpoint_payload(config: CampaignConfig, done: dict[int, dict], journal_records: int) -> dict:
    """The canonical checkpoint body — identical for serial and (post-merge)
    parallel runs, so the final checkpoints of both are byte-comparable."""

    next_index = next((i for i in range(config.n_trials) if i not in done), config.n_trials)
    return {
        "version": JOURNAL_VERSION,
        "n_trials": config.n_trials,
        "completed": len(done),
        "next_index": next_index,
        "journal_records": journal_records,
    }


# -- trial execution -------------------------------------------------------


class TrialExecutor:
    """Executes single trials deterministically — the one code path shared by
    the serial runner and every parallel worker.

    **Per-model breaker boards.**  Each model gets its own
    :class:`~polygraphmr.breaker.BreakerBoard`, ticked once per trial *of
    that model*.  Trial ``i`` always belongs to ``models[i % len(models)]``,
    so a model's trial sub-sequence — and therefore its board's entire
    state-machine history — is a pure function of the config, independent of
    how trials are spread over workers.  That is the invariant behind the
    serial ≡ parallel byte-identity guarantee: the journalled ``breakers``
    snapshot of trial ``i`` depends only on trials ``i % M, i % M + M, …``
    of the same model, never on interleaving.

    The executor opens its own :class:`ArtifactStore` lazily, so a parallel
    worker constructs it *after* ``fork`` — quarantine registries, salvage
    caches, and runtimes are never shared across processes.

    ``trial_fn(spec) -> dict`` is injectable for tests (e.g. to fake a hang
    for the watchdog); the default runs
    :func:`polygraphmr.faults.measure_degradation`.

    The executor owns one :class:`~polygraphmr.cache.ArtifactCache`
    (``use_cache=False`` disables it) shared by every store generation it
    builds — including rebuilds after a trial timeout, because cached
    entries are immutable validated values an abandoned thread cannot
    corrupt.  A parallel worker passes the parent's published
    :class:`~polygraphmr.cache.SharedMemoryPlane` as ``plane`` so cache
    misses resolve zero-copy instead of re-reading the disk.  Cache
    settings are executor tuning, not campaign identity: they never enter
    the journalled config.
    """

    def __init__(
        self,
        config: CampaignConfig,
        models: list[str],
        *,
        trial_fn=None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        use_cache: bool = True,
        plane=None,
    ):
        self.config = config
        self.models = list(models)
        self._trial_fn = trial_fn or self._run_trial
        self.boards: dict[str, BreakerBoard] = {}
        self.cache = ArtifactCache(cache_bytes, plane=plane) if use_cache else None
        self._store: ArtifactStore | None = None
        self._runtimes: dict[str, EnsembleRuntime] = {}

    @property
    def store(self) -> ArtifactStore:
        if self._store is None:
            self._store = ArtifactStore(
                self.config.cache,
                allow_salvaged=self.config.allow_salvaged,
                cache=self.cache,
            )
        return self._store

    def board_for(self, model: str) -> BreakerBoard:
        board = self.boards.get(model)
        if board is None:
            board = self.boards[model] = BreakerBoard(self.config.breaker_policy())
        return board

    def runtime_for(self, model: str) -> EnsembleRuntime:
        runtime = self._runtimes.get(model)
        if runtime is None:
            runtime = self._runtimes[model] = EnsembleRuntime(
                self.store,
                min_members=self.config.min_members,
                seed=self.config.seed,
                breakers=self.board_for(model),
            )
        return runtime

    def restore_boards(self, trials: dict[int, dict]) -> None:
        """Restore every model's board from the *latest* journalled trial of
        that model — the per-model analogue of PR 2's mid-sweep restore."""

        last: dict[str, dict] = {}
        for index in sorted(trials):
            record = trials[index]
            model = record.get("spec", {}).get("model")
            if model is not None and record.get("breakers") is not None:
                last[model] = record["breakers"]
        for model, snap in last.items():
            board = BreakerBoard(self.config.breaker_policy())
            board.restore(snap)
            self.boards[model] = board
            self._runtimes.pop(model, None)

    def _run_trial(self, spec: TrialSpec) -> dict:
        fault = FaultSpec(kind=spec.kind, rate=spec.rate, sigma=spec.sigma, seed=spec.fault_seed)
        return measure_degradation(
            self.store, spec.model, fault, seed=self.config.seed, runtime=self.runtime_for(spec.model)
        )

    def _call_with_watchdog(self, spec: TrialSpec):
        """(outcome, value, error) — never raises, never hangs past the timeout."""

        if self.config.timeout_s <= 0:
            try:
                return OUTCOME_OK, self._trial_fn(spec), None
            except Exception as exc:  # noqa: BLE001 - outcome, not crash
                return OUTCOME_ERROR, None, exc
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._trial_fn(spec)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        worker = threading.Thread(target=target, daemon=True, name=f"trial-{spec.index}")
        worker.start()
        worker.join(self.config.timeout_s)
        if worker.is_alive():
            return OUTCOME_TIMEOUT, None, None
        if "error" in box:
            return OUTCOME_ERROR, None, box["error"]
        return OUTCOME_OK, box.get("value"), None

    def _rebuild_after_timeout(self, model: str, pre_snapshot: dict) -> None:
        # The abandoned watchdog thread still holds the old store and this
        # model's old board; replace both (and every runtime that referenced
        # the old store) so it cannot mutate anything later trials depend on.
        self._store = None
        self._runtimes = {}
        board = BreakerBoard(self.config.breaker_policy())
        board.restore(pre_snapshot)
        self.boards[model] = board

    def execute(self, index: int) -> dict:
        """Run one trial and build its (deterministic) journal record.

        Each trial is wrapped in a tracing span and metered into the
        ``campaign_trial_seconds`` histogram / ``campaign_trials_total``
        counter — all out-of-band; the returned record carries no timing.
        """

        registry = get_registry()
        spec = derive_trial_spec(self.config, self.models, index)
        with get_tracer().span(
            "campaign.trial",
            index=index,
            model=spec.model,
            observe=registry.histogram("campaign_trial_seconds"),
        ) as span:
            if self.config.trial_sleep_s > 0:
                time.sleep(self.config.trial_sleep_s)
            pre_breakers = self.board_for(spec.model).snapshot()
            outcome, value, error = self._call_with_watchdog(spec)
            span.set(outcome=outcome)
            record = {
                "type": "trial",
                "index": index,
                "spec": spec.to_dict(),
                "outcome": outcome,
            }
            if outcome == OUTCOME_TIMEOUT:
                self._rebuild_after_timeout(spec.model, pre_breakers)
                record["breakers"] = pre_breakers
            else:
                record["breakers"] = self.boards[spec.model].snapshot()
            if outcome == OUTCOME_OK:
                record["result"] = value
            elif outcome == OUTCOME_ERROR:
                record["error"] = repr(error)
        registry.counter("campaign_trials_total", outcome=outcome).inc()
        if outcome == OUTCOME_TIMEOUT:
            # the watchdog firing was previously only journalled; count it so
            # dashboards see hung trials without parsing the journal
            registry.counter("campaign_watchdog_fired_total").inc()
        return record


def summarize_trials(config: CampaignConfig, done: dict[int, dict]) -> dict:
    """Outcome counts + merged non-closed breaker states, computed purely
    from journal records so serial and parallel summaries agree exactly."""

    outcomes = {OUTCOME_OK: 0, OUTCOME_ERROR: 0, OUTCOME_TIMEOUT: 0}
    last_snap: dict[str, dict] = {}
    for index in sorted(done):
        record = done[index]
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
        model = record.get("spec", {}).get("model")
        if model is not None and record.get("breakers") is not None:
            last_snap[model] = record["breakers"]
    merged = merge_snapshots(last_snap[m] for m in sorted(last_snap))
    return {
        "n_trials": config.n_trials,
        "completed": len(done),
        "outcomes": outcomes,
        "breakers": non_closed_in_snapshot(merged),
    }


def header_record(config: CampaignConfig, models: list[str], audit: dict | None = None) -> dict:
    record = {
        "type": "header",
        "version": JOURNAL_VERSION,
        "config": config.to_dict(),
        "models": list(models),
    }
    if audit is not None:
        record["audit"] = audit
    return record


class CampaignRunner:
    """Drives trials serially through the journal/checkpoint machinery.

    For the multiprocess executor see
    :class:`polygraphmr.parallel.ParallelCampaignRunner`; both delegate trial
    execution to the same :class:`TrialExecutor`, which is what keeps their
    journals byte-identical.
    """

    def __init__(
        self,
        config: CampaignConfig,
        out_dir: str | Path,
        *,
        trial_fn=None,
        audit: dict | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        use_cache: bool = True,
    ):
        self.config = config
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.journal = CampaignJournal(self.out_dir / JOURNAL_NAME)
        self.checkpoint_path = self.out_dir / CHECKPOINT_NAME
        self.audit = audit
        self._stop = threading.Event()
        self.models = discover_models(config)
        self.executor = TrialExecutor(
            config, self.models, trial_fn=trial_fn, cache_bytes=cache_bytes, use_cache=use_cache
        )

    def request_stop(self) -> None:
        """Finish the in-flight trial, journal it, then exit the loop —
        the graceful-SIGTERM path."""

        self._stop.set()

    # -- resume plumbing -------------------------------------------------

    def _header_record(self) -> dict:
        return header_record(self.config, self.models, self.audit)

    def _load_resume_state(self) -> tuple[dict[int, dict], dict, int]:
        """(completed trials, header, canonical record count) after tail
        repair and consistency checks — scanning the merged journal *and*
        any shards a parallel run left behind; restores per-model breaker
        boards mid-sweep."""

        state = scan_campaign(self.out_dir, repair=True)
        if state.canonical_records == 0 and not state.trials:
            header = self._header_record()
            self.journal.append(header)
            return {}, header, 1
        header = validate_resume(state, self.config, read_checkpoint(self.checkpoint_path))
        # pin the model roster to what the interrupted run saw, so the
        # index -> model assignment cannot drift if the cache changed
        self.models = list(header.get("models", self.models))
        self.executor.models = self.models
        self.executor.restore_boards(state.trials)
        return dict(state.trials), header, state.canonical_records

    def _write_checkpoint(self, done: dict[int, dict], journal_records: int) -> None:
        write_checkpoint(self.checkpoint_path, checkpoint_payload(self.config, done, journal_records))

    # -- metrics (strictly out-of-band) ----------------------------------

    def _discard_stale_metric_shards(self) -> None:
        """Metric shards are per-run scratch: a shard left by a dead run
        would double-count if folded into this run's totals."""

        for path in metrics_shards(self.out_dir).values():
            path.unlink()

    def _finalize_metrics(self, completed: int) -> MetricsRegistry:
        """Fold the process-global registry with any worker shards into
        ``metrics.json``, then delete the shards.

        Never touches the journal or checkpoint — metrics files are a
        separate artefact with no determinism contract on their bytes.
        """

        registry = get_registry()
        registry.gauge("campaign_trials_completed").set(float(completed))
        shards = [load_registry(p) for _, p in sorted(metrics_shards(self.out_dir).items())]
        merged = merge_registries([registry, *[s for s in shards if s is not None]])
        merged.write_json(self.out_dir / METRICS_NAME)
        self._discard_stale_metric_shards()
        self.merged_registry = merged
        return merged

    # -- the loop --------------------------------------------------------

    def run(self, *, resume: bool = False, max_new_trials: int | None = None) -> dict:
        """Run (or resume) the campaign; returns a summary dict.

        Without ``resume``, an existing non-empty journal (or any shard) is
        refused rather than clobbered.  ``max_new_trials`` bounds how many
        *new* trials this call executes — tests use it to simulate a
        mid-campaign crash.

        The process-global metrics registry and tracer are reset on entry so
        the campaign's ``metrics.json`` describes exactly one run, even when
        several runners execute in the same process.
        """

        get_registry().reset()
        get_tracer().reset()
        if resume:
            done, header, journal_records = self._load_resume_state()
        else:
            state = scan_campaign(self.out_dir, repair=True)
            if state.canonical_records or state.trials:
                raise CampaignError(
                    "journal-exists",
                    f"{self.journal.path} (or a shard) already holds records; "
                    "pass resume=True / --resume",
                )
            header = self._header_record()
            self.journal.append(header)
            done = {}
            journal_records = 1
        self._discard_stale_metric_shards()

        new_trials = 0
        stopped_early = False
        for index in range(self.config.n_trials):
            if index in done:
                continue
            if self._stop.is_set() or (max_new_trials is not None and new_trials >= max_new_trials):
                stopped_early = True
                break
            record = self.executor.execute(index)
            self.journal.append(record)
            journal_records += 1
            done[index] = record
            new_trials += 1
            self._write_checkpoint(done, journal_records)

        if not stopped_early and len(done) == self.config.n_trials and shard_journals(self.out_dir):
            # a previous parallel (or mixed) run left shards: fold everything
            # into the canonical journal so the final artefact is identical
            # to a pure serial run's
            merge_journal(self.out_dir, header, done)
            journal_records = 1 + len(done)
            self._write_checkpoint(done, journal_records)

        self._finalize_metrics(len(done))
        summary = summarize_trials(self.config, done)
        summary.update(
            {
                "new_trials": new_trials,
                "stopped_early": stopped_early or self._stop.is_set(),
                "journal": str(self.journal.path),
                "checkpoint": str(self.checkpoint_path),
                "metrics": str(self.out_dir / METRICS_NAME),
            }
        )
        return summary


# -- CLI -------------------------------------------------------------------


def _csv(cast):
    def parse(text: str):
        return tuple(cast(part) for part in text.split(",") if part)

    return parse


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.campaign",
        description="Run a crash-safe, resumable fault-injection campaign.",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--out", required=True, help="campaign directory for journal + checkpoint")
    parser.add_argument("--trials", type=int, default=10, help="total trial count (default: 10)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 fans trials out per model and merges the "
        "journal shards into a byte-identical canonical journal (default: 1)",
    )
    parser.add_argument("--models", type=_csv(str), default=(), help="comma-separated model subset")
    parser.add_argument("--kinds", type=_csv(str), default=("bitflip", "gaussian"))
    parser.add_argument("--rates", type=_csv(float), default=(0.001, 0.01, 0.05))
    parser.add_argument("--sigmas", type=_csv(float), default=(0.02, 0.05, 0.1))
    parser.add_argument("--timeout", type=float, default=120.0, help="per-trial watchdog seconds; <=0 disables")
    parser.add_argument("--resume", action="store_true", help="continue at the first unfinished trial")
    parser.add_argument("--allow-salvaged", action="store_true", help="serve carved arrays from corrupt npz")
    parser.add_argument("--failure-threshold", type=int, default=3)
    parser.add_argument("--cooldown-ticks", type=int, default=2)
    parser.add_argument("--min-members", type=int, default=2)
    parser.add_argument(
        "--trial-sleep",
        type=float,
        default=0.0,
        help="artificial seconds of latency per trial (testing/benchmark aid)",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="byte budget for the verified-once artifact cache per executor "
        f"(default: {DEFAULT_CACHE_BYTES})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verified-once artifact cache and the parallel "
        "shared-memory plane (every load re-reads and re-validates)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="also write the merged campaign metrics (JSON) to this path",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        help="also write the merged campaign metrics in Prometheus text format to this path",
    )
    parser.add_argument(
        "--audit-json",
        default=None,
        help="path to `scripts/audit_cache.py --json` output to embed in the journal header",
    )
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and campaign against it",
    )
    parser.add_argument(
        "--synthetic-models",
        type=int,
        default=1,
        help="with --synthetic: number of models to build (default: 1)",
    )
    args = parser.parse_args(argv)

    cache = args.cache
    if args.synthetic is not None:
        if args.synthetic_models <= 1:
            build_synthetic_model(args.synthetic, seed=args.seed)
        else:
            for i in range(args.synthetic_models):
                build_synthetic_model(
                    args.synthetic, f"synthetic-{i:02d}", n_val=96, n_test=96, seed=args.seed + i
                )
        cache = args.synthetic

    audit = None
    if args.audit_json is not None:
        try:
            audit = json.loads(Path(args.audit_json).read_text(encoding="utf-8")).get("totals")
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: could not read audit json {args.audit_json!r}: {exc!r}", file=sys.stderr)

    config = CampaignConfig(
        cache=str(cache),
        n_trials=args.trials,
        seed=args.seed,
        kinds=args.kinds,
        rates=args.rates,
        sigmas=args.sigmas,
        models=args.models,
        timeout_s=args.timeout,
        allow_salvaged=args.allow_salvaged,
        failure_threshold=args.failure_threshold,
        cooldown_ticks=args.cooldown_ticks,
        min_members=args.min_members,
        trial_sleep_s=args.trial_sleep,
    )
    cache_opts = {"cache_bytes": args.cache_bytes, "use_cache": not args.no_cache}
    if args.workers > 1:
        from .parallel import ParallelCampaignRunner

        runner = ParallelCampaignRunner(
            config, args.out, workers=args.workers, audit=audit, **cache_opts
        )
    else:
        runner = CampaignRunner(config, args.out, audit=audit, **cache_opts)

    def handle_stop(_signum, _frame):
        runner.request_stop()

    signal.signal(signal.SIGTERM, handle_stop)
    signal.signal(signal.SIGINT, handle_stop)

    try:
        summary = runner.run(resume=args.resume)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    merged = getattr(runner, "merged_registry", None)
    if merged is not None:
        if args.metrics_out:
            merged.write_json(args.metrics_out)
        if args.metrics_prom:
            prom = Path(args.metrics_prom)
            prom.parent.mkdir(parents=True, exist_ok=True)
            prom.write_text(merged.to_prometheus(), encoding="utf-8")
    json.dump(summary, sys.stdout, indent=2)
    sys.stdout.write("\n")
    return 0 if summary["completed"] == config.n_trials else 3


if __name__ == "__main__":
    raise SystemExit(main())
