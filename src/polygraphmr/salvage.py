"""Best-effort recovery of damaged ``.npz`` artifacts.

The seed cache's dominant failure mode is a mid-file byte cut: the zip's
end-of-central-directory record survives at the tail but points past the
truncation, so ``zipfile`` (and therefore ``np.load``) refuses the whole
archive — even when some member streams are still byte-for-byte intact.

This module carves the archive instead of trusting its directory: it scans
for local-file-header signatures, sanity-checks each candidate, inflates the
member stream defensively (stopping at the deflate terminator rather than
trusting the header's compressed size), verifies CRC where one is recorded,
and parses whatever decodes as a valid ``.npy`` payload.  The outcome is a
:class:`SalvageReport` naming every recovered and lost member, which the
artifact store can consume via its opt-in ``allow_salvaged=True`` mode.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .integrity import ZIP_MAGIC, find_eocd, read_bytes

__all__ = [
    "RECOVERED",
    "TRUNCATED",
    "CRC_MISMATCH",
    "UNDECODABLE",
    "MemberOutcome",
    "SalvageReport",
    "salvage_npz",
]

# member outcome codes
RECOVERED = "recovered"
TRUNCATED = "truncated"  # compressed stream never terminates (runs into the cut)
CRC_MISMATCH = "crc-mismatch"  # inflates, but not to the bytes the header promised
UNDECODABLE = "undecodable"  # inflates, but is not a readable .npy payload

# local file header after the 4-byte signature:
# ver(2) flags(2) method(2) mtime(2) mdate(2) crc(4) csize(4) usize(4) nlen(2) elen(2)
_LFH_FIXED = struct.Struct("<HHHHHIIIHH")
_MAX_NAME_LEN = 128
_MAX_EXTRA_LEN = 512
_FLAG_ENCRYPTED = 0x1


@dataclass(frozen=True)
class MemberOutcome:
    """What happened to one candidate archive member during carving."""

    name: str
    offset: int
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == RECOVERED


@dataclass
class SalvageReport:
    """Everything recovered (and lost) from one damaged archive."""

    path: str
    size: int
    expected_members: int | None  # EOCD's member count when parseable
    outcomes: list[MemberOutcome] = field(default_factory=list)
    arrays: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def recovered(self) -> list[str]:
        return sorted(self.arrays)

    @property
    def n_recovered(self) -> int:
        return len(self.arrays)

    @property
    def n_lost(self) -> int:
        """Members known to exist but not recovered.

        Uses the EOCD's claimed member count when available (the cut can
        erase a member's header entirely, leaving no carving candidate);
        otherwise falls back to counting failed candidates.
        """

        failed = len({o.name for o in self.outcomes if not o.ok} - set(self.arrays))
        if self.expected_members is not None:
            return max(self.expected_members - self.n_recovered, failed)
        return failed

    @property
    def ok(self) -> bool:
        return bool(self.arrays)

    @property
    def rows_recovered(self) -> int:
        return sum(int(a.shape[0]) for a in self.arrays.values() if a.ndim >= 1)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "size": self.size,
            "expected_members": self.expected_members,
            "recovered": self.recovered,
            "rows_recovered": self.rows_recovered,
            "lost": self.n_lost,
            "members": [
                {"name": o.name, "offset": o.offset, "status": o.status, "detail": o.detail}
                for o in self.outcomes
            ],
        }


def _zip64_sizes(extra: bytes, csize: int, usize: int) -> tuple[int, int]:
    """Resolve sizes through the zip64 extra field (header id 0x0001)."""

    i = 0
    while i + 4 <= len(extra):
        ext_id, ext_len = struct.unpack_from("<HH", extra, i)
        body = extra[i + 4 : i + 4 + ext_len]
        if ext_id == 0x0001:
            # fields appear only for header values pinned at 0xFFFFFFFF,
            # in order: usize, csize (8 bytes each)
            j = 0
            if usize == 0xFFFFFFFF and j + 8 <= len(body):
                usize = struct.unpack_from("<Q", body, j)[0]
                j += 8
            if csize == 0xFFFFFFFF and j + 8 <= len(body):
                csize = struct.unpack_from("<Q", body, j)[0]
            break
        i += 4 + ext_len
    return csize, usize


def _inflate_raw(stream: bytes) -> bytes | None:
    """Inflate a raw deflate stream, requiring a proper terminator.

    Returning ``None`` distinguishes "the stream runs into the cut" from an
    empty member — the deflate end-of-stream marker is the one trustworthy
    length signal left in a carved archive.
    """

    obj = zlib.decompressobj(-zlib.MAX_WBITS)
    try:
        out = obj.decompress(stream) + obj.flush()
    except zlib.error:
        return None
    return out if obj.eof else None


def _read_npy(payload: bytes) -> np.ndarray | None:
    try:
        arr = np.lib.format.read_array(io.BytesIO(payload), allow_pickle=False)
    except Exception:  # noqa: BLE001 - any parse failure means "not salvageable"
        return None
    return np.asarray(arr)


def _candidate_headers(data: bytes) -> list[tuple[int, str, int, int, int, int]]:
    """(offset, member_name, method, crc, csize, data_start) for every
    plausible local file header.  Signatures inside compressed streams are
    filtered out by the sanity checks on name and fixed fields."""

    found = []
    i = 0
    while True:
        i = data.find(ZIP_MAGIC, i)
        if i < 0:
            break
        at = i
        i += 4
        if at + 30 > len(data):
            continue
        _ver, flags, method, _mt, _md, crc, csize, usize, nlen, elen = _LFH_FIXED.unpack_from(data, at + 4)
        if flags & _FLAG_ENCRYPTED or method not in (0, 8):
            continue
        if not (0 < nlen <= _MAX_NAME_LEN) or elen > _MAX_EXTRA_LEN:
            continue
        name_bytes = data[at + 30 : at + 30 + nlen]
        if len(name_bytes) != nlen or not all(32 <= b < 127 for b in name_bytes):
            continue
        name = name_bytes.decode("ascii")
        if not name.endswith(".npy"):
            continue
        extra = data[at + 30 + nlen : at + 30 + nlen + elen]
        csize, usize = _zip64_sizes(extra, csize, usize)
        found.append((at, name, method, crc, csize, at + 30 + nlen + elen))
    return found


def salvage_npz(path: str | Path, *, data: bytes | None = None) -> SalvageReport:
    """Carve whatever member arrays survive in a (possibly damaged) ``.npz``.

    Never raises on damage — a hopeless file simply yields a report with no
    recovered arrays.  Works equally on intact archives, where it recovers
    every member.
    """

    p = Path(path)
    if data is None:
        data = read_bytes(p)  # ArtifactMissing propagates: nothing to carve
    eocd = find_eocd(data)
    expected = eocd.n_total if eocd is not None and 0 < eocd.n_total <= 4096 else None
    report = SalvageReport(path=str(p), size=len(data), expected_members=expected)

    for offset, name, method, crc, csize, start in _candidate_headers(data):
        if name.removesuffix(".npy") in report.arrays:
            continue  # first intact copy wins
        if method == 0:
            if csize <= 0 or start + csize > len(data):
                report.outcomes.append(MemberOutcome(name, offset, TRUNCATED, "stored data past EOF"))
                continue
            payload = data[start : start + csize]
        else:
            # Cap the inflate input at csize when the header looks sane, but
            # fall back to "rest of file" for streamed (flags bit 3) members
            # whose header sizes are zero — the terminator bounds the read.
            end = start + csize if 0 < csize <= len(data) - start else len(data)
            payload = _inflate_raw(data[start:end])
            if payload is None and end != len(data):
                payload = _inflate_raw(data[start:])
            if payload is None:
                report.outcomes.append(MemberOutcome(name, offset, TRUNCATED, "deflate stream does not terminate"))
                continue
        if crc and zlib.crc32(payload) != crc:
            report.outcomes.append(MemberOutcome(name, offset, CRC_MISMATCH, f"crc {zlib.crc32(payload):08x} != {crc:08x}"))
            continue
        arr = _read_npy(payload)
        if arr is None:
            report.outcomes.append(MemberOutcome(name, offset, UNDECODABLE, "payload is not a valid .npy"))
            continue
        report.arrays[name.removesuffix(".npy")] = arr
        report.outcomes.append(MemberOutcome(name, offset, RECOVERED, f"{arr.dtype} {arr.shape}"))
    return report
