"""Declarative fault-injection scenarios.

A *scenario* is a named, frozen description of one injection experiment:
which **surface** the fault lands on (whole tensor, a fraction of last-axis
channels, or an exact count of addressed elements), which **fault model**
perturbs the selected cells (IEEE-754 bit-flip, additive gaussian,
quantization-style rounding, stuck-at-0/1), which **target** tensor is hit
(member probabilities, or the decision gate's fitted weight vector), and at
what rate/intensity.  Scenarios are parsed from JSON or TOML files,
validated at construction (:class:`~polygraphmr.errors.ConfigError` names
the exact offending field), and identified by the SHA-256 of their
canonical JSON — the hash the campaign journal records per trial and mixes
into the chain genesis, so a sweep's identity covers *what* was injected,
not just how many times.

~9 named built-in scenarios ship alongside this module (the ``*.json`` /
``*.toml`` files in this directory); list them with
:func:`builtin_scenarios` or ``python -m polygraphmr.faults --list-scenarios``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigError
from ..faults import FAULT_MODELS, SURFACES, _require_number, apply_fault, apply_fault_batch
from ..journal import canonical_json, sha256_hex

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: stdlib tomllib is 3.11+
    tomllib = None

__all__ = [
    "TARGETS",
    "SCENARIO_FIELDS",
    "Scenario",
    "ScenarioFault",
    "parse_scenario",
    "load_scenario_file",
    "builtin_scenarios",
    "get_builtin",
    "resolve_scenarios",
]

TARGETS = ("probs", "weights")

#: Every key a scenario mapping may carry, in canonical order.
SCENARIO_FIELDS = ("name", "surface", "kind", "target", "rate", "sigma", "step", "count")

_REQUIRED_FIELDS = ("name", "surface", "kind")


@dataclass(frozen=True)
class Scenario:
    """One validated, immutable fault-injection scenario.

    Construction *is* validation: every constraint violation raises
    :class:`~polygraphmr.errors.ConfigError` with the exact field path
    (``scenario.rate``, ``scenario.kind``, ...), a machine-readable reason
    code, and an actionable detail string.  A ``Scenario`` that exists is a
    scenario that can run.
    """

    name: str
    surface: str  # "tensor" | "channel" | "element"
    kind: str  # "bitflip" | "gaussian" | "quantize" | "stuck0" | "stuck1"
    target: str = "probs"  # "probs" | "weights"
    rate: float = 0.0  # tensor/channel surfaces: fraction selected
    sigma: float = 0.0  # gaussian: noise stddev
    step: float = 0.0  # quantize: rounding grid
    count: int = 0  # element surface: exact cells addressed

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("scenario.name", "bad-type", f"expected a non-empty string, got {self.name!r}")
        if any(c.isspace() or c == "/" for c in self.name):
            raise ConfigError(
                "scenario.name", "bad-name", f"got {self.name!r}; names must be slug-like (no spaces or '/')"
            )
        if self.surface not in SURFACES:
            raise ConfigError(
                "scenario.surface",
                "unknown-surface",
                f"got {self.surface!r}; known surfaces: {', '.join(SURFACES)}",
            )
        if self.kind not in FAULT_MODELS:
            raise ConfigError(
                "scenario.kind", "unknown-kind", f"got {self.kind!r}; known kinds: {', '.join(FAULT_MODELS)}"
            )
        if self.target not in TARGETS:
            raise ConfigError(
                "scenario.target", "unknown-target", f"got {self.target!r}; known targets: {', '.join(TARGETS)}"
            )
        _require_number("scenario.rate", self.rate, low=0.0, high=1.0)
        _require_number("scenario.sigma", self.sigma, low=0.0)
        _require_number("scenario.step", self.step, low=0.0)
        if isinstance(self.count, bool) or not isinstance(self.count, int) or self.count < 0:
            raise ConfigError("scenario.count", "bad-type", f"expected an integer >= 0, got {self.count!r}")

        # Surface/model coupling: every parameter the scenario carries must
        # matter, so a typo'd config cannot silently describe a no-op sweep.
        if self.surface == "element":
            if self.count < 1:
                raise ConfigError(
                    "scenario.count", "missing-field", "element surface needs count >= 1 addressed cells"
                )
            if self.rate != 0.0:
                raise ConfigError(
                    "scenario.rate", "conflicting-field", "element surface addresses by count, not rate"
                )
        else:
            if self.rate <= 0.0:
                raise ConfigError(
                    "scenario.rate", "missing-field", f"{self.surface} surface needs rate in (0, 1]"
                )
            if self.count != 0:
                raise ConfigError(
                    "scenario.count", "conflicting-field", f"{self.surface} surface selects by rate, not count"
                )
        if self.kind == "gaussian" and self.sigma <= 0.0:
            raise ConfigError("scenario.sigma", "missing-field", "gaussian kind needs sigma > 0")
        if self.kind != "gaussian" and self.sigma != 0.0:
            raise ConfigError("scenario.sigma", "conflicting-field", f"{self.kind} kind does not use sigma")
        if self.kind == "quantize" and self.step <= 0.0:
            raise ConfigError("scenario.step", "missing-field", "quantize kind needs step > 0 (e.g. 0.0625 for 4-bit)")
        if self.kind != "quantize" and self.step != 0.0:
            raise ConfigError("scenario.step", "conflicting-field", f"{self.kind} kind does not use step")

    def canonical(self) -> dict:
        """The scenario as a plain dict with every field, in schema order."""

        return {
            "name": self.name,
            "surface": self.surface,
            "kind": self.kind,
            "target": self.target,
            "rate": float(self.rate),
            "sigma": float(self.sigma),
            "step": float(self.step),
            "count": int(self.count),
        }

    def canonical_json(self) -> str:
        """Canonical JSON encoding — the bytes the identity hash covers."""

        return canonical_json(self.canonical())

    def config_hash(self) -> str:
        """SHA-256 of the canonical JSON: the scenario's journalled identity."""

        return sha256_hex(self.canonical_json())

    def fault(self, seed: int) -> "ScenarioFault":
        """Bind this scenario to a trial seed, yielding an applicable fault."""

        return ScenarioFault(self, seed)


@dataclass(frozen=True)
class ScenarioFault:
    """A scenario bound to one trial's seed — the duck-typed fault object
    :func:`polygraphmr.faults.measure_degradation` consumes (``apply`` /
    ``describe`` / ``target``), mirroring :class:`polygraphmr.faults.FaultSpec`."""

    scenario: Scenario
    seed: int = 0

    @property
    def target(self) -> str:
        return self.scenario.target

    def apply(self, arr: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        s = self.scenario
        return apply_fault(
            arr, surface=s.surface, kind=s.kind, rate=s.rate, sigma=s.sigma, step=s.step, count=s.count, rng=rng
        )

    def apply_batch(self, stacked: np.ndarray, *, seeds=None) -> np.ndarray:
        """Batched :meth:`apply`: ``out[b]`` is bit-identical to
        ``self.scenario.fault(seeds[b]).apply(stacked[b])``.  ``seeds``
        defaults to this fault's seed for every slice; the input is never
        mutated."""

        s = self.scenario
        stacked = np.asarray(stacked)
        if seeds is None:
            seeds = [self.seed] * stacked.shape[0]
        return apply_fault_batch(
            stacked,
            surface=s.surface,
            kind=s.kind,
            rate=s.rate,
            sigma=s.sigma,
            step=s.step,
            count=s.count,
            seeds=seeds,
        )

    def describe(self) -> dict:
        """The journalled ``fault`` stanza: full scenario identity + seed."""

        return {"scenario": self.scenario.name, "scenario_sha256": self.scenario.config_hash(), **self.scenario.canonical(), "seed": self.seed}


def parse_scenario(data: object, *, source: str = "") -> Scenario:
    """Validate a decoded JSON/TOML mapping into a :class:`Scenario`.

    ``source`` (usually the file path) prefixes every error's field path, so
    a malformed config in a sweep of many files is pinpointed exactly:
    ``scenarios/quantize-4bit.toml: scenario.step: missing-field (...)``.
    """

    prefix = f"{source}: " if source else ""
    if not isinstance(data, Mapping):
        raise ConfigError(f"{prefix}scenario", "bad-type", f"expected a mapping, got {type(data).__name__}")
    for key in data:
        if key not in SCENARIO_FIELDS:
            raise ConfigError(
                f"{prefix}scenario.{key}",
                "unknown-field",
                f"known fields: {', '.join(SCENARIO_FIELDS)}",
            )
    for key in _REQUIRED_FIELDS:
        if key not in data:
            raise ConfigError(f"{prefix}scenario.{key}", "missing-field", "required")
    try:
        return Scenario(**dict(data))
    except ConfigError as exc:
        if prefix:
            raise ConfigError(f"{prefix}{exc.field}", exc.reason, exc.detail) from None
        raise


def _loads_toml(text: str) -> dict:
    if tomllib is not None:
        return tomllib.loads(text)
    # Python 3.10 fallback: flat `key = value` tables only — exactly what
    # scenario files use.  Full TOML needs the 3.11+ stdlib parser.
    out: dict = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        key, sep, value = (part.strip() for part in line.partition("="))
        if not sep or not key or not value:
            raise ValueError(f"line {lineno}: expected `key = value`")
        if value.startswith('"'):
            out[key] = json.loads(value)
        elif value in ("true", "false"):
            out[key] = value == "true"
        else:
            out[key] = int(value) if value.lstrip("+-").isdigit() else float(value)
    return out


def load_scenario_file(path: str | Path) -> Scenario:
    """Parse one scenario config file (``.json`` or ``.toml``)."""

    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".json", ".toml"):
        raise ConfigError(str(path), "unknown-format", "scenario files must be .json or .toml")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(str(path), "unreadable", repr(exc)) from None
    try:
        data = json.loads(text) if suffix == ".json" else _loads_toml(text)
    except ValueError as exc:  # JSONDecodeError and TOMLDecodeError both subclass it
        raise ConfigError(str(path), "unparseable", str(exc)) from None
    return parse_scenario(data, source=str(path))


@lru_cache(maxsize=1)
def builtin_scenarios() -> dict[str, Scenario]:
    """The named built-in scenario library, keyed by name, sorted.

    Every ``*.json``/``*.toml`` file shipped next to this module is one
    scenario; its file stem must equal its ``name`` so the library cannot
    drift from the filenames users pass on the command line.
    """

    here = Path(__file__).resolve().parent
    out: dict[str, Scenario] = {}
    for path in sorted(here.glob("*.json")) + sorted(here.glob("*.toml")):
        scenario = load_scenario_file(path)
        if scenario.name != path.stem:
            raise ConfigError(
                f"{path}: scenario.name", "name-mismatch", f"file stem {path.stem!r} != name {scenario.name!r}"
            )
        out[scenario.name] = scenario
    return dict(sorted(out.items()))


def get_builtin(name: str) -> Scenario:
    """Look up one built-in scenario by name; unknown names list the library."""

    library = builtin_scenarios()
    if name not in library:
        raise ConfigError(
            "scenario.name", "unknown-scenario", f"got {name!r}; built-ins: {', '.join(library)}"
        )
    return library[name]


def resolve_scenarios(specs: Sequence[str]) -> list[Scenario]:
    """Resolve a mixed list of built-in names and config-file paths.

    A spec containing a path separator or a ``.json``/``.toml`` suffix is
    loaded as a file; anything else is a built-in name.  Duplicate scenario
    names in one sweep are rejected — the cross-scenario report keys rows by
    name, so duplicates would silently merge unrelated trials.
    """

    out: list[Scenario] = []
    seen: set[str] = set()
    for spec in specs:
        if "/" in spec or spec.lower().endswith((".json", ".toml")):
            scenario = load_scenario_file(spec)
        else:
            scenario = get_builtin(spec)
        if scenario.name in seen:
            raise ConfigError("scenarios", "duplicate-name", f"scenario {scenario.name!r} listed twice")
        seen.add(scenario.name)
        out.append(scenario)
    return out
