"""Available-vs-expected artifact manifests for a model cache directory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["ArtifactStatus", "ArtifactRecord", "ModelManifest", "CacheManifest"]

SPLITS = ("val", "test")

# status values an ArtifactRecord may carry
VALID = "valid"
CORRUPT = "corrupt"
MISSING = "missing"
SALVAGED = "salvaged"  # container corrupt, but the needed arrays were carved out


@dataclass(frozen=True)
class ArtifactStatus:
    """One of ``valid`` / ``corrupt`` / ``missing`` plus the reason code."""

    status: str
    reason: str = ""
    detail: str = ""


@dataclass(frozen=True)
class ArtifactRecord:
    """Identity + health of one expected artifact file."""

    model: str
    stem: str  # ORG | pp-* | replica-*
    kind: str  # "probs" | "weights"
    split: str | None  # val/test for probs, None for weights
    filename: str
    status: ArtifactStatus

    @property
    def ok(self) -> bool:
        return self.status.status in (VALID, SALVAGED)


def expected_filenames(stem: str) -> list[tuple[str, str | None, str]]:
    """(kind, split, filename) triples every submodel stem should provide."""

    names = [("probs", split, f"{stem}.{split}.probs.npz") for split in SPLITS]
    names.append(("weights", None, f"{stem}.weights.npz"))
    return names


@dataclass
class ModelManifest:
    """Health report for one model's artifact directory."""

    model: str
    records: list[ArtifactRecord] = field(default_factory=list)
    greedy: dict[str, list[str]] = field(default_factory=dict)  # greedy-k -> stems
    unexpected: list[str] = field(default_factory=list)  # files not in the roster

    def by_status(self, status: str) -> list[ArtifactRecord]:
        return [r for r in self.records if r.status.status == status]

    @property
    def n_valid(self) -> int:
        return len(self.by_status(VALID))

    @property
    def n_corrupt(self) -> int:
        return len(self.by_status(CORRUPT))

    @property
    def n_missing(self) -> int:
        return len(self.by_status(MISSING))

    @property
    def n_salvaged(self) -> int:
        return len(self.by_status(SALVAGED))

    def usable_stems(self, *, splits: Iterable[str] = SPLITS) -> list[str]:
        """Stems whose probs artifacts are valid for *all* requested splits."""

        wanted = tuple(splits)
        ok: dict[str, set[str]] = {}
        for r in self.records:
            if r.kind == "probs" and r.ok and r.split is not None:
                ok.setdefault(r.stem, set()).add(r.split)
        return sorted(s for s, got in ok.items() if all(w in got for w in wanted))

    def present_stems(self) -> list[str]:
        """Stems with at least one file on disk (valid *or* corrupt).

        This is the honest planning set for the ensemble runtime: a stem
        whose artifacts exist but are corrupt must be attempted (and then
        reported quarantined/missing), not silently dropped from the plan.
        """

        return sorted({r.stem for r in self.records if r.status.status != MISSING})

    def quarantined(self) -> list[ArtifactRecord]:
        return self.by_status(CORRUPT)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "valid": self.n_valid,
            "corrupt": self.n_corrupt,
            "missing": self.n_missing,
            "salvaged": self.n_salvaged,
            "usable_stems": self.usable_stems(),
            "greedy": self.greedy,
            "unexpected": self.unexpected,
            "records": [
                {
                    "stem": r.stem,
                    "kind": r.kind,
                    "split": r.split,
                    "file": r.filename,
                    "status": r.status.status,
                    "reason": r.status.reason,
                }
                for r in self.records
            ],
        }


@dataclass
class CacheManifest:
    """Health report across every model directory in a cache root."""

    root: str
    models: dict[str, ModelManifest] = field(default_factory=dict)

    @property
    def n_valid(self) -> int:
        return sum(m.n_valid for m in self.models.values())

    @property
    def n_corrupt(self) -> int:
        return sum(m.n_corrupt for m in self.models.values())

    @property
    def n_missing(self) -> int:
        return sum(m.n_missing for m in self.models.values())

    @property
    def n_salvaged(self) -> int:
        return sum(m.n_salvaged for m in self.models.values())

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "totals": {
                "valid": self.n_valid,
                "corrupt": self.n_corrupt,
                "missing": self.n_missing,
                "salvaged": self.n_salvaged,
            },
            "models": {name: m.to_dict() for name, m in sorted(self.models.items())},
        }
