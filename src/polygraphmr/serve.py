"""Async inference serving gateway: the ensemble runtime behind a socket.

The batch campaign machinery answers "how reliable is this ensemble?";
this module answers requests.  A :class:`ServeGateway` accepts concurrent
classification requests over a newline-delimited-JSON protocol (TCP and/or
Unix socket), coalesces them into micro-batches, and executes each batch
through the same ensemble-runtime math the campaigns use — assemble a
stacked probability tensor, aggregate, run the decision module — served out
of a warm, verified-once :class:`~polygraphmr.cache.ArtifactCache`
(optionally backed by a pre-published
:class:`~polygraphmr.cache.SharedMemoryPlane`).

**Protocol.**  One JSON object per ``\\n``-terminated line, at most
``MAX_FRAME_BYTES`` per frame::

    {"id": "r1", "model": "tinynet", "samples": [0, 5, 9], "deadline_ms": 250}

The response mirrors the request ``id`` and carries an ``outcome``:
``ok``, ``degraded`` (served by fewer members than planned), ``overloaded``
(shed at the queue bound), ``deadline_exceeded``, or ``error`` (with the
exact offending field path, :class:`~polygraphmr.errors.ConfigError` style).
``{"op": "ping"}`` and ``{"op": "metrics"}`` are answered inline and are
never queued or counted as classifications.

**Micro-batch coalescing.**  A single dispatcher drains a *bounded* queue;
after the first request of a batch it waits briefly for companions, then
groups the batch by model, concatenates every request's sample indices, and
evaluates them in one tensor op.  Every statistic on the serving path
(member-mean probabilities, argmax predictions,
:func:`~polygraphmr.decision.ensemble_features`, the fitted logistic
decision module) is a per-sample computation, so slicing the coalesced
result back per request is **byte-identical** to running each request
alone — the differential guarantee ``tests/test_serve.py`` enforces.

**Load shedding and degradation.**  Past ``max_queue`` pending requests the
gateway replies ``overloaded`` immediately — the queue never grows beyond
its bound.  Above ``degrade_depth`` pending requests, each served batch
records a *failure* on the per-submodel circuit breakers of the sheddable
(non-core) ensemble members; after ``failure_threshold`` consecutive
overloaded batches those breakers trip open and subsequent batches run with
fewer members (``degraded`` responses, metrics-visible).  Cool-downs are
counted in batches (one board tick per batch); a half-open breaker re-admits
its member as a probe, and a calm queue closes it again.  A breaker opened
by corrupt artifacts produces the same ``degraded`` responses — overload and
corruption share one shedding mechanism.

**Deadline budgets.**  ``deadline_ms`` rides the
:class:`~polygraphmr.errors.RetryPolicy` sleep-budget machinery: the
dispatcher's coalescing waits are a ``RetryPolicy`` schedule whose
``max_total_sleep`` is the scarcest remaining budget in the batch, and a
request whose budget is exhausted by the time its batch executes is answered
``deadline_exceeded`` instead of evaluated.

**Multi-process execution plane.**  ``workers=N`` (CLI
``--serve-workers``) forks a :class:`WorkerPool` of stateless evaluator
processes that inherit the pre-warmed sessions and the already-sealed
shared-memory plane.  The dispatcher remains authoritative for *all*
policy — :meth:`ServeGateway._plan_batch` ticks the breaker board, decides
the ``active``/``shed`` member split, and records pressure synchronously in
dispatch order — while workers receive only ``(model, active_members,
flat_sample_indices)`` and return raw arrays the parent slices and encodes
itself, so pooled responses are byte-identical to the in-process path.  A
crashed worker is respawned and its batch transparently re-evaluated
in-process (``serve_pool_fallback_total{reason}``); worker metrics shards
and spans are merged into the parent registry on drain.

Latency quantiles (``serve_request_seconds``), queue depth, and
shed/degraded/deadline-exceeded counters flow through
:mod:`polygraphmr.metrics` and export as JSON + Prometheus on drain.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import math
import multiprocessing as mp
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .breaker import BreakerBoard, BreakerPolicy
from .cache import DEFAULT_CACHE_BYTES, ArtifactCache, SharedMemoryPlane
from .decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from .ensemble import EnsembleRuntime
from .errors import ConfigError, DegradedEnsemble, RetryPolicy, ServeError
from .metrics import BATCH_SIZE_BUCKETS, MetricsRegistry, get_registry, set_registry
from .store import ArtifactStore
from .tracing import Tracer, get_tracer, set_tracer

__all__ = [
    "MAX_FRAME_BYTES",
    "OUTCOMES",
    "OUTCOME_OK",
    "OUTCOME_DEGRADED",
    "OUTCOME_OVERLOADED",
    "OUTCOME_DEADLINE",
    "OUTCOME_ERROR",
    "FALLBACK_NO_WORKERS",
    "FALLBACK_WORKER_CRASH",
    "FALLBACK_WORKER_ERROR",
    "ServeRequest",
    "parse_request",
    "request_frame",
    "response_frame",
    "flat_sample_indices",
    "FrameAssembler",
    "ModelSession",
    "PolygraphService",
    "PoolFallback",
    "WorkerPool",
    "ServeConfig",
    "ServeGateway",
    "coalesce_slices",
    "main",
]

MAX_FRAME_BYTES = 1 << 20
MAX_SAMPLES_PER_REQUEST = 4096
MAX_ID_CHARS = 200

OP_CLASSIFY = "classify"
OP_PING = "ping"
OP_METRICS = "metrics"
_OPS = (OP_CLASSIFY, OP_PING, OP_METRICS)

OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_OVERLOADED = "overloaded"
OUTCOME_DEADLINE = "deadline_exceeded"
OUTCOME_ERROR = "error"
OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_OVERLOADED, OUTCOME_DEADLINE, OUTCOME_ERROR)

# shed reasons reported per excluded member
SHED_LOAD = "load-shed"

_REQUEST_FIELDS = ("id", "model", "samples", "deadline_ms", "op")


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeRequest:
    """One parsed request frame.  ``samples`` are test-split row indices."""

    id: str = ""
    model: str = ""
    samples: tuple[int, ...] = ()
    deadline_ms: float | None = None
    op: str = OP_CLASSIFY

    def to_wire(self) -> dict:
        """Minimal wire mapping; :func:`parse_request` of it is a fixed point."""

        if self.op != OP_CLASSIFY:
            out: dict = {"op": self.op}
            if self.id:
                out["id"] = self.id
            return out
        out = {"id": self.id, "model": self.model, "samples": list(self.samples)}
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out


def _frame_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def request_frame(request: ServeRequest) -> bytes:
    """Serialize a request as one wire frame (canonical JSON + newline)."""

    return _frame_bytes(request.to_wire())


def response_frame(payload: dict) -> bytes:
    """Serialize a response payload as one wire frame.

    Canonical (sorted-key, minimal-separator) JSON: a response's bytes are a
    pure function of its payload, which is what makes the serial≡coalesced
    differential checks byte-exact rather than merely value-exact.
    """

    return _frame_bytes(payload)


def _bad(field_path: str, reason: str, detail: str = "") -> ConfigError:
    return ConfigError(field_path, reason, detail)


def parse_request(line: bytes | str) -> ServeRequest:
    """Parse one frame; rejects with the exact offending field path.

    Raises :class:`~polygraphmr.errors.ConfigError` whose ``field`` names the
    precise location (``request.samples[3]``, ``request.deadline_ms``, …), in
    the same style as scenario-file validation.
    """

    if isinstance(line, (bytes, bytearray)):
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _bad("request", "bad-utf8", str(exc)) from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _bad("request", "bad-json", str(exc)) from exc
    if not isinstance(obj, dict):
        raise _bad("request", "not-an-object", f"got {type(obj).__name__}")
    for key in obj:
        if key not in _REQUEST_FIELDS:
            raise _bad(f"request.{key}", "unknown-field")

    op = obj.get("op", OP_CLASSIFY)
    if not isinstance(op, str) or op not in _OPS:
        raise _bad("request.op", "unknown-op", f"expected one of {_OPS}")

    rid = obj.get("id", "")
    if not isinstance(rid, str):
        raise _bad("request.id", "bad-type", "id must be a string")
    if len(rid) > MAX_ID_CHARS:
        raise _bad("request.id", "too-long", f"max {MAX_ID_CHARS} characters")

    if op != OP_CLASSIFY:
        for key in ("model", "samples", "deadline_ms"):
            if key in obj:
                raise _bad(f"request.{key}", "unexpected-field", f"not valid on op={op!r}")
        return ServeRequest(id=rid, op=op)

    if "id" not in obj:
        raise _bad("request.id", "missing-field")
    if not rid:
        raise _bad("request.id", "empty")

    model = obj.get("model")
    if model is None:
        raise _bad("request.model", "missing-field")
    if not isinstance(model, str) or not model:
        raise _bad("request.model", "bad-type", "model must be a non-empty string")

    samples = obj.get("samples")
    if samples is None:
        raise _bad("request.samples", "missing-field")
    if not isinstance(samples, list) or not samples:
        raise _bad("request.samples", "bad-type", "samples must be a non-empty list")
    if len(samples) > MAX_SAMPLES_PER_REQUEST:
        raise _bad("request.samples", "too-many", f"max {MAX_SAMPLES_PER_REQUEST} per request")
    indices = []
    for i, value in enumerate(samples):
        if isinstance(value, bool) or not isinstance(value, int):
            raise _bad(f"request.samples[{i}]", "bad-type", "sample index must be an integer")
        if value < 0:
            raise _bad(f"request.samples[{i}]", "out-of-range", "sample index must be >= 0")
        indices.append(value)

    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise _bad("request.deadline_ms", "bad-type", "deadline_ms must be a number")
        if not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise _bad("request.deadline_ms", "out-of-range", "deadline_ms must be finite and > 0")
        deadline_ms = float(deadline_ms)

    return ServeRequest(id=rid, model=model, samples=tuple(indices), deadline_ms=deadline_ms)


class FrameAssembler:
    """Reassembles newline-delimited frames across arbitrary chunk splits.

    Feed raw socket chunks in, get complete frames (without the trailing
    newline) out; a partial tail is buffered until its newline arrives.  A
    frame longer than ``max_frame_bytes`` raises
    :class:`~polygraphmr.errors.ServeError` (``frame-too-large``) — the
    connection is poisoned, since frame boundaries can no longer be trusted.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break
            frames.append(bytes(self._buffer[:newline]))
            del self._buffer[: newline + 1]
        if len(self._buffer) > self.max_frame_bytes:
            raise ServeError("frame-too-large", f"unterminated frame exceeds {self.max_frame_bytes} bytes")
        return frames


# ---------------------------------------------------------------------------
# service core (transport-independent)
# ---------------------------------------------------------------------------


def flat_sample_indices(requests: list[ServeRequest]) -> np.ndarray:
    """Concatenated sample indices across ``requests`` — the flat batch that
    one tensor op (in-process or shipped to a pool worker) evaluates."""

    return np.array([idx for r in requests for idx in r.samples], dtype=np.int64)


@dataclass
class ModelSession:
    """Warm, fitted serving state for one (model, member-subset) pair.

    Assembled once — stacks live in memory (backed by the artifact cache /
    shared-memory plane underneath), the decision module is fitted on the
    ``val`` split exactly as the campaign runtime fits it — then every
    request against this member set is pure numpy on the resident tensors.
    """

    model: str
    members: list[str]
    val_stack: np.ndarray  # (M, N_val, C)
    test_stack: np.ndarray  # (M, N_test, C)
    module: LogisticDecisionModule | None
    missing: list[str]
    quarantined: dict[str, str]

    @property
    def n_samples(self) -> int:
        return int(self.test_stack.shape[1])

    @property
    def n_classes(self) -> int:
        return int(self.test_stack.shape[2])

    def evaluate(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mean probs, ensemble predictions, and decision flags for ``indices``.

        Per-sample math throughout (member-mean, argmax, features, logistic
        predict with frozen standardisation stats), so evaluating a
        concatenation and slicing equals evaluating each slice directly —
        bit for bit.
        """

        sub = self.test_stack[:, indices, :]  # (M, k, C)
        probs = sub.mean(axis=0)
        predictions = probs.argmax(axis=1)
        if self.module is not None:
            flags = self.module.predict(ensemble_features(sub))
        else:
            flags = np.zeros(len(indices), dtype=np.int64)
        return probs, predictions, flags


class PolygraphService:
    """The gateway's compute core: sessions, breakers, and request payloads.

    Deliberately synchronous and transport-free — the asyncio gateway calls
    into it from the dispatcher, and tests drive it directly to build serial
    reference responses for the differential suite.
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        min_members: int = 2,
        keep_members: int | None = None,
        seed: int = 0,
        breakers: BreakerBoard | None = None,
    ):
        self.store = store
        self.min_members = min_members
        # members beyond the first ``keep_members`` are sheddable under load;
        # ORG and enough companions to stay above min_members never shed
        self.keep_members = max(min_members, keep_members if keep_members is not None else min_members)
        self.seed = seed
        self.board = breakers if breakers is not None else BreakerBoard(BreakerPolicy())
        self.runtime = EnsembleRuntime(store, min_members=min_members, seed=seed, breakers=self.board)
        self._base: dict[str, ModelSession] = {}
        self._derived: dict[tuple[str, tuple[str, ...]], ModelSession] = {}
        self._stanzas: dict[tuple[str, tuple[str, ...], tuple[str, ...]], dict] = {}

    # -- sessions --------------------------------------------------------

    def base_session(self, model: str) -> ModelSession:
        """The full-ensemble session for ``model``, built on first use.

        Mirrors ``EnsembleRuntime._run_model_inner``'s assembly: members are
        the intersection of the val/test survivors so the feature layout is
        identical at fit and serve time; corrupt members quarantine (and
        feed their breakers) rather than crash.
        """

        session = self._base.get(model)
        if session is not None:
            return session
        if not self.store.model_dir(model).is_dir():
            raise ServeError("unknown-model", f"no model directory {model!r} in {self.store.root}")
        plan = self.runtime.member_plan(model)
        val = self.runtime.assemble(model, "val", members=plan)
        test = self.runtime.assemble(model, "test", members=plan)
        common = [s for s in val.members if s in set(test.members)]
        if len(common) < self.min_members:
            raise DegradedEnsemble(model, common, self.min_members)
        val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
        test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)
        quarantined = {**val.quarantined, **test.quarantined}
        missing = sorted(s for s in plan if s not in common and s not in quarantined)
        session = ModelSession(
            model=model,
            members=common,
            val_stack=val_stack,
            test_stack=test_stack,
            module=self._fit(model, common, val_stack),
            missing=missing,
            quarantined=quarantined,
        )
        self._base[model] = session
        get_registry().counter("serve_sessions_built_total", kind="base").inc()
        return session

    def _fit(self, model: str, members: list[str], val_stack: np.ndarray) -> LogisticDecisionModule | None:
        val_labels = self.store.load_labels(model, "val")
        if val_labels is None or "ORG" not in members or len(val_labels) != val_stack.shape[1]:
            return None
        module = LogisticDecisionModule(seed=self.seed)
        org_val = val_stack[members.index("ORG")]
        module.fit(ensemble_features(val_stack), misprediction_targets(org_val, val_labels))
        return module

    def session_for(self, model: str, members: tuple[str, ...]) -> ModelSession:
        """A session restricted to ``members`` (a subset of the base session's,
        in base order) — derived by slicing the resident stacks and refitting
        the decision module on the narrower feature layout.  Cached: the
        shed/recover cycle alternates between a handful of subsets."""

        base = self.base_session(model)
        if list(members) == base.members:
            return base
        key = (model, members)
        session = self._derived.get(key)
        if session is not None:
            return session
        rows = [base.members.index(s) for s in members]
        val_stack = base.val_stack[rows]
        test_stack = base.test_stack[rows]
        session = ModelSession(
            model=model,
            members=list(members),
            val_stack=val_stack,
            test_stack=test_stack,
            module=self._fit(model, list(members), val_stack),
            missing=base.missing,
            quarantined=base.quarantined,
        )
        self._derived[key] = session
        get_registry().counter("serve_sessions_built_total", kind="derived").inc()
        return session

    # -- breaker-driven member selection ---------------------------------

    def active_members(self, model: str) -> tuple[list[str], list[str]]:
        """(active, shed) member stems for the next batch of ``model``.

        Core members (the first ``keep_members`` of the base session) always
        serve; each sheddable member serves only while its breaker admits it.
        ``allow`` also flips an open breaker to half-open once its cool-down
        (in batches) has elapsed, re-admitting the member as a probe.
        """

        base = self.base_session(model)
        active: list[str] = []
        shed: list[str] = []
        for i, stem in enumerate(base.members):
            if i < self.keep_members or self.board.allow(model, stem):
                active.append(stem)
            else:
                shed.append(stem)
        return active, shed

    def record_pressure(self, model: str, active: list[str], overloaded: bool) -> None:
        """Feed this batch's overload verdict to the sheddable breakers.

        An overloaded batch is a *failure* for every sheddable member that
        served it (consecutive failures trip the breaker open — hysteresis
        for free); a calm batch is a success (closes half-open probes,
        resets failure streaks).
        """

        base = self.base_session(model)
        for stem in base.members[self.keep_members :]:
            if stem not in active:
                continue
            if overloaded:
                self.board.record_failure(model, stem)
            else:
                self.board.record_success(model, stem)

    # -- evaluation ------------------------------------------------------

    def check_samples(self, model: str, request: ServeRequest) -> None:
        """Range-check sample indices against the model's test split.

        One vectorized comparison over the whole request instead of a Python
        loop per index; the error still names the exact offending field path
        (``request.samples[i]`` for the *first* out-of-range index, matching
        what the per-index loop reported).
        """

        n = self.base_session(model).n_samples
        samples = np.fromiter(request.samples, dtype=np.int64, count=len(request.samples))
        bad = np.nonzero(samples >= n)[0]
        if bad.size:
            i = int(bad[0])
            raise _bad(f"request.samples[{i}]", "out-of-range", f"model {model!r} has {n} test samples")

    def static_stanza(self, model: str, active: list[str], shed: list[str]) -> dict:
        """The response fields that are constant across every payload of a
        ``(model, active, shed)`` combination — members, degraded verdict,
        missing/quarantined rosters.  Cached and shared by reference: the
        shed/recover cycle alternates between a handful of member subsets,
        and re-building (and re-serialising state into) these lists per
        request is pure overhead on the hot path.  Callers must treat the
        returned mapping and its values as frozen."""

        key = (model, tuple(active), tuple(shed))
        stanza = self._stanzas.get(key)
        if stanza is None:
            base = self.base_session(model)
            degraded = bool(shed or base.missing or base.quarantined)
            stanza = {
                "outcome": OUTCOME_DEGRADED if degraded else OUTCOME_OK,
                "model": model,
                "members": list(active),
                "degraded": degraded,
                "shed": sorted(shed),
                "missing": list(base.missing),
                "quarantined": dict(base.quarantined),
            }
            self._stanzas[key] = stanza
        return stanza

    def build_payloads(
        self,
        model: str,
        requests: list[ServeRequest],
        counts: list[int],
        probs: np.ndarray,
        predictions: np.ndarray,
        flags: np.ndarray,
        *,
        active: list[str],
        shed: list[str],
        breaker_states: dict,
    ) -> list[dict]:
        """Slice raw evaluation arrays back into per-request payloads.

        Pure assembly — no policy, no board reads: everything dynamic
        (``active``/``shed``/``breaker_states``) is decided by the caller
        and passed in, which is what lets pooled workers return raw arrays
        while the dispatcher stays authoritative.  ``ndarray.tolist()`` does
        the number conversion in one C call per array (bit-identical to the
        old per-element ``float()``/``int()`` loops — enforced by a
        regression test), and the static stanza is shared by reference
        across payloads.
        """

        stanza = self.static_stanza(model, active, shed)
        probs_list = probs.tolist()
        predictions_list = predictions.tolist()
        flags_list = flags.tolist()
        payloads = []
        offset = 0
        for request, count in zip(requests, counts):
            span = slice(offset, offset + count)
            offset += count
            payloads.append(
                {
                    "id": request.id,
                    **stanza,
                    "probs": probs_list[span],
                    "predictions": predictions_list[span],
                    "flags": flags_list[span],
                    "breakers": breaker_states,
                }
            )
        return payloads

    def evaluate_requests(
        self,
        model: str,
        requests: list[ServeRequest],
        *,
        active: list[str] | None = None,
        shed: list[str] | None = None,
        breaker_states: dict | None = None,
    ) -> list[dict]:
        """Response payloads for same-model requests, evaluated as one tensor op.

        All requests' sample indices are concatenated, evaluated once, and
        sliced back per request — byte-identical to evaluating each request
        alone because every statistic involved is per-sample.  This is the
        in-process composite the worker pool decomposes: policy inputs in,
        :meth:`ModelSession.evaluate`, :meth:`build_payloads` out.
        """

        base = self.base_session(model)
        if active is None:
            active = list(base.members)
        shed = list(shed or [])
        session = self.session_for(model, tuple(active))
        counts = [len(r.samples) for r in requests]
        flat = flat_sample_indices(requests)
        probs, predictions, flags = session.evaluate(flat)
        if breaker_states is None:
            breaker_states = self.board.states_for(model)
        return self.build_payloads(
            model,
            requests,
            counts,
            probs,
            predictions,
            flags,
            active=active,
            shed=shed,
            breaker_states=breaker_states,
        )

    def respond(self, request: ServeRequest) -> dict:
        """The serial reference path: one request, straight through.

        The gateway's coalesced path must produce byte-identical frames to
        this (given the same board state and no overload) — the differential
        tests compare against it directly.
        """

        try:
            self.base_session(request.model)
            self.check_samples(request.model, request)
            active, shed = self.active_members(request.model)
            return self.evaluate_requests(request.model, [request], active=active, shed=shed)[0]
        except (ServeError, ConfigError, DegradedEnsemble) as exc:
            return error_payload(request.id, exc)


def error_payload(rid: str, exc: BaseException) -> dict:
    """An ``outcome=error`` response payload for a rejected request."""

    error: dict = {"reason": getattr(exc, "reason", type(exc).__name__), "detail": str(exc)}
    if isinstance(exc, ConfigError):
        error["field"] = exc.field
        error["detail"] = exc.detail
    if isinstance(exc, DegradedEnsemble):
        error["reason"] = "degraded-below-minimum"
    return {"id": rid, "outcome": OUTCOME_ERROR, "error": error}


# ---------------------------------------------------------------------------
# worker pool (multi-process execution plane)
# ---------------------------------------------------------------------------

# control-pipe verbs, parent -> worker
POOL_EVAL = "eval"
POOL_DRAIN = "drain"

# reasons a pooled batch fell back to in-process evaluation
FALLBACK_NO_WORKERS = "no-workers"
FALLBACK_WORKER_CRASH = "worker-crash"
FALLBACK_WORKER_ERROR = "worker-error"


class PoolFallback(Exception):
    """A pooled evaluation could not be completed by any worker.

    Raised by :meth:`WorkerPool.evaluate`; the dispatcher catches it, counts
    ``serve_pool_fallback_total{reason}``, and evaluates the batch in-process
    — the request is always answered, and because workers run the exact same
    tensor-op path the fallback response is byte-identical.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason


def _pool_worker_main(worker_id: int, service: PolygraphService, conn) -> None:
    """Body of one forked evaluator process.

    Stateless by contract: every policy decision (coalescing, deadlines,
    shedding, breaker member selection) already happened in the parent —
    a job is ``(model, active_members, flat_sample_indices)`` and the reply
    is the raw evaluation arrays.  The worker never touches a breaker board,
    a queue, or a socket, which is what makes pooled responses byte-identical
    to in-process ones.

    Shutdown: SIGTERM/SIGINT are ignored (the parent's drain owns shutdown
    ordering); the worker exits on ``POOL_DRAIN`` — replying with its
    metrics/tracing shard first — or on pipe EOF if the parent died.
    """

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # fork duplicated the parent's metric and tracing state (locks included);
    # start from fresh objects so the shard carries only this worker's deltas
    # and no lock inherited mid-acquire can wedge the child
    set_registry(MetricsRegistry())
    set_tracer(Tracer())
    registry = get_registry()
    tracer = get_tracer()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        if message[0] == POOL_DRAIN:
            with contextlib.suppress(OSError, BrokenPipeError):
                conn.send(("metrics", registry.to_dict(), tracer.to_dicts()))
            break
        _, model, active, flat = message
        try:
            started = time.perf_counter()
            with tracer.span("serve.worker.evaluate", model=model, samples=len(flat)):
                session = service.session_for(model, tuple(active))
                probs, predictions, flags = session.evaluate(np.asarray(flat, dtype=np.int64))
            registry.counter("serve_worker_batches_total").inc()
            registry.counter("serve_worker_samples_total").inc(len(flat))
            registry.histogram("serve_worker_eval_seconds").observe(time.perf_counter() - started)
            reply = ("ok", probs, predictions, flags)
        except Exception as exc:  # noqa: BLE001 - parent falls back in-process
            reply = ("error", type(exc).__name__, str(exc))
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break
    with contextlib.suppress(OSError):
        conn.close()


@dataclass
class _PoolWorker:
    """One live evaluator: its process, pipe, and a send/recv serializer."""

    slot: int
    process: object
    conn: object
    lock: asyncio.Lock
    alive: bool = True


class WorkerPool:
    """A fixed-size pool of forked evaluator processes behind duplex pipes.

    Workers are forked from the warm parent, so they inherit the built base
    sessions and the (already unlinked) shared-memory plane mapping for
    free — a SIGKILLed worker can never leak ``/dev/shm``.  The pool is a
    pure execution plane: round-robin job placement, per-worker pipes, crash
    detection via pipe EOF, respawn-in-place, and a drain handshake that
    ships each worker's metrics/tracing shard back for an exact merge
    (the pipe-borne twin of the campaign's ``metrics.wNN.json`` merge).
    """

    def __init__(self, service: PolygraphService, size: int):
        if size <= 0:
            raise ValueError(f"pool size must be positive; got {size}")
        self.service = service
        self.size = size
        self._ctx = mp.get_context("fork")
        self._workers: list[_PoolWorker] = []
        self._rr = 0
        self._draining = False

    def start(self) -> None:
        self._workers = [self._spawn(slot) for slot in range(self.size)]

    def _spawn(self, slot: int) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(slot, self.service, child_conn),
            name=f"pgmr-serve-w{slot:02d}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _PoolWorker(slot=slot, process=process, conn=parent_conn, lock=asyncio.Lock())

    @property
    def pids(self) -> list[int]:
        """PIDs of the currently live workers (ready-line / test surface)."""

        return [int(w.process.pid) for w in self._workers if w.alive]

    def _pick(self) -> _PoolWorker | None:
        alive = [w for w in self._workers if w.alive]
        if not alive:
            return None
        worker = alive[self._rr % len(alive)]
        self._rr += 1
        return worker

    def _bury(self, worker: _PoolWorker) -> None:
        """Retire a crashed worker and respawn its slot.

        ``serve_worker_restarts_total`` counts the respawns; during drain the
        slot stays empty instead (no point forking into a shutdown).
        """

        if not worker.alive:
            return
        worker.alive = False
        with contextlib.suppress(OSError):
            worker.conn.close()
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        if not self._draining:
            get_registry().counter("serve_worker_restarts_total").inc()
            self._workers[worker.slot] = self._spawn(worker.slot)

    async def evaluate(
        self, model: str, active: list[str], flat: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Ship one evaluation job to a worker; raw arrays back.

        Pipe I/O runs on executor threads so the event loop keeps serving
        while a worker computes.  A dead pipe (worker SIGKILLed mid-batch)
        buries and respawns the worker and raises :class:`PoolFallback` —
        the caller re-evaluates in-process, so the batch is still answered.
        """

        worker = self._pick()
        if worker is None:
            raise PoolFallback(FALLBACK_NO_WORKERS, "no live pool workers")
        loop = asyncio.get_running_loop()
        async with worker.lock:
            try:
                await loop.run_in_executor(None, worker.conn.send, (POOL_EVAL, model, list(active), flat))
                reply = await loop.run_in_executor(None, worker.conn.recv)
            except (EOFError, OSError, BrokenPipeError) as exc:
                self._bury(worker)
                raise PoolFallback(
                    FALLBACK_WORKER_CRASH, f"worker w{worker.slot:02d} pipe failed: {exc!r}"
                ) from exc
        if reply[0] != "ok":
            raise PoolFallback(FALLBACK_WORKER_ERROR, f"worker w{worker.slot:02d}: {reply[1]}: {reply[2]}")
        get_registry().counter("serve_pool_jobs_total", worker=f"w{worker.slot:02d}").inc()
        _, probs, predictions, flags = reply
        return probs, predictions, flags

    async def drain(self) -> int:
        """Stop every worker, folding their observability shards into the
        parent registry/tracer.  Returns the number of shards merged.

        Shards merge in slot order through the same exact-arithmetic path as
        campaign worker shards (counter add, gauge max, bucket add), so the
        exported ``metrics.json`` accounts for every worker's evaluations.
        """

        self._draining = True
        loop = asyncio.get_running_loop()
        shards: list[tuple[int, dict, list[dict]]] = []
        for worker in self._workers:
            if not worker.alive:
                continue
            async with worker.lock:
                try:
                    await loop.run_in_executor(None, worker.conn.send, (POOL_DRAIN,))
                    reply = await asyncio.wait_for(loop.run_in_executor(None, worker.conn.recv), timeout=30.0)
                    if reply[0] == "metrics":
                        shards.append((worker.slot, reply[1], reply[2]))
                except (EOFError, OSError, BrokenPipeError, asyncio.TimeoutError):
                    pass  # a dead worker's shard is lost; drain the rest
            worker.alive = False
            with contextlib.suppress(OSError):
                worker.conn.close()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=5.0)
        registry = get_registry()
        tracer = get_tracer()
        for _slot, metrics_dict, spans in sorted(shards, key=lambda shard: shard[0]):
            registry.merge_dict(metrics_dict)
            tracer.absorb(spans)
        return len(shards)


# ---------------------------------------------------------------------------
# deadline / coalescing budgets
# ---------------------------------------------------------------------------

COALESCE_SLICES = 4  # the coalescing window is polled in this many waits


def coalesce_slices(window_s: float, budget_s: float, *, n: int = COALESCE_SLICES) -> list[float]:
    """The dispatcher's coalescing waits as a ``RetryPolicy`` sleep schedule.

    ``n`` equal slices of the coalescing window, clamped by the batch's
    scarcest remaining deadline budget via ``RetryPolicy.max_total_sleep`` —
    the same machinery that caps retry backoff caps how long a request may
    sit waiting for batch companions.
    """

    if window_s <= 0.0 or budget_s <= 0.0:
        return []
    piece = window_s / n
    policy = RetryPolicy(
        attempts=n + 1, base_delay=piece, max_delay=piece, jitter=0.0, max_total_sleep=budget_s
    )
    return [delay for delay in policy.schedule() if delay > 0.0]


# ---------------------------------------------------------------------------
# asyncio gateway
# ---------------------------------------------------------------------------


@dataclass
class ServeConfig:
    """Gateway knobs.  ``degrade_depth``/``max_queue`` are pending-request
    counts; ``coalesce_ms`` bounds how long the dispatcher waits for batch
    companions; ``batch_sleep_s`` pads each executed batch (bench/smoke use
    it to pin the service rate so overload behaviour is reproducible)."""

    host: str | None = "127.0.0.1"
    port: int = 0
    unix_path: str | None = None
    max_queue: int = 64
    degrade_depth: int = 8
    coalesce_ms: float = 2.0
    batch_max: int = 16
    default_deadline_ms: float | None = None
    batch_sleep_s: float = 0.0
    metrics_out: str | None = None
    prom_out: str | None = None
    # > 0 forks that many evaluator processes (the multi-process execution
    # plane); 0 keeps evaluation in-process on the dispatcher
    workers: int = 0


_STOP = object()


@dataclass
class _Queued:
    request: ServeRequest
    conn: _Connection
    started: float

    def remaining_s(self, now: float, default_deadline_ms: float | None) -> float | None:
        deadline_ms = self.request.deadline_ms
        if deadline_ms is None:
            deadline_ms = default_deadline_ms
        if deadline_ms is None:
            return None
        return deadline_ms / 1000.0 - (now - self.started)


@dataclass
class _BatchPlan:
    """One model group's dispatch-time policy decisions, frozen before the
    batch executes.

    The dispatcher computes everything stateful here — validation verdicts,
    active/shed member selection (with its ``allow()`` probe side effects),
    the breaker-state snapshot, and the pressure recording — *synchronously
    at dispatch*, so pooled batches can execute concurrently without any
    worker ever reading or racing on the board.  Execution downstream is a
    pure function of the plan.
    """

    model: str
    queued: list[_Queued] = field(default_factory=list)
    errors: list[tuple[_Queued, dict]] = field(default_factory=list)
    active: list[str] = field(default_factory=list)
    shed: list[str] = field(default_factory=list)
    breaker_states: dict = field(default_factory=dict)


class _Connection:
    """One client connection: a writer plus a lock so interleaved batch
    completions never tear frames."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send(self, frame: bytes) -> None:
        async with self.lock:
            if self.writer.is_closing():
                return
            self.writer.write(frame)
            with contextlib.suppress(ConnectionError):
                await self.writer.drain()


class ServeGateway:
    """Asyncio front-end: bounded queue, coalescing dispatcher, graceful drain."""

    def __init__(self, service: PolygraphService, config: ServeConfig | None = None):
        self.service = service
        self.config = config or ServeConfig()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._servers: list[asyncio.base_events.Server] = []
        self._dispatcher: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self.bound_port: int | None = None
        self._pool: WorkerPool | None = None
        self._pool_sem: asyncio.Semaphore | None = None
        self._inflight: set[asyncio.Task] = set()

    @property
    def worker_pids(self) -> list[int]:
        """Live pool worker PIDs ([] when serving in-process)."""

        return self._pool.pids if self._pool is not None else []

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self.config.workers > 0:
            # Warm every servable base session *before* forking: workers
            # inherit the fitted sessions (and the sealed shared-memory
            # plane mapping) through fork instead of each rebuilding them.
            # Models that won't serve warm lazily and fail per-request.
            for model in self.service.store.models():
                with contextlib.suppress(ServeError, DegradedEnsemble):
                    self.service.base_session(model)
            self._pool = WorkerPool(self.service, self.config.workers)
            self._pool.start()
            self._pool_sem = asyncio.Semaphore(self.config.workers)
        if self.config.host is not None:
            server = await asyncio.start_server(self._handle, self.config.host, self.config.port)
            self._servers.append(server)
            for sock in server.sockets:
                if self.bound_port is None:
                    self.bound_port = sock.getsockname()[1]
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(self._handle, path=self.config.unix_path)
            self._servers.append(server)
        if not self._servers:
            raise ServeError("no-listener", "gateway needs a TCP host or a unix socket path")
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Graceful SIGTERM semantics: stop accepting, complete everything
        already queued, export metrics, close connections."""

        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        await self.queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
        # pooled batches dispatched as tasks may still be executing: every
        # already-accepted request completes before the pool shuts down
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._pool is not None:
            await self._pool.drain()  # folds worker shards into this registry
        self._export_metrics()
        for task in list(self._handlers):
            task.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        self._drained.set()

    def _export_metrics(self) -> None:
        registry = get_registry()
        if self.config.metrics_out:
            registry.write_json(self.config.metrics_out)
        if self.config.prom_out:
            path = Path(self.config.prom_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(registry.to_prometheus(), encoding="utf-8")

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        conn = _Connection(writer)
        assembler = FrameAssembler()
        try:
            while not self._draining:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = assembler.feed(chunk)
                except ServeError as exc:
                    await conn.send(response_frame(error_payload("", exc)))
                    break
                for frame in frames:
                    if not frame.strip():
                        continue
                    await self._ingest(conn, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _ingest(self, conn: _Connection, frame: bytes) -> None:
        started = time.perf_counter()
        registry = get_registry()
        try:
            request = parse_request(frame)
        except ConfigError as exc:
            rid = _salvage_id(frame)
            await self._finish(conn, error_payload(rid, exc), started)
            return
        if request.op == OP_PING:
            await conn.send(response_frame({"id": request.id, "op": OP_PING, "ok": True}))
            return
        if request.op == OP_METRICS:
            await conn.send(response_frame({"id": request.id, "op": OP_METRICS, **self._metrics_snapshot()}))
            return
        try:
            self.queue.put_nowait(_Queued(request, conn, started))
        except asyncio.QueueFull:
            registry.counter("serve_shed_total").inc()
            payload = {
                "id": request.id,
                "outcome": OUTCOME_OVERLOADED,
                "model": request.model,
                "queue_depth": self.queue.qsize(),
            }
            await self._finish(conn, payload, started)
            return
        registry.gauge("serve_queue_depth").set(float(self.queue.qsize()))

    def _metrics_snapshot(self) -> dict:
        registry = get_registry()
        snapshot = {
            "requests": {outcome: registry.counter_value("serve_requests_total", outcome=outcome) for outcome in OUTCOMES},
            "shed": registry.counter_value("serve_shed_total"),
            "degraded": registry.counter_value("serve_degraded_total"),
            "deadline_exceeded": registry.counter_value("serve_deadline_exceeded_total"),
            "batches": registry.counter_value("serve_batches_total"),
            "queue_depth": self.queue.qsize(),
        }
        if self._pool is not None:
            snapshot["pool"] = {
                "workers": len(self._pool.pids),
                "restarts": registry.counter_value("serve_worker_restarts_total"),
                "fallbacks": {
                    reason: registry.counter_value("serve_pool_fallback_total", reason=reason)
                    for reason in (FALLBACK_NO_WORKERS, FALLBACK_WORKER_CRASH, FALLBACK_WORKER_ERROR)
                },
            }
        return snapshot

    async def _finish(self, conn: _Connection, payload: dict, started: float) -> None:
        """Send a terminal response: the single point that counts outcomes,
        so ``serve_requests_total{outcome}`` reconciles exactly with the
        frames clients receive."""

        registry = get_registry()
        registry.counter("serve_requests_total", outcome=payload["outcome"]).inc()
        registry.histogram("serve_request_seconds").observe(time.perf_counter() - started)
        await conn.send(response_frame(payload))

    # -- dispatcher ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        stopping = False
        while True:
            if stopping:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                item = await self.queue.get()
            if item is _STOP:
                stopping = True
                continue
            batch = [item]
            if stopping:
                while len(batch) < self.config.batch_max:
                    try:
                        extra = self.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _STOP:
                        continue
                    batch.append(extra)
            else:
                stopping = await self._coalesce(batch)
            # Policy runs here, synchronously, in dispatch order — batch N's
            # board mutations are complete before batch N+1 is even planned,
            # whether execution is serial (in-process) or concurrent (pool).
            plans = self._plan_batch(batch)
            if self._pool is None or self._pool_sem is None:
                await self._run_plans(plans)
            else:
                await self._pool_sem.acquire()
                task = asyncio.create_task(self._run_plans(plans))
                self._inflight.add(task)
                task.add_done_callback(self._batch_task_done)

    def _batch_task_done(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        if self._pool_sem is not None:
            self._pool_sem.release()
        if not task.cancelled() and task.exception() is not None:  # pragma: no cover - defensive
            get_registry().counter("serve_batch_task_errors_total").inc()

    def _batch_budget_s(self, batch: list[_Queued], now: float) -> float:
        """The scarcest remaining deadline in the batch (coalescing must not
        eat a request's whole budget), or the full window when nobody is in
        a hurry."""

        window_s = self.config.coalesce_ms / 1000.0
        budget = window_s
        for queued in batch:
            remaining = queued.remaining_s(now, self.config.default_deadline_ms)
            if remaining is not None:
                budget = min(budget, remaining)
        return budget

    async def _coalesce(self, batch: list[_Queued]) -> bool:
        """Wait briefly for batch companions; returns True when _STOP arrived."""

        slices = coalesce_slices(self.config.coalesce_ms / 1000.0, self._batch_budget_s(batch, time.perf_counter()))
        for delay in slices:
            if len(batch) >= self.config.batch_max:
                break
            try:
                item = await asyncio.wait_for(self.queue.get(), timeout=delay)
            except asyncio.TimeoutError:
                break
            if item is _STOP:
                return True
            batch.append(item)
            while len(batch) < self.config.batch_max:
                try:
                    extra = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    return True
                batch.append(extra)
        return False

    async def _execute(self, batch: list[_Queued]) -> None:
        """Plan then run one batch — the serial composite (tests drive it)."""

        await self._run_plans(self._plan_batch(batch))

    def _plan_batch(self, batch: list[_Queued]) -> list[_BatchPlan]:
        """All of a batch's policy, synchronously at dispatch time.

        Groups the batch by model, validates (unknown model / out-of-range
        samples become error payloads in the plan), selects active/shed
        members, snapshots breaker states for the payloads, and records this
        batch's pressure verdict — the complete set of board reads and
        writes, so execution never touches shared policy state and pooled
        batches can overlap freely.
        """

        registry = get_registry()
        depth = self.queue.qsize()
        registry.gauge("serve_queue_depth").set(float(depth))
        overloaded = self.config.degrade_depth > 0 and depth >= self.config.degrade_depth
        registry.counter("serve_batches_total").inc()
        registry.histogram("serve_batch_size", buckets=BATCH_SIZE_BUCKETS).observe(float(len(batch)))
        self.service.board.tick()

        groups: dict[str, list[_Queued]] = {}
        for queued in batch:
            groups.setdefault(queued.request.model, []).append(queued)

        plans: list[_BatchPlan] = []
        for model, queued_group in groups.items():
            plan = _BatchPlan(model)
            plans.append(plan)
            try:
                self.service.base_session(model)
            except (ServeError, DegradedEnsemble) as exc:
                plan.errors = [(q, error_payload(q.request.id, exc)) for q in queued_group]
                continue
            for queued in queued_group:
                try:
                    self.service.check_samples(model, queued.request)
                except ConfigError as exc:
                    plan.errors.append((queued, error_payload(queued.request.id, exc)))
                else:
                    plan.queued.append(queued)
            if not plan.queued:
                continue
            plan.active, plan.shed = self.service.active_members(model)
            plan.breaker_states = self.service.board.states_for(model)
            self.service.record_pressure(model, plan.active, overloaded)
        return plans

    async def _run_plans(self, plans: list[_BatchPlan]) -> None:
        """Execute planned work: sleep-padding, deadline filtering, tensor
        evaluation, response frames.  Touches no policy state, so any number
        of these may be in flight at once in pooled mode."""

        registry = get_registry()
        if self.config.batch_sleep_s > 0.0:
            await asyncio.sleep(self.config.batch_sleep_s)

        now = time.perf_counter()
        for plan in plans:
            live: list[_Queued] = []
            for queued in plan.queued:
                remaining = queued.remaining_s(now, self.config.default_deadline_ms)
                if remaining is not None and remaining <= 0.0:
                    registry.counter("serve_deadline_exceeded_total").inc()
                    payload = {"id": queued.request.id, "outcome": OUTCOME_DEADLINE, "model": plan.model}
                    await self._finish(queued.conn, payload, queued.started)
                else:
                    live.append(queued)
            for queued, payload in plan.errors:
                await self._finish(queued.conn, payload, queued.started)
            if not live:
                continue
            payloads = await self._evaluate_plan(plan, live)
            for queued, payload in zip(live, payloads):
                if payload["outcome"] == OUTCOME_DEGRADED:
                    registry.counter("serve_degraded_total").inc()
                await self._finish(queued.conn, payload, queued.started)

    async def _evaluate_plan(self, plan: _BatchPlan, live: list[_Queued]) -> list[dict]:
        """Evaluate one plan's surviving requests — pooled when a pool is
        up, in-process otherwise, and in-process as the always-correct
        fallback when the pool fails (``serve_pool_fallback_total{reason}``).
        Both paths run the identical tensor-op math on identical policy
        inputs, so the response bytes cannot differ."""

        registry = get_registry()
        requests = [q.request for q in live]
        if self._pool is not None:
            flat = flat_sample_indices(requests)
            try:
                probs, predictions, flags = await self._pool.evaluate(plan.model, plan.active, flat)
            except PoolFallback as exc:
                registry.counter("serve_pool_fallback_total", reason=exc.reason).inc()
            else:
                registry.counter("serve_pool_samples_total").inc(len(flat))
                return self.service.build_payloads(
                    plan.model,
                    requests,
                    [len(r.samples) for r in requests],
                    probs,
                    predictions,
                    flags,
                    active=plan.active,
                    shed=plan.shed,
                    breaker_states=plan.breaker_states,
                )
        return self.service.evaluate_requests(
            plan.model,
            requests,
            active=plan.active,
            shed=plan.shed,
            breaker_states=plan.breaker_states,
        )


def _salvage_id(frame: bytes) -> str:
    """Best-effort request id for error responses to malformed frames."""

    try:
        obj = json.loads(frame.decode("utf-8", errors="replace"))
    except json.JSONDecodeError:
        return ""
    if isinstance(obj, dict) and isinstance(obj.get("id"), str):
        return obj["id"][:MAX_ID_CHARS]
    return ""


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _build_store(args) -> tuple[ArtifactStore, SharedMemoryPlane | None]:
    cache_root = Path(args.cache)
    if args.synthetic_models > 0:
        from .faults import build_synthetic_model

        existing = set(ArtifactStore(cache_root).models()) if cache_root.is_dir() else set()
        for i in range(args.synthetic_models):
            name = f"net-{i:02d}"
            if name not in existing:
                build_synthetic_model(cache_root, name, n_val=96, n_test=96, seed=args.seed + i)
    plane = None
    if not args.no_plane:
        throwaway = ArtifactStore(cache_root)
        plane = SharedMemoryPlane.publish(throwaway, throwaway.models(), max_bytes=args.cache_bytes)
    cache = ArtifactCache(max_bytes=args.cache_bytes, plane=plane)
    return ArtifactStore(cache_root, cache=cache), plane


async def _serve(args) -> int:
    store, plane = _build_store(args)
    board = BreakerBoard(BreakerPolicy(failure_threshold=args.failure_threshold, cooldown_ticks=args.cooldown_ticks))
    service = PolygraphService(
        store,
        min_members=args.min_members,
        keep_members=args.keep_members,
        seed=args.seed,
        breakers=board,
    )
    config = ServeConfig(
        host=None if args.unix else args.host,
        port=args.port,
        unix_path=args.unix,
        max_queue=args.max_queue,
        degrade_depth=args.degrade_depth,
        coalesce_ms=args.coalesce_ms,
        batch_max=args.batch_max,
        default_deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        batch_sleep_s=args.batch_sleep,
        metrics_out=args.metrics_out,
        prom_out=args.prom_out,
        workers=args.serve_workers,
    )
    gateway = ServeGateway(service, config)
    await gateway.start()

    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, shutdown.set)

    ready = {
        "ready": True,
        "models": store.models(),
        "port": gateway.bound_port,
        "unix": args.unix,
        "workers": gateway.worker_pids,
        "plane": plane.describe() if plane is not None else None,
    }
    print(json.dumps(ready, sort_keys=True), flush=True)

    await shutdown.wait()
    await gateway.drain()

    registry = get_registry()
    summary = {
        "drained": True,
        "served": {outcome: registry.counter_value("serve_requests_total", outcome=outcome) for outcome in OUTCOMES},
        "batches": registry.counter_value("serve_batches_total"),
        "shed": registry.counter_value("serve_shed_total"),
        "degraded": registry.counter_value("serve_degraded_total"),
        "deadline_exceeded": registry.counter_value("serve_deadline_exceeded_total"),
    }
    if args.serve_workers > 0:
        # worker shards are already merged (pool drain precedes export)
        summary["pool"] = {
            "workers": args.serve_workers,
            "restarts": registry.counter_value("serve_worker_restarts_total"),
            "worker_batches": registry.counter_value("serve_worker_batches_total"),
            "fallbacks": {
                reason: registry.counter_value("serve_pool_fallback_total", reason=reason)
                for reason in (FALLBACK_NO_WORKERS, FALLBACK_WORKER_CRASH, FALLBACK_WORKER_ERROR)
            },
        }
    print(json.dumps(summary, sort_keys=True), flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="polygraphmr-serve",
        description="Async ensemble inference gateway with load-shedding and deadline budgets",
    )
    parser.add_argument("--cache", required=True, help="artifact cache root to serve from")
    parser.add_argument(
        "--synthetic-models",
        type=int,
        default=0,
        help="build this many synthetic models into --cache first (smoke/bench)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0, help="TCP port; 0 picks a free one (printed on the ready line)")
    parser.add_argument("--unix", default=None, help="serve on this unix socket path instead of TCP")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-members", type=int, default=2)
    parser.add_argument(
        "--keep-members",
        type=int,
        default=None,
        help="members that never shed under load (default: --min-members)",
    )
    parser.add_argument("--max-queue", type=int, default=64, help="pending-request bound; beyond it requests shed")
    parser.add_argument(
        "--degrade-depth",
        type=int,
        default=8,
        help="queue depth at which batches count as overloaded and sheddable members start tripping (0 disables)",
    )
    parser.add_argument("--coalesce-ms", type=float, default=2.0, help="micro-batch coalescing window (milliseconds)")
    parser.add_argument("--batch-max", type=int, default=16, help="max requests per micro-batch")
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="default per-request deadline budget in ms (0 = none unless the request carries one)",
    )
    parser.add_argument(
        "--batch-sleep",
        type=float,
        default=0.0,
        help="pad each executed batch by this many seconds (bench/smoke: pins the service rate)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=0,
        help="fork this many evaluator processes (0 = evaluate in-process on the dispatcher)",
    )
    parser.add_argument("--failure-threshold", type=int, default=3, help="overloaded batches before a member sheds")
    parser.add_argument("--cooldown-ticks", type=int, default=2, help="batches an open breaker waits before probing")
    parser.add_argument("--no-plane", action="store_true", help="skip the shared-memory plane warmup")
    parser.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES)
    parser.add_argument("--metrics-out", default=None, help="write metrics JSON here on drain")
    parser.add_argument("--prom-out", default=None, help="write Prometheus text exposition here on drain")
    args = parser.parse_args(argv)
    if args.keep_members is None:
        args.keep_members = args.min_members
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
