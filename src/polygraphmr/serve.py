"""Async inference serving gateway: the ensemble runtime behind a socket.

The batch campaign machinery answers "how reliable is this ensemble?";
this module answers requests.  A :class:`ServeGateway` accepts concurrent
classification requests over a newline-delimited-JSON protocol (TCP and/or
Unix socket), coalesces them into micro-batches, and executes each batch
through the same ensemble-runtime math the campaigns use — assemble a
stacked probability tensor, aggregate, run the decision module — served out
of a warm, verified-once :class:`~polygraphmr.cache.ArtifactCache`
(optionally backed by a pre-published
:class:`~polygraphmr.cache.SharedMemoryPlane`).

**Protocol.**  One JSON object per ``\\n``-terminated line, at most
``MAX_FRAME_BYTES`` per frame::

    {"id": "r1", "model": "tinynet", "samples": [0, 5, 9], "deadline_ms": 250}

The response mirrors the request ``id`` and carries an ``outcome``:
``ok``, ``degraded`` (served by fewer members than planned), ``overloaded``
(shed at the queue bound), ``deadline_exceeded``, or ``error`` (with the
exact offending field path, :class:`~polygraphmr.errors.ConfigError` style).
``{"op": "ping"}`` and ``{"op": "metrics"}`` are answered inline and are
never queued or counted as classifications.

**Micro-batch coalescing.**  A single dispatcher drains a *bounded* queue;
after the first request of a batch it waits briefly for companions, then
groups the batch by model, concatenates every request's sample indices, and
evaluates them in one tensor op.  Every statistic on the serving path
(member-mean probabilities, argmax predictions,
:func:`~polygraphmr.decision.ensemble_features`, the fitted logistic
decision module) is a per-sample computation, so slicing the coalesced
result back per request is **byte-identical** to running each request
alone — the differential guarantee ``tests/test_serve.py`` enforces.

**Load shedding and degradation.**  Past ``max_queue`` pending requests the
gateway replies ``overloaded`` immediately — the queue never grows beyond
its bound.  Above ``degrade_depth`` pending requests, each served batch
records a *failure* on the per-submodel circuit breakers of the sheddable
(non-core) ensemble members; after ``failure_threshold`` consecutive
overloaded batches those breakers trip open and subsequent batches run with
fewer members (``degraded`` responses, metrics-visible).  Cool-downs are
counted in batches (one board tick per batch); a half-open breaker re-admits
its member as a probe, and a calm queue closes it again.  A breaker opened
by corrupt artifacts produces the same ``degraded`` responses — overload and
corruption share one shedding mechanism.

**Deadline budgets.**  ``deadline_ms`` rides the
:class:`~polygraphmr.errors.RetryPolicy` sleep-budget machinery: the
dispatcher's coalescing waits are a ``RetryPolicy`` schedule whose
``max_total_sleep`` is the scarcest remaining budget in the batch, and a
request whose budget is exhausted by the time its batch executes is answered
``deadline_exceeded`` instead of evaluated.

Latency quantiles (``serve_request_seconds``), queue depth, and
shed/degraded/deadline-exceeded counters flow through
:mod:`polygraphmr.metrics` and export as JSON + Prometheus on drain.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import math
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .breaker import BreakerBoard, BreakerPolicy
from .cache import DEFAULT_CACHE_BYTES, ArtifactCache, SharedMemoryPlane
from .decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from .ensemble import EnsembleRuntime
from .errors import ConfigError, DegradedEnsemble, RetryPolicy, ServeError
from .metrics import BATCH_SIZE_BUCKETS, get_registry
from .store import ArtifactStore

__all__ = [
    "MAX_FRAME_BYTES",
    "OUTCOMES",
    "OUTCOME_OK",
    "OUTCOME_DEGRADED",
    "OUTCOME_OVERLOADED",
    "OUTCOME_DEADLINE",
    "OUTCOME_ERROR",
    "ServeRequest",
    "parse_request",
    "request_frame",
    "response_frame",
    "FrameAssembler",
    "ModelSession",
    "PolygraphService",
    "ServeConfig",
    "ServeGateway",
    "coalesce_slices",
    "main",
]

MAX_FRAME_BYTES = 1 << 20
MAX_SAMPLES_PER_REQUEST = 4096
MAX_ID_CHARS = 200

OP_CLASSIFY = "classify"
OP_PING = "ping"
OP_METRICS = "metrics"
_OPS = (OP_CLASSIFY, OP_PING, OP_METRICS)

OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_OVERLOADED = "overloaded"
OUTCOME_DEADLINE = "deadline_exceeded"
OUTCOME_ERROR = "error"
OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_OVERLOADED, OUTCOME_DEADLINE, OUTCOME_ERROR)

# shed reasons reported per excluded member
SHED_LOAD = "load-shed"

_REQUEST_FIELDS = ("id", "model", "samples", "deadline_ms", "op")


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServeRequest:
    """One parsed request frame.  ``samples`` are test-split row indices."""

    id: str = ""
    model: str = ""
    samples: tuple[int, ...] = ()
    deadline_ms: float | None = None
    op: str = OP_CLASSIFY

    def to_wire(self) -> dict:
        """Minimal wire mapping; :func:`parse_request` of it is a fixed point."""

        if self.op != OP_CLASSIFY:
            out: dict = {"op": self.op}
            if self.id:
                out["id"] = self.id
            return out
        out = {"id": self.id, "model": self.model, "samples": list(self.samples)}
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out


def _frame_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def request_frame(request: ServeRequest) -> bytes:
    """Serialize a request as one wire frame (canonical JSON + newline)."""

    return _frame_bytes(request.to_wire())


def response_frame(payload: dict) -> bytes:
    """Serialize a response payload as one wire frame.

    Canonical (sorted-key, minimal-separator) JSON: a response's bytes are a
    pure function of its payload, which is what makes the serial≡coalesced
    differential checks byte-exact rather than merely value-exact.
    """

    return _frame_bytes(payload)


def _bad(field_path: str, reason: str, detail: str = "") -> ConfigError:
    return ConfigError(field_path, reason, detail)


def parse_request(line: bytes | str) -> ServeRequest:
    """Parse one frame; rejects with the exact offending field path.

    Raises :class:`~polygraphmr.errors.ConfigError` whose ``field`` names the
    precise location (``request.samples[3]``, ``request.deadline_ms``, …), in
    the same style as scenario-file validation.
    """

    if isinstance(line, (bytes, bytearray)):
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _bad("request", "bad-utf8", str(exc)) from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise _bad("request", "bad-json", str(exc)) from exc
    if not isinstance(obj, dict):
        raise _bad("request", "not-an-object", f"got {type(obj).__name__}")
    for key in obj:
        if key not in _REQUEST_FIELDS:
            raise _bad(f"request.{key}", "unknown-field")

    op = obj.get("op", OP_CLASSIFY)
    if not isinstance(op, str) or op not in _OPS:
        raise _bad("request.op", "unknown-op", f"expected one of {_OPS}")

    rid = obj.get("id", "")
    if not isinstance(rid, str):
        raise _bad("request.id", "bad-type", "id must be a string")
    if len(rid) > MAX_ID_CHARS:
        raise _bad("request.id", "too-long", f"max {MAX_ID_CHARS} characters")

    if op != OP_CLASSIFY:
        for key in ("model", "samples", "deadline_ms"):
            if key in obj:
                raise _bad(f"request.{key}", "unexpected-field", f"not valid on op={op!r}")
        return ServeRequest(id=rid, op=op)

    if "id" not in obj:
        raise _bad("request.id", "missing-field")
    if not rid:
        raise _bad("request.id", "empty")

    model = obj.get("model")
    if model is None:
        raise _bad("request.model", "missing-field")
    if not isinstance(model, str) or not model:
        raise _bad("request.model", "bad-type", "model must be a non-empty string")

    samples = obj.get("samples")
    if samples is None:
        raise _bad("request.samples", "missing-field")
    if not isinstance(samples, list) or not samples:
        raise _bad("request.samples", "bad-type", "samples must be a non-empty list")
    if len(samples) > MAX_SAMPLES_PER_REQUEST:
        raise _bad("request.samples", "too-many", f"max {MAX_SAMPLES_PER_REQUEST} per request")
    indices = []
    for i, value in enumerate(samples):
        if isinstance(value, bool) or not isinstance(value, int):
            raise _bad(f"request.samples[{i}]", "bad-type", "sample index must be an integer")
        if value < 0:
            raise _bad(f"request.samples[{i}]", "out-of-range", "sample index must be >= 0")
        indices.append(value)

    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise _bad("request.deadline_ms", "bad-type", "deadline_ms must be a number")
        if not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise _bad("request.deadline_ms", "out-of-range", "deadline_ms must be finite and > 0")
        deadline_ms = float(deadline_ms)

    return ServeRequest(id=rid, model=model, samples=tuple(indices), deadline_ms=deadline_ms)


class FrameAssembler:
    """Reassembles newline-delimited frames across arbitrary chunk splits.

    Feed raw socket chunks in, get complete frames (without the trailing
    newline) out; a partial tail is buffered until its newline arrives.  A
    frame longer than ``max_frame_bytes`` raises
    :class:`~polygraphmr.errors.ServeError` (``frame-too-large``) — the
    connection is poisoned, since frame boundaries can no longer be trusted.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                break
            frames.append(bytes(self._buffer[:newline]))
            del self._buffer[: newline + 1]
        if len(self._buffer) > self.max_frame_bytes:
            raise ServeError("frame-too-large", f"unterminated frame exceeds {self.max_frame_bytes} bytes")
        return frames


# ---------------------------------------------------------------------------
# service core (transport-independent)
# ---------------------------------------------------------------------------


@dataclass
class ModelSession:
    """Warm, fitted serving state for one (model, member-subset) pair.

    Assembled once — stacks live in memory (backed by the artifact cache /
    shared-memory plane underneath), the decision module is fitted on the
    ``val`` split exactly as the campaign runtime fits it — then every
    request against this member set is pure numpy on the resident tensors.
    """

    model: str
    members: list[str]
    val_stack: np.ndarray  # (M, N_val, C)
    test_stack: np.ndarray  # (M, N_test, C)
    module: LogisticDecisionModule | None
    missing: list[str]
    quarantined: dict[str, str]

    @property
    def n_samples(self) -> int:
        return int(self.test_stack.shape[1])

    @property
    def n_classes(self) -> int:
        return int(self.test_stack.shape[2])

    def evaluate(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mean probs, ensemble predictions, and decision flags for ``indices``.

        Per-sample math throughout (member-mean, argmax, features, logistic
        predict with frozen standardisation stats), so evaluating a
        concatenation and slicing equals evaluating each slice directly —
        bit for bit.
        """

        sub = self.test_stack[:, indices, :]  # (M, k, C)
        probs = sub.mean(axis=0)
        predictions = probs.argmax(axis=1)
        if self.module is not None:
            flags = self.module.predict(ensemble_features(sub))
        else:
            flags = np.zeros(len(indices), dtype=np.int64)
        return probs, predictions, flags


class PolygraphService:
    """The gateway's compute core: sessions, breakers, and request payloads.

    Deliberately synchronous and transport-free — the asyncio gateway calls
    into it from the dispatcher, and tests drive it directly to build serial
    reference responses for the differential suite.
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        min_members: int = 2,
        keep_members: int | None = None,
        seed: int = 0,
        breakers: BreakerBoard | None = None,
    ):
        self.store = store
        self.min_members = min_members
        # members beyond the first ``keep_members`` are sheddable under load;
        # ORG and enough companions to stay above min_members never shed
        self.keep_members = max(min_members, keep_members if keep_members is not None else min_members)
        self.seed = seed
        self.board = breakers if breakers is not None else BreakerBoard(BreakerPolicy())
        self.runtime = EnsembleRuntime(store, min_members=min_members, seed=seed, breakers=self.board)
        self._base: dict[str, ModelSession] = {}
        self._derived: dict[tuple[str, tuple[str, ...]], ModelSession] = {}

    # -- sessions --------------------------------------------------------

    def base_session(self, model: str) -> ModelSession:
        """The full-ensemble session for ``model``, built on first use.

        Mirrors ``EnsembleRuntime._run_model_inner``'s assembly: members are
        the intersection of the val/test survivors so the feature layout is
        identical at fit and serve time; corrupt members quarantine (and
        feed their breakers) rather than crash.
        """

        session = self._base.get(model)
        if session is not None:
            return session
        if not self.store.model_dir(model).is_dir():
            raise ServeError("unknown-model", f"no model directory {model!r} in {self.store.root}")
        plan = self.runtime.member_plan(model)
        val = self.runtime.assemble(model, "val", members=plan)
        test = self.runtime.assemble(model, "test", members=plan)
        common = [s for s in val.members if s in set(test.members)]
        if len(common) < self.min_members:
            raise DegradedEnsemble(model, common, self.min_members)
        val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
        test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)
        quarantined = {**val.quarantined, **test.quarantined}
        missing = sorted(s for s in plan if s not in common and s not in quarantined)
        session = ModelSession(
            model=model,
            members=common,
            val_stack=val_stack,
            test_stack=test_stack,
            module=self._fit(model, common, val_stack),
            missing=missing,
            quarantined=quarantined,
        )
        self._base[model] = session
        get_registry().counter("serve_sessions_built_total", kind="base").inc()
        return session

    def _fit(self, model: str, members: list[str], val_stack: np.ndarray) -> LogisticDecisionModule | None:
        val_labels = self.store.load_labels(model, "val")
        if val_labels is None or "ORG" not in members or len(val_labels) != val_stack.shape[1]:
            return None
        module = LogisticDecisionModule(seed=self.seed)
        org_val = val_stack[members.index("ORG")]
        module.fit(ensemble_features(val_stack), misprediction_targets(org_val, val_labels))
        return module

    def session_for(self, model: str, members: tuple[str, ...]) -> ModelSession:
        """A session restricted to ``members`` (a subset of the base session's,
        in base order) — derived by slicing the resident stacks and refitting
        the decision module on the narrower feature layout.  Cached: the
        shed/recover cycle alternates between a handful of subsets."""

        base = self.base_session(model)
        if list(members) == base.members:
            return base
        key = (model, members)
        session = self._derived.get(key)
        if session is not None:
            return session
        rows = [base.members.index(s) for s in members]
        val_stack = base.val_stack[rows]
        test_stack = base.test_stack[rows]
        session = ModelSession(
            model=model,
            members=list(members),
            val_stack=val_stack,
            test_stack=test_stack,
            module=self._fit(model, list(members), val_stack),
            missing=base.missing,
            quarantined=base.quarantined,
        )
        self._derived[key] = session
        get_registry().counter("serve_sessions_built_total", kind="derived").inc()
        return session

    # -- breaker-driven member selection ---------------------------------

    def active_members(self, model: str) -> tuple[list[str], list[str]]:
        """(active, shed) member stems for the next batch of ``model``.

        Core members (the first ``keep_members`` of the base session) always
        serve; each sheddable member serves only while its breaker admits it.
        ``allow`` also flips an open breaker to half-open once its cool-down
        (in batches) has elapsed, re-admitting the member as a probe.
        """

        base = self.base_session(model)
        active: list[str] = []
        shed: list[str] = []
        for i, stem in enumerate(base.members):
            if i < self.keep_members or self.board.allow(model, stem):
                active.append(stem)
            else:
                shed.append(stem)
        return active, shed

    def record_pressure(self, model: str, active: list[str], overloaded: bool) -> None:
        """Feed this batch's overload verdict to the sheddable breakers.

        An overloaded batch is a *failure* for every sheddable member that
        served it (consecutive failures trip the breaker open — hysteresis
        for free); a calm batch is a success (closes half-open probes,
        resets failure streaks).
        """

        base = self.base_session(model)
        for stem in base.members[self.keep_members :]:
            if stem not in active:
                continue
            if overloaded:
                self.board.record_failure(model, stem)
            else:
                self.board.record_success(model, stem)

    # -- evaluation ------------------------------------------------------

    def check_samples(self, model: str, request: ServeRequest) -> None:
        """Range-check sample indices against the model's test split."""

        n = self.base_session(model).n_samples
        for i, idx in enumerate(request.samples):
            if idx >= n:
                raise _bad(f"request.samples[{i}]", "out-of-range", f"model {model!r} has {n} test samples")

    def evaluate_requests(
        self,
        model: str,
        requests: list[ServeRequest],
        *,
        active: list[str] | None = None,
        shed: list[str] | None = None,
    ) -> list[dict]:
        """Response payloads for same-model requests, evaluated as one tensor op.

        All requests' sample indices are concatenated, evaluated once, and
        sliced back per request — byte-identical to evaluating each request
        alone because every statistic involved is per-sample.
        """

        base = self.base_session(model)
        if active is None:
            active = list(base.members)
        shed = list(shed or [])
        session = self.session_for(model, tuple(active))
        counts = [len(r.samples) for r in requests]
        flat = np.array([idx for r in requests for idx in r.samples], dtype=np.int64)
        probs, predictions, flags = session.evaluate(flat)
        breaker_states = self.board.states_for(model)
        degraded = bool(shed or session.missing or session.quarantined)
        payloads = []
        offset = 0
        for request, count in zip(requests, counts):
            span = slice(offset, offset + count)
            offset += count
            payloads.append(
                {
                    "id": request.id,
                    "outcome": OUTCOME_DEGRADED if degraded else OUTCOME_OK,
                    "model": model,
                    "members": list(session.members),
                    "probs": [[float(p) for p in row] for row in probs[span]],
                    "predictions": [int(p) for p in predictions[span]],
                    "flags": [int(f) for f in flags[span]],
                    "degraded": degraded,
                    "shed": sorted(shed),
                    "missing": list(session.missing),
                    "quarantined": dict(session.quarantined),
                    "breakers": breaker_states,
                }
            )
        return payloads

    def respond(self, request: ServeRequest) -> dict:
        """The serial reference path: one request, straight through.

        The gateway's coalesced path must produce byte-identical frames to
        this (given the same board state and no overload) — the differential
        tests compare against it directly.
        """

        try:
            self.base_session(request.model)
            self.check_samples(request.model, request)
            active, shed = self.active_members(request.model)
            return self.evaluate_requests(request.model, [request], active=active, shed=shed)[0]
        except (ServeError, ConfigError, DegradedEnsemble) as exc:
            return error_payload(request.id, exc)


def error_payload(rid: str, exc: BaseException) -> dict:
    """An ``outcome=error`` response payload for a rejected request."""

    error: dict = {"reason": getattr(exc, "reason", type(exc).__name__), "detail": str(exc)}
    if isinstance(exc, ConfigError):
        error["field"] = exc.field
        error["detail"] = exc.detail
    if isinstance(exc, DegradedEnsemble):
        error["reason"] = "degraded-below-minimum"
    return {"id": rid, "outcome": OUTCOME_ERROR, "error": error}


# ---------------------------------------------------------------------------
# deadline / coalescing budgets
# ---------------------------------------------------------------------------

COALESCE_SLICES = 4  # the coalescing window is polled in this many waits


def coalesce_slices(window_s: float, budget_s: float, *, n: int = COALESCE_SLICES) -> list[float]:
    """The dispatcher's coalescing waits as a ``RetryPolicy`` sleep schedule.

    ``n`` equal slices of the coalescing window, clamped by the batch's
    scarcest remaining deadline budget via ``RetryPolicy.max_total_sleep`` —
    the same machinery that caps retry backoff caps how long a request may
    sit waiting for batch companions.
    """

    if window_s <= 0.0 or budget_s <= 0.0:
        return []
    piece = window_s / n
    policy = RetryPolicy(
        attempts=n + 1, base_delay=piece, max_delay=piece, jitter=0.0, max_total_sleep=budget_s
    )
    return [delay for delay in policy.schedule() if delay > 0.0]


# ---------------------------------------------------------------------------
# asyncio gateway
# ---------------------------------------------------------------------------


@dataclass
class ServeConfig:
    """Gateway knobs.  ``degrade_depth``/``max_queue`` are pending-request
    counts; ``coalesce_ms`` bounds how long the dispatcher waits for batch
    companions; ``batch_sleep_s`` pads each executed batch (bench/smoke use
    it to pin the service rate so overload behaviour is reproducible)."""

    host: str | None = "127.0.0.1"
    port: int = 0
    unix_path: str | None = None
    max_queue: int = 64
    degrade_depth: int = 8
    coalesce_ms: float = 2.0
    batch_max: int = 16
    default_deadline_ms: float | None = None
    batch_sleep_s: float = 0.0
    metrics_out: str | None = None
    prom_out: str | None = None


_STOP = object()


@dataclass
class _Queued:
    request: ServeRequest
    conn: _Connection
    started: float

    def remaining_s(self, now: float, default_deadline_ms: float | None) -> float | None:
        deadline_ms = self.request.deadline_ms
        if deadline_ms is None:
            deadline_ms = default_deadline_ms
        if deadline_ms is None:
            return None
        return deadline_ms / 1000.0 - (now - self.started)


class _Connection:
    """One client connection: a writer plus a lock so interleaved batch
    completions never tear frames."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()

    async def send(self, frame: bytes) -> None:
        async with self.lock:
            if self.writer.is_closing():
                return
            self.writer.write(frame)
            with contextlib.suppress(ConnectionError):
                await self.writer.drain()


class ServeGateway:
    """Asyncio front-end: bounded queue, coalescing dispatcher, graceful drain."""

    def __init__(self, service: PolygraphService, config: ServeConfig | None = None):
        self.service = service
        self.config = config or ServeConfig()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._servers: list[asyncio.base_events.Server] = []
        self._dispatcher: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self.bound_port: int | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self.config.host is not None:
            server = await asyncio.start_server(self._handle, self.config.host, self.config.port)
            self._servers.append(server)
            for sock in server.sockets:
                if self.bound_port is None:
                    self.bound_port = sock.getsockname()[1]
        if self.config.unix_path is not None:
            server = await asyncio.start_unix_server(self._handle, path=self.config.unix_path)
            self._servers.append(server)
        if not self._servers:
            raise ServeError("no-listener", "gateway needs a TCP host or a unix socket path")
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Graceful SIGTERM semantics: stop accepting, complete everything
        already queued, export metrics, close connections."""

        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        await self.queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
        self._export_metrics()
        for task in list(self._handlers):
            task.cancel()
        await asyncio.gather(*self._handlers, return_exceptions=True)
        self._drained.set()

    def _export_metrics(self) -> None:
        registry = get_registry()
        if self.config.metrics_out:
            registry.write_json(self.config.metrics_out)
        if self.config.prom_out:
            path = Path(self.config.prom_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(registry.to_prometheus(), encoding="utf-8")

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        conn = _Connection(writer)
        assembler = FrameAssembler()
        try:
            while not self._draining:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = assembler.feed(chunk)
                except ServeError as exc:
                    await conn.send(response_frame(error_payload("", exc)))
                    break
                for frame in frames:
                    if not frame.strip():
                        continue
                    await self._ingest(conn, frame)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()

    async def _ingest(self, conn: _Connection, frame: bytes) -> None:
        started = time.perf_counter()
        registry = get_registry()
        try:
            request = parse_request(frame)
        except ConfigError as exc:
            rid = _salvage_id(frame)
            await self._finish(conn, error_payload(rid, exc), started)
            return
        if request.op == OP_PING:
            await conn.send(response_frame({"id": request.id, "op": OP_PING, "ok": True}))
            return
        if request.op == OP_METRICS:
            await conn.send(response_frame({"id": request.id, "op": OP_METRICS, **self._metrics_snapshot()}))
            return
        try:
            self.queue.put_nowait(_Queued(request, conn, started))
        except asyncio.QueueFull:
            registry.counter("serve_shed_total").inc()
            payload = {
                "id": request.id,
                "outcome": OUTCOME_OVERLOADED,
                "model": request.model,
                "queue_depth": self.queue.qsize(),
            }
            await self._finish(conn, payload, started)
            return
        registry.gauge("serve_queue_depth").set(float(self.queue.qsize()))

    def _metrics_snapshot(self) -> dict:
        registry = get_registry()
        return {
            "requests": {outcome: registry.counter_value("serve_requests_total", outcome=outcome) for outcome in OUTCOMES},
            "shed": registry.counter_value("serve_shed_total"),
            "degraded": registry.counter_value("serve_degraded_total"),
            "deadline_exceeded": registry.counter_value("serve_deadline_exceeded_total"),
            "batches": registry.counter_value("serve_batches_total"),
            "queue_depth": self.queue.qsize(),
        }

    async def _finish(self, conn: _Connection, payload: dict, started: float) -> None:
        """Send a terminal response: the single point that counts outcomes,
        so ``serve_requests_total{outcome}`` reconciles exactly with the
        frames clients receive."""

        registry = get_registry()
        registry.counter("serve_requests_total", outcome=payload["outcome"]).inc()
        registry.histogram("serve_request_seconds").observe(time.perf_counter() - started)
        await conn.send(response_frame(payload))

    # -- dispatcher ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        stopping = False
        while True:
            if stopping:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                item = await self.queue.get()
            if item is _STOP:
                stopping = True
                continue
            batch = [item]
            if stopping:
                while len(batch) < self.config.batch_max:
                    try:
                        extra = self.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _STOP:
                        continue
                    batch.append(extra)
            else:
                stopping = await self._coalesce(batch)
            await self._execute(batch)

    def _batch_budget_s(self, batch: list[_Queued], now: float) -> float:
        """The scarcest remaining deadline in the batch (coalescing must not
        eat a request's whole budget), or the full window when nobody is in
        a hurry."""

        window_s = self.config.coalesce_ms / 1000.0
        budget = window_s
        for queued in batch:
            remaining = queued.remaining_s(now, self.config.default_deadline_ms)
            if remaining is not None:
                budget = min(budget, remaining)
        return budget

    async def _coalesce(self, batch: list[_Queued]) -> bool:
        """Wait briefly for batch companions; returns True when _STOP arrived."""

        slices = coalesce_slices(self.config.coalesce_ms / 1000.0, self._batch_budget_s(batch, time.perf_counter()))
        for delay in slices:
            if len(batch) >= self.config.batch_max:
                break
            try:
                item = await asyncio.wait_for(self.queue.get(), timeout=delay)
            except asyncio.TimeoutError:
                break
            if item is _STOP:
                return True
            batch.append(item)
            while len(batch) < self.config.batch_max:
                try:
                    extra = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _STOP:
                    return True
                batch.append(extra)
        return False

    async def _execute(self, batch: list[_Queued]) -> None:
        registry = get_registry()
        depth = self.queue.qsize()
        registry.gauge("serve_queue_depth").set(float(depth))
        overloaded = self.config.degrade_depth > 0 and depth >= self.config.degrade_depth
        registry.counter("serve_batches_total").inc()
        registry.histogram("serve_batch_size", buckets=BATCH_SIZE_BUCKETS).observe(float(len(batch)))
        self.service.board.tick()

        if self.config.batch_sleep_s > 0.0:
            await asyncio.sleep(self.config.batch_sleep_s)

        groups: dict[str, list[_Queued]] = {}
        for queued in batch:
            groups.setdefault(queued.request.model, []).append(queued)

        now = time.perf_counter()
        for model, queued_group in groups.items():
            live: list[_Queued] = []
            for queued in queued_group:
                remaining = queued.remaining_s(now, self.config.default_deadline_ms)
                if remaining is not None and remaining <= 0.0:
                    registry.counter("serve_deadline_exceeded_total").inc()
                    payload = {"id": queued.request.id, "outcome": OUTCOME_DEADLINE, "model": model}
                    await self._finish(queued.conn, payload, queued.started)
                else:
                    live.append(queued)
            if not live:
                continue
            try:
                self.service.base_session(model)
            except (ServeError, DegradedEnsemble) as exc:
                for queued in live:
                    await self._finish(queued.conn, error_payload(queued.request.id, exc), queued.started)
                continue
            valid: list[_Queued] = []
            for queued in live:
                try:
                    self.service.check_samples(model, queued.request)
                except ConfigError as exc:
                    await self._finish(queued.conn, error_payload(queued.request.id, exc), queued.started)
                else:
                    valid.append(queued)
            if not valid:
                continue
            active, shed = self.service.active_members(model)
            payloads = self.service.evaluate_requests(
                model, [q.request for q in valid], active=active, shed=shed
            )
            for queued, payload in zip(valid, payloads):
                if payload["outcome"] == OUTCOME_DEGRADED:
                    registry.counter("serve_degraded_total").inc()
                await self._finish(queued.conn, payload, queued.started)
            self.service.record_pressure(model, active, overloaded)


def _salvage_id(frame: bytes) -> str:
    """Best-effort request id for error responses to malformed frames."""

    try:
        obj = json.loads(frame.decode("utf-8", errors="replace"))
    except json.JSONDecodeError:
        return ""
    if isinstance(obj, dict) and isinstance(obj.get("id"), str):
        return obj["id"][:MAX_ID_CHARS]
    return ""


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _build_store(args) -> ArtifactStore:
    cache_root = Path(args.cache)
    if args.synthetic_models > 0:
        from .faults import build_synthetic_model

        existing = set(ArtifactStore(cache_root).models()) if cache_root.is_dir() else set()
        for i in range(args.synthetic_models):
            name = f"net-{i:02d}"
            if name not in existing:
                build_synthetic_model(cache_root, name, n_val=96, n_test=96, seed=args.seed + i)
    plane = None
    if not args.no_plane:
        throwaway = ArtifactStore(cache_root)
        plane = SharedMemoryPlane.publish(throwaway, throwaway.models(), max_bytes=args.cache_bytes)
    cache = ArtifactCache(max_bytes=args.cache_bytes, plane=plane)
    return ArtifactStore(cache_root, cache=cache)


async def _serve(args) -> int:
    store = _build_store(args)
    board = BreakerBoard(BreakerPolicy(failure_threshold=args.failure_threshold, cooldown_ticks=args.cooldown_ticks))
    service = PolygraphService(
        store,
        min_members=args.min_members,
        keep_members=args.keep_members,
        seed=args.seed,
        breakers=board,
    )
    config = ServeConfig(
        host=None if args.unix else args.host,
        port=args.port,
        unix_path=args.unix,
        max_queue=args.max_queue,
        degrade_depth=args.degrade_depth,
        coalesce_ms=args.coalesce_ms,
        batch_max=args.batch_max,
        default_deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        batch_sleep_s=args.batch_sleep,
        metrics_out=args.metrics_out,
        prom_out=args.prom_out,
    )
    gateway = ServeGateway(service, config)
    await gateway.start()

    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, shutdown.set)

    ready = {
        "ready": True,
        "models": store.models(),
        "port": gateway.bound_port,
        "unix": args.unix,
    }
    print(json.dumps(ready, sort_keys=True), flush=True)

    await shutdown.wait()
    await gateway.drain()

    registry = get_registry()
    summary = {
        "drained": True,
        "served": {outcome: registry.counter_value("serve_requests_total", outcome=outcome) for outcome in OUTCOMES},
        "batches": registry.counter_value("serve_batches_total"),
        "shed": registry.counter_value("serve_shed_total"),
        "degraded": registry.counter_value("serve_degraded_total"),
        "deadline_exceeded": registry.counter_value("serve_deadline_exceeded_total"),
    }
    print(json.dumps(summary, sort_keys=True), flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="polygraphmr-serve",
        description="Async ensemble inference gateway with load-shedding and deadline budgets",
    )
    parser.add_argument("--cache", required=True, help="artifact cache root to serve from")
    parser.add_argument(
        "--synthetic-models",
        type=int,
        default=0,
        help="build this many synthetic models into --cache first (smoke/bench)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0, help="TCP port; 0 picks a free one (printed on the ready line)")
    parser.add_argument("--unix", default=None, help="serve on this unix socket path instead of TCP")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-members", type=int, default=2)
    parser.add_argument(
        "--keep-members",
        type=int,
        default=None,
        help="members that never shed under load (default: --min-members)",
    )
    parser.add_argument("--max-queue", type=int, default=64, help="pending-request bound; beyond it requests shed")
    parser.add_argument(
        "--degrade-depth",
        type=int,
        default=8,
        help="queue depth at which batches count as overloaded and sheddable members start tripping (0 disables)",
    )
    parser.add_argument("--coalesce-ms", type=float, default=2.0, help="micro-batch coalescing window (milliseconds)")
    parser.add_argument("--batch-max", type=int, default=16, help="max requests per micro-batch")
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=0.0,
        help="default per-request deadline budget in ms (0 = none unless the request carries one)",
    )
    parser.add_argument(
        "--batch-sleep",
        type=float,
        default=0.0,
        help="pad each executed batch by this many seconds (bench/smoke: pins the service rate)",
    )
    parser.add_argument("--failure-threshold", type=int, default=3, help="overloaded batches before a member sheds")
    parser.add_argument("--cooldown-ticks", type=int, default=2, help="batches an open breaker waits before probing")
    parser.add_argument("--no-plane", action="store_true", help="skip the shared-memory plane warmup")
    parser.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES)
    parser.add_argument("--metrics-out", default=None, help="write metrics JSON here on drain")
    parser.add_argument("--prom-out", default=None, help="write Prometheus text exposition here on drain")
    args = parser.parse_args(argv)
    if args.keep_members is None:
        args.keep_members = args.min_members
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
