"""MRFI-style fault-injection harness.

Two families of injectors, both seeded and reproducible:

* **Tensor-level** — random bit-flips in the float32 mantissa/exponent/sign
  bits and additive gaussian noise, applied to loaded probability or weight
  tensors.  Used to measure how misprediction-detection quality degrades as
  the ensemble's inputs are perturbed.
* **Artifact-level** — byte truncation and header damage applied to copies
  of ``.npz`` files, used to exercise the store's quarantine path.

Run ``python -m polygraphmr.faults --help`` for the measurement CLI.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from .ensemble import EnsembleRuntime
from .metrics import get_registry
from .store import ArtifactStore

__all__ = [
    "FaultSpec",
    "inject_bitflips",
    "inject_gaussian",
    "sanitize_probs",
    "corrupt_file_truncate",
    "corrupt_file_header",
    "measure_degradation",
    "main",
]


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a tensor-level fault campaign."""

    kind: str  # "bitflip" | "gaussian"
    rate: float = 0.0  # bitflip: fraction of elements hit
    sigma: float = 0.0  # gaussian: noise stddev
    seed: int = 0

    def apply(self, arr: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.kind == "bitflip":
            return inject_bitflips(arr, rate=self.rate, rng=rng)
        if self.kind == "gaussian":
            return inject_gaussian(arr, sigma=self.sigma, rng=rng)
        raise ValueError(f"unknown fault kind: {self.kind!r}")


def inject_bitflips(arr: np.ndarray, *, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Flip one random bit in a ``rate`` fraction of float32 elements.

    Returns a new array; the input is never mutated.  Flips hit the raw IEEE
    bit pattern, so a single flip can turn a probability into ``inf`` or a
    denormal — exactly the silent-data-corruption model from the fault
    injection literature.
    """

    out = np.ascontiguousarray(arr, dtype=np.float32).copy()
    flat = out.reshape(-1)
    n_hit = int(round(rate * flat.size))
    if n_hit == 0:
        return out.reshape(arr.shape)
    idx = rng.choice(flat.size, size=n_hit, replace=False)
    bits = rng.integers(0, 32, size=n_hit, dtype=np.uint32)
    view = flat.view(np.uint32)
    view[idx] ^= (np.uint32(1) << bits)
    return out.reshape(arr.shape)


def inject_gaussian(arr: np.ndarray, *, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive zero-mean gaussian noise; returns a new float64 array."""

    out = np.asarray(arr, dtype=np.float64).copy()
    return out + rng.normal(0.0, sigma, size=out.shape)


def sanitize_probs(arr: np.ndarray) -> np.ndarray:
    """Repair a faulted probability matrix so downstream code keeps running:
    non-finite → 0, clip to [0, 1], renormalise rows (uniform if a row dies)."""

    out = np.asarray(arr, dtype=np.float64).copy()
    out[~np.isfinite(out)] = 0.0
    np.clip(out, 0.0, 1.0, out=out)
    sums = out.sum(axis=1, keepdims=True)
    dead = sums.reshape(-1) <= 0.0
    out[dead] = 1.0 / out.shape[1]
    sums[dead.reshape(-1)] = 1.0
    return out / sums


def corrupt_file_truncate(src: str | Path, dst: str | Path, *, keep_fraction: float, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` keeping head and tail but cutting bytes from the
    middle — the same damage pattern observed in the seed cache."""

    data = Path(src).read_bytes()
    rng = np.random.default_rng(seed)
    keep = max(8, int(len(data) * keep_fraction))
    cut = len(data) - keep
    if cut > 0:
        start = int(rng.integers(4, max(5, keep // 2)))
        data = data[:start] + data[start + cut :]
    dst = Path(dst)
    dst.write_bytes(data)
    return dst


def corrupt_file_header(src: str | Path, dst: str | Path, *, n_bytes: int = 4, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` and overwrite the first ``n_bytes`` with noise."""

    dst = Path(dst)
    shutil.copyfile(src, dst)
    rng = np.random.default_rng(seed)
    with open(dst, "r+b") as fh:
        fh.write(bytes(int(b) for b in rng.integers(0, 256, size=n_bytes)))
    return dst


def measure_degradation(
    store: ArtifactStore,
    model: str,
    spec: FaultSpec,
    *,
    members: list[str] | None = None,
    seed: int = 0,
    runtime: EnsembleRuntime | None = None,
) -> dict:
    """Clean-vs-faulted misprediction-detection metrics for one model.

    Trains the decision module on clean ``val`` data, then evaluates on the
    clean ``test`` split and on a copy with ``spec`` injected into every
    member's probabilities (sanitised back onto the simplex so the module
    sees plausible-but-wrong inputs rather than crashing).

    Pass ``runtime`` to reuse one :class:`EnsembleRuntime` across many
    calls — the campaign runner does this so its circuit-breaker board
    accumulates state over trials instead of resetting every time.
    """

    if runtime is None:
        runtime = EnsembleRuntime(store, seed=seed)
    if runtime.breakers is not None:
        runtime.breakers.tick()
    plan = members if members is not None else runtime.member_plan(model)
    val = runtime.assemble(model, "val", members=plan)
    test = runtime.assemble(model, "test", members=plan)
    common = [s for s in val.members if s in set(test.members)]
    if "ORG" not in common:
        raise ValueError(f"model {model!r}: ORG did not survive validation; cannot define targets")
    val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
    test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)

    val_labels = store.load_labels(model, "val")
    test_labels = store.load_labels(model, "test")
    if val_labels is None or test_labels is None:
        raise ValueError(f"model {model!r}: labels required to measure detection quality")

    module = LogisticDecisionModule(seed=seed)
    org_i = common.index("ORG")
    module.fit(ensemble_features(val_stack), misprediction_targets(val_stack[org_i], val_labels))

    clean = module.evaluate(ensemble_features(test_stack), misprediction_targets(test_stack[org_i], test_labels))

    faulted_stack = np.stack([sanitize_probs(spec.apply(test_stack[i])) for i in range(len(common))], axis=0)
    faulted = module.evaluate(
        ensemble_features(faulted_stack),
        misprediction_targets(faulted_stack[org_i], test_labels),
    )
    return {
        "model": model,
        "members": common,
        "fault": {"kind": spec.kind, "rate": spec.rate, "sigma": spec.sigma, "seed": spec.seed},
        "clean": clean.to_dict(),
        "faulted": faulted.to_dict(),
        "delta": {
            k: round(faulted.to_dict()[k] - clean.to_dict()[k], 6)
            for k in ("accuracy", "precision", "recall", "f1", "auc")
        },
    }


# -- synthetic demo cache (the seed cache has zero valid artifacts) --------


def build_synthetic_model(
    root: str | Path,
    model: str = "synthetic",
    *,
    members: tuple[str, ...] = ("ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX", "replica-001"),
    n_val: int = 200,
    n_test: int = 200,
    n_classes: int = 10,
    seed: int = 0,
) -> Path:
    """Write a small, fully-valid model directory for demos and tests.

    Samples share a per-example difficulty, so on hard inputs every member's
    probabilities blur together — giving the decision module a real
    disagreement signal to learn, as in the paper's setting.
    """

    rng = np.random.default_rng(seed)
    mdir = Path(root) / model
    mdir.mkdir(parents=True, exist_ok=True)
    for split, n in (("val", n_val), ("test", n_test)):
        labels = rng.integers(0, n_classes, size=n)
        difficulty = rng.uniform(0.0, 1.0, size=n)
        np.savez(mdir / f"labels.{split}.npz", labels=labels)
        for stem in members:
            signal = 4.0 * (1.1 - difficulty)[:, None]
            logits = rng.normal(0.0, 1.0, size=(n, n_classes))
            logits[np.arange(n), labels] += signal[:, 0]
            z = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
            np.savez(mdir / f"{stem}.{split}.probs.npz", probs=probs.astype(np.float32))
    for stem in members:
        np.savez(
            mdir / f"{stem}.weights.npz",
            dense=rng.normal(size=(16, n_classes)).astype(np.float32),
            bias=np.zeros(n_classes, dtype=np.float32),
        )
    (mdir / "greedy-4.json").write_text(json.dumps(["ORG", "Gamma(2)", "Hist", "FlipX"]))
    return mdir


# -- CLI -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.faults",
        description="Measure misprediction-detection degradation under injected faults.",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--model", default=None, help="model directory to target (default: every usable model)")
    parser.add_argument("--kind", choices=("bitflip", "gaussian"), default="bitflip")
    parser.add_argument("--rate", type=float, default=0.01, help="bit-flip rate (fraction of elements)")
    parser.add_argument("--sigma", type=float, default=0.05, help="gaussian noise stddev")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and run against it "
        "(use when the cache has no valid artifacts, e.g. the seed cache)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry (JSON) to this path",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        help="write the run's metrics in Prometheus text format to this path",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="byte budget for the verified-once artifact cache "
        f"(default: {DEFAULT_CACHE_BYTES})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verified-once artifact cache (every load re-reads and re-validates)",
    )
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ArtifactCache(args.cache_bytes)
    if args.synthetic is not None:
        build_synthetic_model(args.synthetic, seed=args.seed)
        store = ArtifactStore(args.synthetic, cache=cache)
    else:
        store = ArtifactStore(args.cache, cache=cache)

    spec = FaultSpec(kind=args.kind, rate=args.rate, sigma=args.sigma, seed=args.seed)
    models = [args.model] if args.model else store.models()
    reports = []
    for model in models:
        try:
            reports.append(measure_degradation(store, model, spec, seed=args.seed))
        except Exception as exc:  # noqa: BLE001 - CLI reports, never crashes the sweep
            reports.append({"model": model, "error": repr(exc)})
    registry = get_registry()
    if args.metrics_out:
        registry.write_json(args.metrics_out)
    if args.metrics_prom:
        prom = Path(args.metrics_prom)
        prom.parent.mkdir(parents=True, exist_ok=True)
        prom.write_text(registry.to_prometheus(), encoding="utf-8")
    json.dump({"reports": reports}, sys.stdout, indent=2)
    sys.stdout.write("\n")
    usable = [r for r in reports if "error" not in r]
    return 0 if usable else 1


if __name__ == "__main__":
    raise SystemExit(main())
