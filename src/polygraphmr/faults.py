"""MRFI-style multi-resolution fault-injection harness.

Three families of injectors, all seeded and reproducible:

* **Tensor-level** — random bit-flips in the float32 mantissa/exponent/sign
  bits and additive gaussian noise, applied to loaded probability or weight
  tensors.  Used to measure how misprediction-detection quality degrades as
  the ensemble's inputs are perturbed.
* **Multi-resolution surfaces** (MRFI) — the same fault models addressed at
  finer granularities: channel-masked injection (a fraction of last-axis
  channels/columns, every element within a hit channel faulted) and
  element-addressed injection (a fixed count of addressed cells), plus
  quantization-style rounding perturbation and stuck-at-0/1 faults.
  :func:`apply_fault` is the one surface × fault-model dispatch the
  declarative :mod:`polygraphmr.scenarios` subsystem drives.
* **Artifact-level** — byte truncation and header damage applied to copies
  of ``.npz`` files, used to exercise the store's quarantine path.

Run ``python -m polygraphmr.faults --help`` for the measurement CLI.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from .ensemble import EnsembleRuntime
from .errors import ConfigError
from .metrics import get_registry
from .store import ArtifactStore

__all__ = [
    "SURFACES",
    "FAULT_MODELS",
    "FAULT_SPEC_KINDS",
    "FaultSpec",
    "select_fault_indices",
    "apply_fault",
    "inject_bitflips",
    "inject_bitflips_channel",
    "inject_bitflips_element",
    "inject_gaussian",
    "inject_quantize",
    "inject_stuck_at",
    "sanitize_probs",
    "corrupt_file_truncate",
    "corrupt_file_header",
    "measure_degradation",
    "main",
]

SURFACES = ("tensor", "channel", "element")
FAULT_MODELS = ("bitflip", "gaussian", "quantize", "stuck0", "stuck1")
FAULT_SPEC_KINDS = ("bitflip", "gaussian")


def _require_number(field: str, value, *, low: float | None = None, high: float | None = None) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or not np.isfinite(value):
        raise ConfigError(field, "bad-type", f"expected a finite number, got {value!r}")
    if low is not None and value < low:
        raise ConfigError(field, "out-of-range", f"must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ConfigError(field, "out-of-range", f"must be <= {high}, got {value!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a tensor-level fault campaign.

    The simple whole-tensor spec the legacy ``--kind/--rate/--sigma`` sweep
    uses; surface-aware faults live in :class:`polygraphmr.scenarios.Scenario`.
    Parameters are validated at construction: an unknown ``kind`` or an
    out-of-range ``rate``/``sigma`` raises :class:`~polygraphmr.errors.ConfigError`
    naming the offending field, instead of a deep ``ValueError`` mid-sweep.
    """

    kind: str  # "bitflip" | "gaussian"
    rate: float = 0.0  # bitflip: fraction of elements hit
    sigma: float = 0.0  # gaussian: noise stddev
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_SPEC_KINDS:
            raise ConfigError(
                "fault.kind",
                "unknown-kind",
                f"got {self.kind!r}; known kinds: {', '.join(FAULT_SPEC_KINDS)} "
                "(surface-aware kinds like quantize/stuck0/stuck1 are Scenario-only)",
            )
        _require_number("fault.rate", self.rate, low=0.0, high=1.0)
        _require_number("fault.sigma", self.sigma, low=0.0)

    def apply(self, arr: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.kind == "bitflip":
            return inject_bitflips(arr, rate=self.rate, rng=rng)
        return inject_gaussian(arr, sigma=self.sigma, rng=rng)

    def describe(self) -> dict:
        """The journalled ``fault`` stanza of a degradation report."""

        return {"kind": self.kind, "rate": self.rate, "sigma": self.sigma, "seed": self.seed}


def inject_bitflips(arr: np.ndarray, *, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Flip one random bit in a ``rate`` fraction of float32 elements.

    Returns a new array; the input is never mutated.  Flips hit the raw IEEE
    bit pattern, so a single flip can turn a probability into ``inf`` or a
    denormal — exactly the silent-data-corruption model from the fault
    injection literature.
    """

    out = np.ascontiguousarray(arr, dtype=np.float32).copy()
    flat = out.reshape(-1)
    n_hit = int(round(rate * flat.size))
    if n_hit == 0:
        return out.reshape(arr.shape)
    idx = rng.choice(flat.size, size=n_hit, replace=False)
    bits = rng.integers(0, 32, size=n_hit, dtype=np.uint32)
    view = flat.view(np.uint32)
    view[idx] ^= (np.uint32(1) << bits)
    return out.reshape(arr.shape)


def inject_gaussian(arr: np.ndarray, *, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive zero-mean gaussian noise; returns a new float64 array."""

    out = np.asarray(arr, dtype=np.float64).copy()
    return out + rng.normal(0.0, sigma, size=out.shape)


# -- multi-resolution surfaces (MRFI) --------------------------------------


def select_fault_indices(
    shape: tuple[int, ...], surface: str, *, rate: float = 0.0, count: int = 0, rng: np.random.Generator
) -> np.ndarray:
    """Flat element indices an injection surface selects on a tensor.

    * ``tensor`` — a ``rate`` fraction of *all* elements, drawn without
      replacement (the whole tensor is the blast radius).
    * ``channel`` — a ``rate`` fraction of last-axis channels/columns;
      every element of a hit channel is selected (channel-masked faults,
      e.g. a dead feature-map plane or a stuck output class column).
    * ``element`` — exactly ``count`` addressed cells, modelling a small
      set of specific faulty storage locations rather than a rate.

    Selection is a pure function of ``(shape, surface, rate/count, rng
    state)`` — the property every scenario's determinism rides on.
    """

    size = int(np.prod(shape)) if shape else 0
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if surface == "tensor":
        n = int(round(rate * size))
        return rng.choice(size, size=n, replace=False) if n else np.empty(0, dtype=np.int64)
    if surface == "element":
        n = min(int(count), size)
        return rng.choice(size, size=n, replace=False) if n else np.empty(0, dtype=np.int64)
    if surface == "channel":
        n_channels = shape[-1] if len(shape) >= 2 else size
        n = int(round(rate * n_channels))
        if n == 0:
            return np.empty(0, dtype=np.int64)
        channels = np.sort(rng.choice(n_channels, size=n, replace=False))
        rows = size // n_channels
        return (np.arange(rows, dtype=np.int64)[:, None] * n_channels + channels[None, :]).reshape(-1)
    raise ConfigError("scenario.surface", "unknown-surface", f"got {surface!r}; known surfaces: {', '.join(SURFACES)}")


def apply_fault(
    arr: np.ndarray,
    *,
    surface: str,
    kind: str,
    rate: float = 0.0,
    sigma: float = 0.0,
    step: float = 0.0,
    count: int = 0,
    rng: np.random.Generator,
) -> np.ndarray:
    """One surface × fault-model injection; returns a new array, the input
    is never mutated.

    ``bitflip`` flips one random IEEE-754 bit per selected float32 element;
    ``gaussian`` adds N(0, sigma) to the selected elements; ``quantize``
    snaps them to the nearest multiple of ``step`` (a storage-grid rounding
    perturbation, e.g. ``step=1/16`` ≈ 4-bit cells); ``stuck0``/``stuck1``
    clamp them to 0.0 / 1.0.  The surface decides *which* elements those
    are (:func:`select_fault_indices`).
    """

    if kind == "bitflip":
        out = np.ascontiguousarray(arr, dtype=np.float32).copy()
    else:
        out = np.asarray(arr, dtype=np.float64).copy()
    idx = select_fault_indices(out.shape, surface, rate=rate, count=count, rng=rng)
    if idx.size == 0:
        return out
    flat = out.reshape(-1)
    if kind == "bitflip":
        bits = rng.integers(0, 32, size=idx.size, dtype=np.uint32)
        flat.view(np.uint32)[idx] ^= np.uint32(1) << bits
    elif kind == "gaussian":
        flat[idx] += rng.normal(0.0, sigma, size=idx.size)
    elif kind == "quantize":
        flat[idx] = np.round(flat[idx] / step) * step
    elif kind == "stuck0":
        flat[idx] = 0.0
    elif kind == "stuck1":
        flat[idx] = 1.0
    else:
        raise ConfigError("scenario.kind", "unknown-kind", f"got {kind!r}; known kinds: {', '.join(FAULT_MODELS)}")
    return out


def inject_bitflips_channel(arr: np.ndarray, *, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Channel-masked bit-flips: every element of a ``rate`` fraction of
    last-axis channels gets one random bit flipped.  Returns a new array."""

    return apply_fault(arr, surface="channel", kind="bitflip", rate=rate, rng=rng)


def inject_bitflips_element(arr: np.ndarray, *, count: int, rng: np.random.Generator) -> np.ndarray:
    """Element-addressed bit-flips: exactly ``count`` addressed cells each
    get one random bit flipped.  Returns a new array."""

    return apply_fault(arr, surface="element", kind="bitflip", count=count, rng=rng)


def inject_quantize(arr: np.ndarray, *, step: float) -> np.ndarray:
    """Quantization-style rounding perturbation: snap every element to the
    nearest multiple of ``step``.  Deterministic; returns a new float64 array."""

    out = np.asarray(arr, dtype=np.float64).copy()
    if step > 0:
        out = np.round(out / step) * step
    return out


def inject_stuck_at(arr: np.ndarray, *, rate: float, value: int, rng: np.random.Generator) -> np.ndarray:
    """Stuck-at faults: a ``rate`` fraction of elements clamped to 0 or 1."""

    if value not in (0, 1):
        raise ConfigError("fault.value", "out-of-range", f"stuck-at value must be 0 or 1, got {value!r}")
    return apply_fault(arr, surface="tensor", kind="stuck1" if value else "stuck0", rate=rate, rng=rng)


def sanitize_probs(arr: np.ndarray) -> np.ndarray:
    """Repair a faulted probability matrix so downstream code keeps running:
    non-finite → 0, clip to [0, 1], renormalise rows (uniform if a row dies)."""

    out = np.asarray(arr, dtype=np.float64).copy()
    out[~np.isfinite(out)] = 0.0
    np.clip(out, 0.0, 1.0, out=out)
    sums = out.sum(axis=1, keepdims=True)
    dead = sums.reshape(-1) <= 0.0
    out[dead] = 1.0 / out.shape[1]
    sums[dead.reshape(-1)] = 1.0
    return out / sums


def corrupt_file_truncate(src: str | Path, dst: str | Path, *, keep_fraction: float, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` keeping head and tail but cutting bytes from the
    middle — the same damage pattern observed in the seed cache."""

    data = Path(src).read_bytes()
    rng = np.random.default_rng(seed)
    keep = max(8, int(len(data) * keep_fraction))
    cut = len(data) - keep
    if cut > 0:
        start = int(rng.integers(4, max(5, keep // 2)))
        data = data[:start] + data[start + cut :]
    dst = Path(dst)
    dst.write_bytes(data)
    return dst


def corrupt_file_header(src: str | Path, dst: str | Path, *, n_bytes: int = 4, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` and overwrite the first ``n_bytes`` with noise."""

    dst = Path(dst)
    shutil.copyfile(src, dst)
    rng = np.random.default_rng(seed)
    with open(dst, "r+b") as fh:
        fh.write(bytes(int(b) for b in rng.integers(0, 256, size=n_bytes)))
    return dst


def measure_degradation(
    store: ArtifactStore,
    model: str,
    spec,
    *,
    members: list[str] | None = None,
    seed: int = 0,
    runtime: EnsembleRuntime | None = None,
) -> dict:
    """Clean-vs-faulted misprediction-detection metrics for one model.

    ``spec`` is any seeded fault — a :class:`FaultSpec` or a
    :class:`polygraphmr.scenarios.ScenarioFault`; it needs ``apply(arr)``,
    ``describe()``, and (optionally) a ``target`` attribute.

    Trains the decision module on clean ``val`` data, then evaluates on the
    clean ``test`` split and on a faulted copy.  For ``target="probs"``
    (the default) the fault lands in every member's probability tensor,
    sanitised back onto the simplex so the module sees plausible-but-wrong
    inputs rather than crashing.  For ``target="weights"`` the *decision
    gate itself* runs on faulty hardware: the module's fitted weight vector
    is perturbed while the inputs stay clean.

    Pass ``runtime`` to reuse one :class:`EnsembleRuntime` across many
    calls — the campaign runner does this so its circuit-breaker board
    accumulates state over trials instead of resetting every time.
    """

    if runtime is None:
        runtime = EnsembleRuntime(store, seed=seed)
    if runtime.breakers is not None:
        runtime.breakers.tick()
    plan = members if members is not None else runtime.member_plan(model)
    val = runtime.assemble(model, "val", members=plan)
    test = runtime.assemble(model, "test", members=plan)
    common = [s for s in val.members if s in set(test.members)]
    if "ORG" not in common:
        raise ValueError(f"model {model!r}: ORG did not survive validation; cannot define targets")
    val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
    test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)

    val_labels = store.load_labels(model, "val")
    test_labels = store.load_labels(model, "test")
    if val_labels is None or test_labels is None:
        raise ValueError(f"model {model!r}: labels required to measure detection quality")

    module = LogisticDecisionModule(seed=seed)
    org_i = common.index("ORG")
    module.fit(ensemble_features(val_stack), misprediction_targets(val_stack[org_i], val_labels))

    clean_features = ensemble_features(test_stack)
    clean_targets = misprediction_targets(test_stack[org_i], test_labels)
    clean_flags = module.predict(clean_features)
    clean = module.evaluate(clean_features, clean_targets)

    if getattr(spec, "target", "probs") == "weights":
        pristine = module.w
        try:
            module.w = np.asarray(spec.apply(pristine), dtype=np.float64)
            faulted_flags = module.predict(clean_features)
            faulted = module.evaluate(clean_features, clean_targets)
        finally:
            module.w = pristine
    else:
        faulted_stack = np.stack([sanitize_probs(spec.apply(test_stack[i])) for i in range(len(common))], axis=0)
        faulted_features = ensemble_features(faulted_stack)
        faulted_targets = misprediction_targets(faulted_stack[org_i], test_labels)
        faulted_flags = module.predict(faulted_features)
        faulted = module.evaluate(faulted_features, faulted_targets)
    return {
        "model": model,
        "members": common,
        "degraded": bool(val.degraded or test.degraded),
        "fault": spec.describe(),
        "clean": clean.to_dict(),
        "faulted": faulted.to_dict(),
        # the gate "overrides" ORG wherever it flags a misprediction; the
        # flag rate under fault is the ensemble's override pressure
        "override": {
            "clean": round(float(clean_flags.mean()), 6),
            "faulted": round(float(faulted_flags.mean()), 6),
        },
        "delta": {
            k: round(faulted.to_dict()[k] - clean.to_dict()[k], 6)
            for k in ("accuracy", "precision", "recall", "f1", "auc")
        },
    }


# -- synthetic demo cache (the seed cache has zero valid artifacts) --------


def build_synthetic_model(
    root: str | Path,
    model: str = "synthetic",
    *,
    members: tuple[str, ...] = ("ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX", "replica-001"),
    n_val: int = 200,
    n_test: int = 200,
    n_classes: int = 10,
    seed: int = 0,
) -> Path:
    """Write a small, fully-valid model directory for demos and tests.

    Samples share a per-example difficulty, so on hard inputs every member's
    probabilities blur together — giving the decision module a real
    disagreement signal to learn, as in the paper's setting.
    """

    rng = np.random.default_rng(seed)
    mdir = Path(root) / model
    mdir.mkdir(parents=True, exist_ok=True)
    for split, n in (("val", n_val), ("test", n_test)):
        labels = rng.integers(0, n_classes, size=n)
        difficulty = rng.uniform(0.0, 1.0, size=n)
        np.savez(mdir / f"labels.{split}.npz", labels=labels)
        for stem in members:
            signal = 4.0 * (1.1 - difficulty)[:, None]
            logits = rng.normal(0.0, 1.0, size=(n, n_classes))
            logits[np.arange(n), labels] += signal[:, 0]
            z = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
            np.savez(mdir / f"{stem}.{split}.probs.npz", probs=probs.astype(np.float32))
    for stem in members:
        np.savez(
            mdir / f"{stem}.weights.npz",
            dense=rng.normal(size=(16, n_classes)).astype(np.float32),
            bias=np.zeros(n_classes, dtype=np.float32),
        )
    (mdir / "greedy-4.json").write_text(json.dumps(["ORG", "Gamma(2)", "Hist", "FlipX"]))
    return mdir


# -- CLI -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.faults",
        description="Measure misprediction-detection degradation under injected faults.",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--model", default=None, help="model directory to target (default: every usable model)")
    parser.add_argument("--kind", choices=("bitflip", "gaussian"), default="bitflip")
    parser.add_argument("--rate", type=float, default=0.01, help="bit-flip rate (fraction of elements)")
    parser.add_argument("--sigma", type=float, default=0.05, help="gaussian noise stddev")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|PATH",
        help="inject a named built-in scenario or a scenario config file "
        "(.json/.toml) instead of the --kind/--rate/--sigma whole-tensor fault",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the built-in scenario library (name, surface, kind, sha256) and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema'd machine-readable report (includes scenario id/hash), "
        "mirroring audit_cache.py --json",
    )
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and run against it "
        "(use when the cache has no valid artifacts, e.g. the seed cache)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry (JSON) to this path",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        help="write the run's metrics in Prometheus text format to this path",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="byte budget for the verified-once artifact cache "
        f"(default: {DEFAULT_CACHE_BYTES})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verified-once artifact cache (every load re-reads and re-validates)",
    )
    args = parser.parse_args(argv)

    # Imported here, not at module top: scenarios imports apply_fault from
    # this module, so the package level must stay one-directional.
    from .scenarios import builtin_scenarios, resolve_scenarios

    if args.list_scenarios:
        library = builtin_scenarios()
        if args.json:
            payload = {
                "schema": "polygraphmr/scenario-library/v1",
                "scenarios": [
                    {**s.canonical(), "sha256": s.config_hash()} for s in library.values()
                ],
            }
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            for s in library.values():
                print(f"{s.name}  surface={s.surface} kind={s.kind} target={s.target}  sha256={s.config_hash()[:12]}")
        return 0

    cache = None if args.no_cache else ArtifactCache(args.cache_bytes)
    if args.synthetic is not None:
        build_synthetic_model(args.synthetic, seed=args.seed)
        store = ArtifactStore(args.synthetic, cache=cache)
    else:
        store = ArtifactStore(args.cache, cache=cache)

    scenario = None
    if args.scenario is not None:
        try:
            scenario = resolve_scenarios([args.scenario])[0]
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        spec = scenario.fault(args.seed)
    else:
        spec = FaultSpec(kind=args.kind, rate=args.rate, sigma=args.sigma, seed=args.seed)
    models = [args.model] if args.model else store.models()
    reports = []
    for model in models:
        try:
            reports.append(measure_degradation(store, model, spec, seed=args.seed))
        except Exception as exc:  # noqa: BLE001 - CLI reports, never crashes the sweep
            reports.append({"model": model, "error": repr(exc)})
    registry = get_registry()
    if args.metrics_out:
        registry.write_json(args.metrics_out)
    if args.metrics_prom:
        prom = Path(args.metrics_prom)
        prom.parent.mkdir(parents=True, exist_ok=True)
        prom.write_text(registry.to_prometheus(), encoding="utf-8")
    if args.json:
        payload = {
            "schema": "polygraphmr/faults-report/v1",
            "scenario": None
            if scenario is None
            else {"name": scenario.name, "sha256": scenario.config_hash(), **scenario.canonical()},
            "fault": spec.describe(),
            "reports": reports,
        }
        json.dump(payload, sys.stdout, indent=2)
    else:
        json.dump({"reports": reports}, sys.stdout, indent=2)
    sys.stdout.write("\n")
    usable = [r for r in reports if "error" not in r]
    return 0 if usable else 1


if __name__ == "__main__":
    raise SystemExit(main())
