"""MRFI-style multi-resolution fault-injection harness.

Three families of injectors, all seeded and reproducible:

* **Tensor-level** — random bit-flips in the float32 mantissa/exponent/sign
  bits and additive gaussian noise, applied to loaded probability or weight
  tensors.  Used to measure how misprediction-detection quality degrades as
  the ensemble's inputs are perturbed.
* **Multi-resolution surfaces** (MRFI) — the same fault models addressed at
  finer granularities: channel-masked injection (a fraction of last-axis
  channels/columns, every element within a hit channel faulted) and
  element-addressed injection (a fixed count of addressed cells), plus
  quantization-style rounding perturbation and stuck-at-0/1 faults.
  :func:`apply_fault` is the one surface × fault-model dispatch the
  declarative :mod:`polygraphmr.scenarios` subsystem drives.
* **Artifact-level** — byte truncation and header damage applied to copies
  of ``.npz`` files, used to exercise the store's quarantine path.

Run ``python -m polygraphmr.faults --help`` for the measurement CLI.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .cache import DEFAULT_CACHE_BYTES, ArtifactCache
from .decision import LogisticDecisionModule, ensemble_features, misprediction_targets
from .ensemble import EnsembleRuntime
from .errors import ConfigError
from .metrics import get_registry
from .store import ArtifactStore

__all__ = [
    "SURFACES",
    "FAULT_MODELS",
    "FAULT_SPEC_KINDS",
    "FaultSpec",
    "select_fault_indices",
    "select_fault_indices_batch",
    "apply_fault",
    "apply_fault_batch",
    "inject_bitflips",
    "inject_bitflips_channel",
    "inject_bitflips_element",
    "inject_gaussian",
    "inject_quantize",
    "inject_stuck_at",
    "sanitize_probs",
    "sanitize_probs_batch",
    "corrupt_file_truncate",
    "corrupt_file_header",
    "DegradationContext",
    "prepare_degradation",
    "degradation_payload",
    "degradation_report",
    "measure_degradation",
    "main",
]

SURFACES = ("tensor", "channel", "element")
FAULT_MODELS = ("bitflip", "gaussian", "quantize", "stuck0", "stuck1")
FAULT_SPEC_KINDS = ("bitflip", "gaussian")


def _require_number(field: str, value, *, low: float | None = None, high: float | None = None) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or not np.isfinite(value):
        raise ConfigError(field, "bad-type", f"expected a finite number, got {value!r}")
    if low is not None and value < low:
        raise ConfigError(field, "out-of-range", f"must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ConfigError(field, "out-of-range", f"must be <= {high}, got {value!r}")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of a tensor-level fault campaign.

    The simple whole-tensor spec the legacy ``--kind/--rate/--sigma`` sweep
    uses; surface-aware faults live in :class:`polygraphmr.scenarios.Scenario`.
    Parameters are validated at construction: an unknown ``kind`` or an
    out-of-range ``rate``/``sigma`` raises :class:`~polygraphmr.errors.ConfigError`
    naming the offending field, instead of a deep ``ValueError`` mid-sweep.
    """

    kind: str  # "bitflip" | "gaussian"
    rate: float = 0.0  # bitflip: fraction of elements hit
    sigma: float = 0.0  # gaussian: noise stddev
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_SPEC_KINDS:
            raise ConfigError(
                "fault.kind",
                "unknown-kind",
                f"got {self.kind!r}; known kinds: {', '.join(FAULT_SPEC_KINDS)} "
                "(surface-aware kinds like quantize/stuck0/stuck1 are Scenario-only)",
            )
        _require_number("fault.rate", self.rate, low=0.0, high=1.0)
        _require_number("fault.sigma", self.sigma, low=0.0)

    def apply(self, arr: np.ndarray) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.kind == "bitflip":
            return inject_bitflips(arr, rate=self.rate, rng=rng)
        return inject_gaussian(arr, sigma=self.sigma, rng=rng)

    def apply_batch(self, stacked: np.ndarray, *, seeds=None) -> np.ndarray:
        """Batched :meth:`apply`: ``out[b]`` is bit-identical to
        ``FaultSpec(..., seed=seeds[b]).apply(stacked[b])``.  ``seeds``
        defaults to ``self.seed`` for every batch slice (the per-member
        tiling of one trial); the input is never mutated."""

        stacked = np.asarray(stacked)
        if stacked.ndim < 2:
            raise ConfigError("fault.batch", "bad-shape", f"need a batch axis, got shape {stacked.shape}")
        seeds = _batch_seeds(self.seed, stacked.shape[0], seeds)
        if self.kind == "bitflip":
            # inject_bitflips draws the same (choice, integers) stream as the
            # tensor-surface bitflip path, including the no-draw early return
            # when the rate rounds to zero hits
            return apply_fault_batch(stacked, surface="tensor", kind="bitflip", rate=self.rate, seeds=seeds)
        # inject_gaussian adds noise to the *whole* tensor (no index
        # selection), so it gets its own full-tensor batched path
        out = np.asarray(stacked, dtype=np.float64).copy()
        noise_for: dict[int, np.ndarray] = {}
        for b, seed in enumerate(seeds):
            noise = noise_for.get(seed)
            if noise is None:
                rng = np.random.default_rng(seed)
                noise = noise_for[seed] = rng.normal(0.0, self.sigma, size=out.shape[1:])
            out[b] += noise
        return out

    def describe(self) -> dict:
        """The journalled ``fault`` stanza of a degradation report."""

        return {"kind": self.kind, "rate": self.rate, "sigma": self.sigma, "seed": self.seed}


def inject_bitflips(arr: np.ndarray, *, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Flip one random bit in a ``rate`` fraction of float32 elements.

    Returns a new array; the input is never mutated.  Flips hit the raw IEEE
    bit pattern, so a single flip can turn a probability into ``inf`` or a
    denormal — exactly the silent-data-corruption model from the fault
    injection literature.
    """

    out = np.ascontiguousarray(arr, dtype=np.float32).copy()
    flat = out.reshape(-1)
    n_hit = int(round(rate * flat.size))
    if n_hit == 0:
        return out.reshape(arr.shape)
    idx = rng.choice(flat.size, size=n_hit, replace=False)
    bits = rng.integers(0, 32, size=n_hit, dtype=np.uint32)
    view = flat.view(np.uint32)
    view[idx] ^= (np.uint32(1) << bits)
    return out.reshape(arr.shape)


def inject_gaussian(arr: np.ndarray, *, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Additive zero-mean gaussian noise; returns a new float64 array."""

    out = np.asarray(arr, dtype=np.float64).copy()
    return out + rng.normal(0.0, sigma, size=out.shape)


# -- multi-resolution surfaces (MRFI) --------------------------------------


def select_fault_indices(
    shape: tuple[int, ...], surface: str, *, rate: float = 0.0, count: int = 0, rng: np.random.Generator
) -> np.ndarray:
    """Flat element indices an injection surface selects on a tensor.

    * ``tensor`` — a ``rate`` fraction of *all* elements, drawn without
      replacement (the whole tensor is the blast radius).
    * ``channel`` — a ``rate`` fraction of last-axis channels/columns;
      every element of a hit channel is selected (channel-masked faults,
      e.g. a dead feature-map plane or a stuck output class column).
    * ``element`` — exactly ``count`` addressed cells, modelling a small
      set of specific faulty storage locations rather than a rate.

    Selection is a pure function of ``(shape, surface, rate/count, rng
    state)`` — the property every scenario's determinism rides on.
    """

    size = int(np.prod(shape)) if shape else 0
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if surface == "tensor":
        n = int(round(rate * size))
        return rng.choice(size, size=n, replace=False) if n else np.empty(0, dtype=np.int64)
    if surface == "element":
        n = min(int(count), size)
        return rng.choice(size, size=n, replace=False) if n else np.empty(0, dtype=np.int64)
    if surface == "channel":
        n_channels = shape[-1] if len(shape) >= 2 else size
        n = int(round(rate * n_channels))
        if n == 0:
            return np.empty(0, dtype=np.int64)
        channels = np.sort(rng.choice(n_channels, size=n, replace=False))
        rows = size // n_channels
        return (np.arange(rows, dtype=np.int64)[:, None] * n_channels + channels[None, :]).reshape(-1)
    raise ConfigError("scenario.surface", "unknown-surface", f"got {surface!r}; known surfaces: {', '.join(SURFACES)}")


def _batch_seeds(default: int, n: int, seeds) -> list[int]:
    if seeds is None:
        return [int(default)] * n
    seeds = [int(s) for s in seeds]
    if len(seeds) != n:
        raise ConfigError(
            "fault.seeds", "bad-shape", f"got {len(seeds)} seeds for a batch of {n}"
        )
    return seeds


def select_fault_indices_batch(
    shape: tuple[int, ...], surface: str, *, rate: float = 0.0, count: int = 0, seeds
) -> np.ndarray:
    """Per-trial fault selections for a batch, one row per seed.

    Row ``b`` equals ``select_fault_indices(shape, surface, ...,
    rng=np.random.default_rng(seeds[b]))`` exactly — each seed gets its own
    independent ``Generator`` stream so the draws replay the serial ones
    bit-for-bit.  The row width is uniform across the batch because the
    selection *count* is a pure function of ``(shape, surface, rate/count)``;
    draws are memoized per unique seed, so the per-member tiling of one
    trial (every member shares the trial's fault seed) draws only once.
    """

    rows: dict[int, np.ndarray] = {}
    out = []
    for seed in (int(s) for s in seeds):
        row = rows.get(seed)
        if row is None:
            rng = np.random.default_rng(seed)
            row = rows[seed] = select_fault_indices(shape, surface, rate=rate, count=count, rng=rng)
        out.append(row)
    if not out:
        return np.empty((0, 0), dtype=np.int64)
    return np.stack(out, axis=0)


def apply_fault(
    arr: np.ndarray,
    *,
    surface: str,
    kind: str,
    rate: float = 0.0,
    sigma: float = 0.0,
    step: float = 0.0,
    count: int = 0,
    rng: np.random.Generator,
) -> np.ndarray:
    """One surface × fault-model injection; returns a new array, the input
    is never mutated.

    ``bitflip`` flips one random IEEE-754 bit per selected float32 element;
    ``gaussian`` adds N(0, sigma) to the selected elements; ``quantize``
    snaps them to the nearest multiple of ``step`` (a storage-grid rounding
    perturbation, e.g. ``step=1/16`` ≈ 4-bit cells); ``stuck0``/``stuck1``
    clamp them to 0.0 / 1.0.  The surface decides *which* elements those
    are (:func:`select_fault_indices`).
    """

    if kind == "bitflip":
        out = np.ascontiguousarray(arr, dtype=np.float32).copy()
    else:
        out = np.asarray(arr, dtype=np.float64).copy()
    idx = select_fault_indices(out.shape, surface, rate=rate, count=count, rng=rng)
    if idx.size == 0:
        return out
    flat = out.reshape(-1)
    if kind == "bitflip":
        bits = rng.integers(0, 32, size=idx.size, dtype=np.uint32)
        flat.view(np.uint32)[idx] ^= np.uint32(1) << bits
    elif kind == "gaussian":
        flat[idx] += rng.normal(0.0, sigma, size=idx.size)
    elif kind == "quantize":
        flat[idx] = np.round(flat[idx] / step) * step
    elif kind == "stuck0":
        flat[idx] = 0.0
    elif kind == "stuck1":
        flat[idx] = 1.0
    else:
        raise ConfigError("scenario.kind", "unknown-kind", f"got {kind!r}; known kinds: {', '.join(FAULT_MODELS)}")
    return out


def apply_fault_batch(
    stacked: np.ndarray,
    *,
    surface: str,
    kind: str,
    rate: float = 0.0,
    sigma: float = 0.0,
    step: float = 0.0,
    count: int = 0,
    seeds,
) -> np.ndarray:
    """:func:`apply_fault` with a leading batch axis; the input is never
    mutated.

    ``out[b]`` is bit-identical to ``apply_fault(stacked[b], ...,
    rng=np.random.default_rng(seeds[b]))``.  The random draws (index
    selection plus bit positions / noise values) must replay each seed's
    serial ``Generator`` stream, so those stay per-seed — memoized per
    *unique* seed, which makes the per-member tiling of one trial draw
    once, not once per member — while the dtype conversion and the element
    mutations run as single vectorized operations across the whole batch.
    """

    stacked = np.asarray(stacked)
    if stacked.ndim < 2:
        raise ConfigError("fault.batch", "bad-shape", f"need a batch axis, got shape {stacked.shape}")
    n_batch = stacked.shape[0]
    seeds = _batch_seeds(0, n_batch, seeds)
    if kind == "bitflip":
        out = np.ascontiguousarray(stacked, dtype=np.float32).copy()
    elif kind in ("gaussian", "quantize", "stuck0", "stuck1"):
        out = np.asarray(stacked, dtype=np.float64).copy()
    else:
        raise ConfigError("scenario.kind", "unknown-kind", f"got {kind!r}; known kinds: {', '.join(FAULT_MODELS)}")
    if n_batch == 0 or out[0].size == 0:
        return out

    # replay each unique seed's serial draw sequence: selection first, then
    # the value draws, in exactly the order apply_fault makes them
    draws: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
    for seed in seeds:
        if seed in draws:
            continue
        rng = np.random.default_rng(seed)
        idx = select_fault_indices(out.shape[1:], surface, rate=rate, count=count, rng=rng)
        vals: np.ndarray | None = None
        if idx.size:
            if kind == "bitflip":
                vals = rng.integers(0, 32, size=idx.size, dtype=np.uint32)
            elif kind == "gaussian":
                vals = rng.normal(0.0, sigma, size=idx.size)
        draws[seed] = (idx, vals)

    if not draws[seeds[0]][0].size:
        # selection count is shape-determined, so it is empty for every seed
        return out

    flat = out.reshape(n_batch, -1)
    idx_all = np.stack([draws[s][0] for s in seeds], axis=0)
    batch_rows = np.arange(n_batch)[:, None]
    if kind == "bitflip":
        bits_all = np.stack([draws[s][1] for s in seeds], axis=0)
        flat.view(np.uint32)[batch_rows, idx_all] ^= np.uint32(1) << bits_all
    elif kind == "gaussian":
        noise_all = np.stack([draws[s][1] for s in seeds], axis=0)
        flat[batch_rows, idx_all] += noise_all
    elif kind == "quantize":
        flat[batch_rows, idx_all] = np.round(flat[batch_rows, idx_all] / step) * step
    elif kind == "stuck0":
        flat[batch_rows, idx_all] = 0.0
    else:
        flat[batch_rows, idx_all] = 1.0
    return out


def inject_bitflips_channel(arr: np.ndarray, *, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Channel-masked bit-flips: every element of a ``rate`` fraction of
    last-axis channels gets one random bit flipped.  Returns a new array."""

    return apply_fault(arr, surface="channel", kind="bitflip", rate=rate, rng=rng)


def inject_bitflips_element(arr: np.ndarray, *, count: int, rng: np.random.Generator) -> np.ndarray:
    """Element-addressed bit-flips: exactly ``count`` addressed cells each
    get one random bit flipped.  Returns a new array."""

    return apply_fault(arr, surface="element", kind="bitflip", count=count, rng=rng)


def inject_quantize(arr: np.ndarray, *, step: float) -> np.ndarray:
    """Quantization-style rounding perturbation: snap every element to the
    nearest multiple of ``step``.  Deterministic; returns a new float64 array."""

    out = np.asarray(arr, dtype=np.float64).copy()
    if step > 0:
        out = np.round(out / step) * step
    return out


def inject_stuck_at(arr: np.ndarray, *, rate: float, value: int, rng: np.random.Generator) -> np.ndarray:
    """Stuck-at faults: a ``rate`` fraction of elements clamped to 0 or 1."""

    if value not in (0, 1):
        raise ConfigError("fault.value", "out-of-range", f"stuck-at value must be 0 or 1, got {value!r}")
    return apply_fault(arr, surface="tensor", kind="stuck1" if value else "stuck0", rate=rate, rng=rng)


def sanitize_probs(arr: np.ndarray) -> np.ndarray:
    """Repair a faulted probability matrix so downstream code keeps running:
    non-finite → 0, clip to [0, 1], renormalise rows (uniform if a row dies)."""

    out = np.asarray(arr, dtype=np.float64).copy()
    out[~np.isfinite(out)] = 0.0
    np.clip(out, 0.0, 1.0, out=out)
    sums = out.sum(axis=1, keepdims=True)
    dead = sums.reshape(-1) <= 0.0
    out[dead] = 1.0 / out.shape[1]
    sums[dead.reshape(-1)] = 1.0
    return out / sums


def sanitize_probs_batch(arr: np.ndarray) -> np.ndarray:
    """:func:`sanitize_probs` over any number of leading batch axes.

    Rows live on the *last* axis, so for a stack of probability matrices
    ``out[b] == sanitize_probs(arr[b])`` bit-for-bit (the clip, the dead-row
    uniform fill, and the renormalising divide are all elementwise)."""

    out = np.asarray(arr, dtype=np.float64).copy()
    out[~np.isfinite(out)] = 0.0
    np.clip(out, 0.0, 1.0, out=out)
    sums = out.sum(axis=-1, keepdims=True)
    dead = sums <= 0.0
    if dead.any():
        out = np.where(dead, 1.0 / out.shape[-1], out)
        sums = np.where(dead, 1.0, sums)
    return out / sums


def corrupt_file_truncate(src: str | Path, dst: str | Path, *, keep_fraction: float, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` keeping head and tail but cutting bytes from the
    middle — the same damage pattern observed in the seed cache."""

    data = Path(src).read_bytes()
    rng = np.random.default_rng(seed)
    keep = max(8, int(len(data) * keep_fraction))
    cut = len(data) - keep
    if cut > 0:
        start = int(rng.integers(4, max(5, keep // 2)))
        data = data[:start] + data[start + cut :]
    dst = Path(dst)
    dst.write_bytes(data)
    return dst


def corrupt_file_header(src: str | Path, dst: str | Path, *, n_bytes: int = 4, seed: int = 0) -> Path:
    """Copy ``src`` to ``dst`` and overwrite the first ``n_bytes`` with noise."""

    dst = Path(dst)
    shutil.copyfile(src, dst)
    rng = np.random.default_rng(seed)
    with open(dst, "r+b") as fh:
        fh.write(bytes(int(b) for b in rng.integers(0, 256, size=n_bytes)))
    return dst


@dataclass
class DegradationContext:
    """The fault-independent half of a degradation measurement: assembled
    test stack, fitted decision module, and clean-split metrics for one
    model.  Prepared once and shared across every fault evaluated against
    the same (model, breaker-steady) state — the batch kernel's amortized
    work; :func:`degradation_report` supplies the per-fault half."""

    model: str
    members: list[str]
    degraded: bool
    module: LogisticDecisionModule
    org_i: int
    test_labels: np.ndarray
    test_stack: np.ndarray
    clean_features: np.ndarray
    clean_targets: np.ndarray
    clean_flags: np.ndarray
    clean: "object"


def prepare_degradation(
    store: ArtifactStore,
    model: str,
    *,
    members: list[str] | None = None,
    seed: int = 0,
    runtime: EnsembleRuntime | None = None,
    tick: bool = True,
) -> DegradationContext:
    """Assemble, fit, and measure the clean baseline for one model.

    ``tick=False`` skips the breaker-board tick — the batch kernel ticks
    once per *trial* itself, so its one shared context prep must not
    advance the board.
    """

    if runtime is None:
        runtime = EnsembleRuntime(store, seed=seed)
    if tick and runtime.breakers is not None:
        runtime.breakers.tick()
    plan = members if members is not None else runtime.member_plan(model)
    val = runtime.assemble(model, "val", members=plan)
    test = runtime.assemble(model, "test", members=plan)
    common = [s for s in val.members if s in set(test.members)]
    if "ORG" not in common:
        raise ValueError(f"model {model!r}: ORG did not survive validation; cannot define targets")
    val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
    test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)

    val_labels = store.load_labels(model, "val")
    test_labels = store.load_labels(model, "test")
    if val_labels is None or test_labels is None:
        raise ValueError(f"model {model!r}: labels required to measure detection quality")

    module = LogisticDecisionModule(seed=seed)
    org_i = common.index("ORG")
    module.fit(ensemble_features(val_stack), misprediction_targets(val_stack[org_i], val_labels))

    clean_features = ensemble_features(test_stack)
    clean_targets = misprediction_targets(test_stack[org_i], test_labels)
    clean_flags = module.predict(clean_features)
    clean = module.evaluate(clean_features, clean_targets)
    return DegradationContext(
        model=model,
        members=common,
        degraded=bool(val.degraded or test.degraded),
        module=module,
        org_i=org_i,
        test_labels=test_labels,
        test_stack=test_stack,
        clean_features=clean_features,
        clean_targets=clean_targets,
        clean_flags=clean_flags,
        clean=clean,
    )


def degradation_payload(ctx: DegradationContext, spec, faulted, faulted_flags: np.ndarray) -> dict:
    """The journalled report dict for one fault against a prepared context.

    Shared by the serial path and the batch kernel so both emit the same
    bytes for the same metric values."""

    return {
        "model": ctx.model,
        "members": ctx.members,
        "degraded": ctx.degraded,
        "fault": spec.describe(),
        "clean": ctx.clean.to_dict(),
        "faulted": faulted.to_dict(),
        # the gate "overrides" ORG wherever it flags a misprediction; the
        # flag rate under fault is the ensemble's override pressure
        "override": {
            "clean": round(float(ctx.clean_flags.mean()), 6),
            "faulted": round(float(faulted_flags.mean()), 6),
        },
        "delta": {
            k: round(faulted.to_dict()[k] - ctx.clean.to_dict()[k], 6)
            for k in ("accuracy", "precision", "recall", "f1", "auc")
        },
    }


def degradation_report(ctx: DegradationContext, spec) -> dict:
    """Evaluate one fault spec against a prepared context (serial path)."""

    module = ctx.module
    if getattr(spec, "target", "probs") == "weights":
        pristine = module.w
        try:
            module.w = np.asarray(spec.apply(pristine), dtype=np.float64)
            faulted_flags = module.predict(ctx.clean_features)
            faulted = module.evaluate(ctx.clean_features, ctx.clean_targets)
        finally:
            module.w = pristine
    else:
        faulted_stack = np.stack(
            [sanitize_probs(spec.apply(ctx.test_stack[i])) for i in range(len(ctx.members))], axis=0
        )
        faulted_features = ensemble_features(faulted_stack)
        faulted_targets = misprediction_targets(faulted_stack[ctx.org_i], ctx.test_labels)
        faulted_flags = module.predict(faulted_features)
        faulted = module.evaluate(faulted_features, faulted_targets)
    return degradation_payload(ctx, spec, faulted, faulted_flags)


def measure_degradation(
    store: ArtifactStore,
    model: str,
    spec,
    *,
    members: list[str] | None = None,
    seed: int = 0,
    runtime: EnsembleRuntime | None = None,
) -> dict:
    """Clean-vs-faulted misprediction-detection metrics for one model.

    ``spec`` is any seeded fault — a :class:`FaultSpec` or a
    :class:`polygraphmr.scenarios.ScenarioFault`; it needs ``apply(arr)``,
    ``describe()``, and (optionally) a ``target`` attribute.

    Trains the decision module on clean ``val`` data, then evaluates on the
    clean ``test`` split and on a faulted copy.  For ``target="probs"``
    (the default) the fault lands in every member's probability tensor,
    sanitised back onto the simplex so the module sees plausible-but-wrong
    inputs rather than crashing.  For ``target="weights"`` the *decision
    gate itself* runs on faulty hardware: the module's fitted weight vector
    is perturbed while the inputs stay clean.

    Pass ``runtime`` to reuse one :class:`EnsembleRuntime` across many
    calls — the campaign runner does this so its circuit-breaker board
    accumulates state over trials instead of resetting every time.
    """

    ctx = prepare_degradation(store, model, members=members, seed=seed, runtime=runtime)
    return degradation_report(ctx, spec)


# -- synthetic demo cache (the seed cache has zero valid artifacts) --------


def build_synthetic_model(
    root: str | Path,
    model: str = "synthetic",
    *,
    members: tuple[str, ...] = ("ORG", "pp-Gamma_2", "pp-Hist", "pp-FlipX", "replica-001"),
    n_val: int = 200,
    n_test: int = 200,
    n_classes: int = 10,
    seed: int = 0,
) -> Path:
    """Write a small, fully-valid model directory for demos and tests.

    Samples share a per-example difficulty, so on hard inputs every member's
    probabilities blur together — giving the decision module a real
    disagreement signal to learn, as in the paper's setting.
    """

    rng = np.random.default_rng(seed)
    mdir = Path(root) / model
    mdir.mkdir(parents=True, exist_ok=True)
    for split, n in (("val", n_val), ("test", n_test)):
        labels = rng.integers(0, n_classes, size=n)
        difficulty = rng.uniform(0.0, 1.0, size=n)
        np.savez(mdir / f"labels.{split}.npz", labels=labels)
        for stem in members:
            signal = 4.0 * (1.1 - difficulty)[:, None]
            logits = rng.normal(0.0, 1.0, size=(n, n_classes))
            logits[np.arange(n), labels] += signal[:, 0]
            z = logits - logits.max(axis=1, keepdims=True)
            probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
            np.savez(mdir / f"{stem}.{split}.probs.npz", probs=probs.astype(np.float32))
    for stem in members:
        np.savez(
            mdir / f"{stem}.weights.npz",
            dense=rng.normal(size=(16, n_classes)).astype(np.float32),
            bias=np.zeros(n_classes, dtype=np.float32),
        )
    (mdir / "greedy-4.json").write_text(json.dumps(["ORG", "Gamma(2)", "Hist", "FlipX"]))
    return mdir


# -- CLI -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m polygraphmr.faults",
        description="Measure misprediction-detection degradation under injected faults.",
    )
    parser.add_argument("--cache", default=".repro_cache", help="cache root (default: .repro_cache)")
    parser.add_argument("--model", default=None, help="model directory to target (default: every usable model)")
    parser.add_argument("--kind", choices=("bitflip", "gaussian"), default="bitflip")
    parser.add_argument("--rate", type=float, default=0.01, help="bit-flip rate (fraction of elements)")
    parser.add_argument("--sigma", type=float, default=0.05, help="gaussian noise stddev")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|PATH",
        help="inject a named built-in scenario or a scenario config file "
        "(.json/.toml) instead of the --kind/--rate/--sigma whole-tensor fault",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the built-in scenario library (name, surface, kind, sha256) and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the schema'd machine-readable report (includes scenario id/hash), "
        "mirroring audit_cache.py --json",
    )
    parser.add_argument(
        "--synthetic",
        metavar="DIR",
        default=None,
        help="build a synthetic model under DIR and run against it "
        "(use when the cache has no valid artifacts, e.g. the seed cache)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry (JSON) to this path",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        help="write the run's metrics in Prometheus text format to this path",
    )
    parser.add_argument(
        "--cache-bytes",
        type=int,
        default=DEFAULT_CACHE_BYTES,
        help="byte budget for the verified-once artifact cache "
        f"(default: {DEFAULT_CACHE_BYTES})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the verified-once artifact cache (every load re-reads and re-validates)",
    )
    args = parser.parse_args(argv)

    # Imported here, not at module top: scenarios imports apply_fault from
    # this module, so the package level must stay one-directional.
    from .scenarios import builtin_scenarios, resolve_scenarios

    if args.list_scenarios:
        library = builtin_scenarios()
        if args.json:
            payload = {
                "schema": "polygraphmr/scenario-library/v1",
                "scenarios": [
                    {**s.canonical(), "sha256": s.config_hash()} for s in library.values()
                ],
            }
            json.dump(payload, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            for s in library.values():
                print(f"{s.name}  surface={s.surface} kind={s.kind} target={s.target}  sha256={s.config_hash()[:12]}")
        return 0

    cache = None if args.no_cache else ArtifactCache(args.cache_bytes)
    if args.synthetic is not None:
        build_synthetic_model(args.synthetic, seed=args.seed)
        store = ArtifactStore(args.synthetic, cache=cache)
    else:
        store = ArtifactStore(args.cache, cache=cache)

    scenario = None
    if args.scenario is not None:
        try:
            scenario = resolve_scenarios([args.scenario])[0]
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        spec = scenario.fault(args.seed)
    else:
        spec = FaultSpec(kind=args.kind, rate=args.rate, sigma=args.sigma, seed=args.seed)
    models = [args.model] if args.model else store.models()
    reports = []
    for model in models:
        try:
            reports.append(measure_degradation(store, model, spec, seed=args.seed))
        except Exception as exc:  # noqa: BLE001 - CLI reports, never crashes the sweep
            reports.append({"model": model, "error": repr(exc)})
    registry = get_registry()
    if args.metrics_out:
        registry.write_json(args.metrics_out)
    if args.metrics_prom:
        prom = Path(args.metrics_prom)
        prom.parent.mkdir(parents=True, exist_ok=True)
        prom.write_text(registry.to_prometheus(), encoding="utf-8")
    if args.json:
        payload = {
            "schema": "polygraphmr/faults-report/v1",
            "scenario": None
            if scenario is None
            else {"name": scenario.name, "sha256": scenario.config_hash(), **scenario.canonical()},
            "fault": spec.describe(),
            "reports": reports,
        }
        json.dump(payload, sys.stdout, indent=2)
    else:
        json.dump({"reports": reports}, sys.stdout, indent=2)
    sys.stdout.write("\n")
    usable = [r for r in reports if "error" not in r]
    return 0 if usable else 1


if __name__ == "__main__":
    raise SystemExit(main())
