"""Structured error taxonomy and bounded retry for PolygraphMR.

Every failure surfaced by the artifact store or ensemble runtime is an
instance of :class:`PolygraphError` carrying a machine-readable ``reason``
code, so callers (and the audit tooling) can aggregate failures without
parsing message strings.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from .metrics import get_registry

__all__ = [
    "PolygraphError",
    "ArtifactError",
    "ArtifactCorrupt",
    "ArtifactMissing",
    "IntegrityMismatch",
    "DegradedEnsemble",
    "TransientIOError",
    "CampaignError",
    "ConfigError",
    "ServeError",
    "RetryPolicy",
    "retry_with_backoff",
]


class PolygraphError(Exception):
    """Base class for every error raised by polygraphmr.

    Construction increments the error-taxonomy counter
    ``errors_total{type, reason}`` — every subclass funnels through here, so
    the counter is the machine-readable failure census the ``reason`` codes
    were designed for.  Subclasses that carry a ``reason`` set it *before*
    calling ``super().__init__``, which is what makes the label available.
    """

    def __init__(self, *args):
        super().__init__(*args)
        get_registry().counter(
            "errors_total", type=type(self).__name__, reason=str(getattr(self, "reason", ""))
        ).inc()


class ArtifactError(PolygraphError):
    """A problem with a single on-disk artifact.

    Parameters
    ----------
    path:
        Filesystem path of the offending artifact.
    reason:
        Short machine-readable code, e.g. ``"bad-zip"``, ``"not-found"``,
        ``"probs-not-simplex"``.
    detail:
        Optional human-readable elaboration.
    """

    def __init__(self, path: str | Path, reason: str, detail: str = ""):
        self.path = str(path)
        self.reason = reason
        self.detail = detail
        msg = f"{self.path}: {reason}"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


class ArtifactCorrupt(ArtifactError):
    """The artifact exists but its bytes are not a loadable archive."""


class ArtifactMissing(ArtifactError):
    """An expected artifact file is absent from the cache."""

    def __init__(self, path: str | Path, reason: str = "not-found", detail: str = ""):
        super().__init__(path, reason, detail)


class IntegrityMismatch(ArtifactError):
    """The artifact loads, but its contents violate a semantic invariant
    (wrong shape, non-finite values, probability rows not on the simplex)."""


class DegradedEnsemble(PolygraphError):
    """The ensemble cannot run even in degraded mode (too few members)."""

    def __init__(self, model: str, available: Sequence[str], required: int):
        self.model = model
        self.available = list(available)
        self.required = required
        super().__init__(
            f"model {model!r}: only {len(self.available)} usable member(s) "
            f"{self.available}, need >= {required}"
        )


class TransientIOError(PolygraphError):
    """Raised when bounded retries on a transient IO failure are exhausted."""

    def __init__(self, path: str | Path, attempts: int, last: BaseException):
        self.path = str(path)
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"{self.path}: gave up after {attempts} attempt(s): {last!r}"
        )


class CampaignError(PolygraphError):
    """A fault-injection campaign cannot proceed.  Carries a machine-readable
    ``reason``; codes in use include ``journal-bad-checksum`` /
    ``journal-unparseable-line`` (committed journal history was altered),
    ``journal-chain-broken`` (a record's ``prev`` does not link to its
    predecessor's seal — or the checkpoint-sealed chain head disagrees with
    the journal), ``journal-no-header``, ``journal-version-mismatch``,
    ``config-mismatch``, ``journal-behind-checkpoint`` (a checkpoint
    committed more records than the journal or a worker shard still holds),
    ``journal-exists``, ``no-models``, and ``bad-workers``."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        msg = reason if not detail else f"{reason} ({detail})"
        super().__init__(msg)


class ServeError(PolygraphError):
    """The serving gateway cannot serve a request or come up.  Carries a
    machine-readable ``reason``; codes in use include ``unknown-model`` (no
    such model directory under the served cache), ``frame-too-large`` (an
    unterminated protocol frame exceeded the bound — the connection's frame
    boundaries can no longer be trusted), and ``no-listener`` (the gateway
    was configured with neither a TCP host nor a unix socket)."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        msg = reason if not detail else f"{reason} ({detail})"
        super().__init__(msg)


class ConfigError(PolygraphError, ValueError):
    """A declarative configuration is invalid — a fault scenario file, a
    :class:`~polygraphmr.faults.FaultSpec`, or a campaign parameter.

    Raised at *construction/parse* time, never deep inside an injection
    loop, so the offending field is named while the full config context is
    still at hand.  Subclasses :class:`ValueError` as well so callers that
    predate the taxonomy (``except ValueError``) keep working.

    Parameters
    ----------
    field:
        Exact path of the offending field, e.g. ``"scenario.rate"`` or
        ``"scenarios/quantize-4bit.toml: scenario.step"``.
    reason:
        Short machine-readable code, e.g. ``"out-of-range"``,
        ``"unknown-kind"``, ``"missing-field"``.
    detail:
        Human-readable elaboration — what was found, what would be valid.
    """

    def __init__(self, field: str, reason: str, detail: str = ""):
        self.field = field
        self.reason = reason
        self.detail = detail
        msg = f"{field}: {reason}"
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)


T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``sleep`` is injectable so tests never actually wait.  The jitter is drawn
    from a PRNG seeded with ``seed`` alone, so the same policy always produces
    the same sleep schedule — a resumed campaign retries exactly like the run
    it replaces.  ``max_total_sleep`` caps the summed backoff of one
    :func:`retry_with_backoff` call so a retry storm cannot stall a sweep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.0  # fraction of each delay added, in [0, 1]
    seed: int = 0
    max_total_sleep: float = 5.0
    retry_on: tuple[type[BaseException], ...] = (OSError,)
    sleep: Callable[[float], None] = field(default=time.sleep)

    def delay_for(self, attempt: int, *, rng: random.Random | None = None) -> float:
        delay = min(self.base_delay * (2**attempt), self.max_delay)
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def schedule(self) -> list[float]:
        """The full (deterministic) sleep schedule this policy would follow,
        after jitter and the total-sleep cap — handy for tests and audits."""

        rng = random.Random(self.seed)
        out: list[float] = []
        budget = self.max_total_sleep
        for attempt in range(max(0, self.attempts - 1)):
            delay = min(self.delay_for(attempt, rng=rng), budget)
            out.append(delay)
            budget -= delay
        return out

    def sleep_budget_clamped(self) -> bool:
        """Whether ``max_total_sleep`` truncates this policy's backoff — i.e.
        the uncapped delays would sleep longer than the budget allows."""

        rng = random.Random(self.seed)
        uncapped = sum(self.delay_for(a, rng=rng) for a in range(max(0, self.attempts - 1)))
        return uncapped > self.max_total_sleep


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    path: str | Path = "<unknown>",
    policy: RetryPolicy | None = None,
) -> T:
    """Call ``fn`` up to ``policy.attempts`` times, backing off between tries.

    Only exceptions listed in ``policy.retry_on`` are retried; anything else
    propagates immediately.  Once attempts are exhausted the last error is
    wrapped in :class:`TransientIOError` so callers can distinguish "the disk
    hiccuped" from "the file is garbage".

    Sleeps follow ``policy.schedule()``: seeded jitter keeps the schedule
    reproducible across runs, and the summed sleep never exceeds
    ``policy.max_total_sleep``.
    """

    policy = policy or RetryPolicy()
    schedule = policy.schedule()
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except policy.retry_on as exc:  # noqa: PERF203 - loop is the point
            last = exc
            get_registry().counter("retry_attempts_total").inc()
            if attempt + 1 < policy.attempts and schedule[attempt] > 0.0:
                policy.sleep(schedule[attempt])
    assert last is not None
    # Exhaustion is a countable event, not just a journalled one: the sweep
    # dashboards need to see retry storms without parsing error strings.
    get_registry().counter("retry_exhausted_total").inc()
    if policy.sleep_budget_clamped():
        get_registry().counter("retry_sleep_budget_exhausted_total").inc()
    raise TransientIOError(path, policy.attempts, last)
