"""Lightweight tracing spans for the campaign/ensemble hot paths.

A :class:`Tracer` hands out context-managed spans — named, attributed,
nested timers — and keeps the most recent completed spans in a bounded
ring buffer.  Spans serve two purposes:

* **Latency attribution** — a span can observe its duration straight into a
  :class:`polygraphmr.metrics.Histogram`, so per-trial / per-load latency
  distributions come for free.
* **Structure** — parent/child links reconstruct where time went inside a
  trial (assemble → decide → inject) without a logging dependency.

Spans are strictly out-of-band, like metrics: they never touch journal or
checkpoint bytes.  Each process has its own tracer (:func:`get_tracer`);
forked campaign workers reset theirs post-fork.  Span stacks are
thread-local, so a watchdog-abandoned trial thread cannot corrupt the main
thread's span nesting.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "Span", "Tracer", "get_tracer", "set_tracer"]

DEFAULT_MAX_SPANS = 4096


@dataclass
class SpanRecord:
    """One completed span; ``start_s`` is relative to the tracer's epoch."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "attrs": dict(self.attrs),
        }


class Span:
    """Mutable handle yielded inside ``with tracer.span(...)``."""

    __slots__ = ("span_id", "parent_id", "name", "attrs")

    def __init__(self, span_id: int, parent_id: int | None, name: str, attrs: dict):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs

    def set(self, **attrs: object) -> Span:
        """Attach attributes discovered mid-span (e.g. the trial outcome)."""

        self.attrs.update(attrs)
        return self


class Tracer:
    """Collects completed spans into a bounded, per-process ring buffer."""

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS):
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self.reset()

    def reset(self) -> None:
        """Drop recorded spans and restart the epoch (post-fork / per test)."""

        with self._lock:
            self._finished: deque[SpanRecord] = deque(maxlen=self.max_spans)
            self._ids = itertools.count(1)
            self._epoch = time.perf_counter()
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, *, observe=None, **attrs: object):
        """Time a block; optionally ``observe`` the duration into a histogram.

        Nesting is tracked per thread: a span opened while another is active
        records that span as its parent.
        """

        with self._lock:
            span_id = next(self._ids)
        stack = self._stack()
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        handle = Span(span_id, parent_id, name, dict(attrs))
        start = time.perf_counter()
        try:
            yield handle
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            record = SpanRecord(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start_s=start - self._epoch,
                duration_s=duration,
                attrs=handle.attrs,
            )
            with self._lock:
                self._finished.append(record)
            if observe is not None:
                observe.observe(duration)

    def finished(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._finished)

    def to_dicts(self) -> list[dict]:
        """Completed spans, oldest first — what the metrics JSON export embeds."""

        return [r.to_dict() for r in self.finished()]

    def absorb(self, records: list[dict]) -> int:
        """Fold another tracer's exported spans (:meth:`to_dicts` output)
        into this ring buffer — how serve pool workers' spans reach the
        parent's export on drain.

        Span ids are remapped onto this tracer's id sequence in two passes
        (assign every absorbed span a fresh id first, then rewrite parent
        links) so intra-batch parent/child structure survives and absorbed
        ids can never collide with locally issued ones.  ``start_s`` stays
        relative to the *source* tracer's epoch — spans are out-of-band
        observability, not a synchronized clock.  Returns the number of
        spans absorbed.
        """

        if not records:
            return 0
        with self._lock:
            remap = {int(r["span_id"]): next(self._ids) for r in records}
            for r in records:
                parent = r.get("parent_id")
                self._finished.append(
                    SpanRecord(
                        span_id=remap[int(r["span_id"])],
                        parent_id=remap.get(int(parent)) if parent is not None else None,
                        name=str(r["name"]),
                        start_s=float(r["start_s"]),
                        duration_s=float(r["duration_s"]),
                        attrs=dict(r.get("attrs", {})),
                    )
                )
        return len(records)


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer the library's hot paths record into."""

    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer (returns the previous one)."""

    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous
