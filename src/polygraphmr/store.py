"""Validated, quarantining artifact store over a ``.repro_cache`` directory.

Layout it understands::

    <root>/<model>/ORG.{val,test}.probs.npz
    <root>/<model>/ORG.weights.npz
    <root>/<model>/pp-<Preproc>.{val,test}.probs.npz     # metamorphic submodels
    <root>/<model>/pp-<Preproc>.weights.npz
    <root>/<model>/replica-00N.{val,test}.probs.npz      # independent replicas
    <root>/<model>/replica-00N.weights.npz
    <root>/<model>/greedy-{4,6}.json                     # selected display names
    <root>/<model>/labels.{val,test}.npz                 # optional ground truth

The store never lets a bad file crash a scan: corrupt artifacts are
quarantined with a structured reason and simply drop out of the usable set.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .cache import ArtifactCache, NegativeEntry
from .errors import ArtifactCorrupt, ArtifactMissing, IntegrityMismatch, RetryPolicy, TransientIOError
from .integrity import check_probs, check_weights, load_npz_validated, probe_artifact
from .metrics import get_registry
from .manifest import (
    CORRUPT,
    MISSING,
    SALVAGED,
    VALID,
    ArtifactRecord,
    ArtifactStatus,
    CacheManifest,
    ModelManifest,
    expected_filenames,
)
from .naming import resolve_greedy_file, standard_roster
from .salvage import SalvageReport, salvage_npz

__all__ = ["ArtifactStore"]

_GREEDY_RE = re.compile(r"^greedy-(\d+)\.json$")
_ARTIFACT_RE = re.compile(r"^(?P<stem>ORG|pp-[^.]+|replica-\d{3})\.(?:(?P<split>val|test)\.probs|weights)\.npz$")


class ArtifactStore:
    """Read-only access to a cache root with validation and quarantine.

    Quarantine is cumulative per store instance: any artifact that fails
    container or semantic validation is recorded in :attr:`quarantine`
    (path → reason) and treated as absent from then on.

    With ``allow_salvaged=True``, an artifact whose *container* is corrupt
    gets one best-effort carving pass (:func:`polygraphmr.salvage.salvage_npz`)
    before quarantine: if the needed arrays survive the cut and pass the same
    semantic checks as a clean load, they are served and the path is recorded
    in :attr:`salvaged` (path → :class:`SalvageReport`) instead.  Semantic
    failures (wrong shape, off-simplex rows) are never salvaged — carving can
    rescue bytes, not meaning.

    With a ``cache`` attached (:class:`~polygraphmr.cache.ArtifactCache`),
    loads memoize their *validated* results keyed by stat signature: a hit
    skips disk I/O, CRC, and the semantic checks entirely, and a path that
    already failed validation is negative-cached so repeat encounters cost
    one ``stat`` instead of a full failed parse.  Caching changes timing
    only — every verdict a cached store reaches (served array, quarantine
    reason, salvage) is the one an uncached store would reach on the same
    bytes.

    **Fork-safety.**  The store keeps no open file handles — every load
    reads whole files into memory — but its quarantine/salvage registries
    are mutable per-instance state.  Multiprocess campaign workers must
    therefore build their *own* store after ``fork`` (see
    :class:`polygraphmr.campaign.TrialExecutor`, which constructs the store
    lazily, and :meth:`fresh` for an explicit re-open) rather than share a
    parent's instance across processes.  The attached ``cache`` is the
    deliberate exception: an :class:`~polygraphmr.cache.ArtifactCache` and
    its optional :class:`~polygraphmr.cache.SharedMemoryPlane` hold only
    immutable validated values keyed by stat signature, so a forked worker
    keeps the parent's plane (zero-copy read-only views into memory the
    parent published and unlinked *before* forking) while rebuilding every
    other piece of store state.  When no plane is available the worker's
    private cache simply starts cold and fills from disk — slower, never
    wrong.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        retry_policy: RetryPolicy | None = None,
        allow_salvaged: bool = False,
        cache: ArtifactCache | None = None,
    ):
        self.root = Path(root)
        self.retry_policy = retry_policy
        self.allow_salvaged = allow_salvaged
        self.cache = cache
        self.quarantine: dict[str, str] = {}
        self.salvaged: dict[str, SalvageReport] = {}

    def fresh(self) -> ArtifactStore:
        """A new store over the same root with the same policy but empty
        quarantine/salvage state — the safe way to hand a store's
        configuration to a forked worker.  The cache is carried over: its
        entries are immutable validated values, safe to share across store
        generations."""

        return ArtifactStore(
            self.root,
            retry_policy=self.retry_policy,
            allow_salvaged=self.allow_salvaged,
            cache=self.cache,
        )

    # -- paths -----------------------------------------------------------

    def model_dir(self, model: str) -> Path:
        return self.root / model

    def models(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def probs_path(self, model: str, stem: str, split: str) -> Path:
        return self.model_dir(model) / f"{stem}.{split}.probs.npz"

    def weights_path(self, model: str, stem: str) -> Path:
        return self.model_dir(model) / f"{stem}.weights.npz"

    # -- quarantine ------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine[str(path)] = reason

    def is_quarantined(self, path: str | Path) -> bool:
        return str(path) in self.quarantine

    def is_salvaged(self, path: str | Path) -> bool:
        return str(path) in self.salvaged

    # -- salvage ---------------------------------------------------------

    def _try_salvage(self, path: Path) -> SalvageReport | None:
        """One carving pass over a container-corrupt artifact, or ``None``."""

        if not self.allow_salvaged:
            return None
        try:
            report = salvage_npz(path)
        except ArtifactMissing:
            return None
        return report if report.ok else None

    # -- loading ---------------------------------------------------------

    @contextmanager
    def _observed_load(self, kind: str):
        """Meter one ``load_*`` call: result counter + latency histogram.

        The yielded mutable dict lets the body refine the success result
        (``hit`` vs ``salvaged``); failure results are classified from the
        exception type.  Strictly out-of-band — observing can never change
        what the load returns or raises.
        """

        obs = {"result": "hit"}
        start = time.perf_counter()
        try:
            yield obs
        except ArtifactMissing:
            obs["result"] = "missing"
            raise
        except TransientIOError:
            obs["result"] = "io-error"
            raise
        except IntegrityMismatch:
            obs["result"] = "mismatch"
            raise
        except ArtifactCorrupt as exc:
            obs["result"] = "quarantined-hit" if exc.detail == "previously quarantined" else "corrupt"
            raise
        finally:
            registry = get_registry()
            registry.counter("store_load_total", kind=kind, result=obs["result"]).inc()
            registry.histogram("store_load_seconds", kind=kind).observe(time.perf_counter() - start)

    def _raise_negative(self, path: Path, neg: NegativeEntry) -> None:
        """Surface a negative-cache verdict the way an uncached store would
        on a repeat encounter: quarantine locally, then raise the remembered
        failure (one ``stat`` paid, no re-parse)."""

        self._quarantine(path, neg.reason)
        if neg.exc_type == "IntegrityMismatch":
            raise IntegrityMismatch(path, neg.reason, neg.detail)
        raise ArtifactCorrupt(path, neg.reason, "previously quarantined")

    def _cache_negative(self, path: Path, exc: ArtifactCorrupt | IntegrityMismatch) -> None:
        if self.cache is not None:
            self.cache.put_negative(
                path, exc_type=type(exc).__name__, reason=exc.reason, detail=exc.detail
            )

    def load_probs(self, model: str, stem: str, split: str, *, n_classes: int | None = None) -> np.ndarray:
        """Load and validate one probability matrix; raises on any problem.

        With a cache attached, a verified hit skips disk I/O, CRC, and the
        simplex checks entirely (load result ``cache-hit``); a negative hit
        re-raises the remembered failure after a single ``stat``.
        """

        path = self.probs_path(model, stem, split)
        with self._observed_load("probs") as obs:
            if self.is_quarantined(path):
                raise ArtifactCorrupt(path, self.quarantine[str(path)], "previously quarantined")
            if self.cache is not None:
                found = self.cache.lookup(path, "probs")
                if isinstance(found, NegativeEntry):
                    self._raise_negative(path, found)
                if found is not None:
                    arr = found.value
                    if n_classes is not None and arr.shape[1] != n_classes:
                        # stricter caller than the one that validated the
                        # entry; quarantine here but leave the cache alone —
                        # the array is still valid for lenient callers
                        self._quarantine(path, "probs-bad-classes")
                        raise IntegrityMismatch(
                            path,
                            "probs-bad-classes",
                            f"expected {n_classes} classes, got {arr.shape[1]}",
                        )
                    if found.salvage is not None:
                        self.salvaged[str(path)] = found.salvage
                        obs["result"] = "cache-salvaged"
                    else:
                        obs["result"] = "cache-hit"
                    return arr
            try:
                arrays = load_npz_validated(path, expect_keys=("probs",), policy=self.retry_policy)
                out = check_probs(arrays["probs"], path=path, n_classes=n_classes)
            except ArtifactCorrupt as exc:
                report = self._try_salvage(path)
                if report is not None and "probs" in report.arrays:
                    try:
                        out = check_probs(report.arrays["probs"], path=path, n_classes=n_classes)
                    except IntegrityMismatch:
                        pass
                    else:
                        self.salvaged[str(path)] = report
                        obs["result"] = "salvaged"
                        if self.cache is not None:
                            out = self.cache.put(path, "probs", out, salvage=report)
                        return out
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                raise
            except IntegrityMismatch as exc:
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                raise
            if self.cache is not None:
                out = self.cache.put(path, "probs", out)
            return out

    def load_weights(self, model: str, stem: str) -> dict[str, np.ndarray]:
        """Load and validate one weights bundle; raises on any problem."""

        path = self.weights_path(model, stem)
        with self._observed_load("weights") as obs:
            if self.is_quarantined(path):
                raise ArtifactCorrupt(path, self.quarantine[str(path)], "previously quarantined")
            if self.cache is not None:
                found = self.cache.lookup(path, "weights")
                if isinstance(found, NegativeEntry):
                    self._raise_negative(path, found)
                if found is not None:
                    if found.salvage is not None:
                        self.salvaged[str(path)] = found.salvage
                        obs["result"] = "cache-salvaged"
                    else:
                        obs["result"] = "cache-hit"
                    # shallow copy: callers may add/drop keys, the arrays
                    # themselves stay shared and read-only
                    return dict(found.value)
            try:
                arrays = load_npz_validated(path, policy=self.retry_policy)
                out = check_weights(arrays, path=path)
            except ArtifactCorrupt as exc:
                report = self._try_salvage(path)
                if report is not None:
                    try:
                        out = check_weights(dict(report.arrays), path=path)
                    except IntegrityMismatch:
                        pass
                    else:
                        self.salvaged[str(path)] = report
                        obs["result"] = "salvaged"
                        if self.cache is not None:
                            out = dict(self.cache.put(path, "weights", out, salvage=report))
                        return out
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                raise
            except IntegrityMismatch as exc:
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                raise
            if self.cache is not None:
                out = dict(self.cache.put(path, "weights", out))
            return out

    def try_load_probs(
        self, model: str, stem: str, split: str, *, n_classes: int | None = None
    ) -> np.ndarray | None:
        """Like :meth:`load_probs` but returns ``None`` (after quarantining)
        instead of raising — the degraded-mode workhorse."""

        try:
            return self.load_probs(model, stem, split, n_classes=n_classes)
        except (ArtifactCorrupt, ArtifactMissing, IntegrityMismatch):
            return None

    def load_labels(self, model: str, split: str) -> np.ndarray | None:
        """Optional ground-truth labels (``labels.<split>.npz``, key ``labels``)."""

        path = self.model_dir(model) / f"labels.{split}.npz"
        with self._observed_load("labels") as obs:
            if not path.is_file() or self.is_quarantined(path):
                obs["result"] = "quarantined-hit" if self.is_quarantined(path) else "missing"
                return None
            if self.cache is not None:
                found = self.cache.lookup(path, "labels")
                if isinstance(found, NegativeEntry):
                    self._quarantine(path, found.reason)
                    obs["result"] = "corrupt" if found.exc_type == "ArtifactCorrupt" else "mismatch"
                    return None
                if found is not None:
                    obs["result"] = "cache-hit"
                    return found.value
            try:
                arrays = load_npz_validated(path, expect_keys=("labels",), policy=self.retry_policy)
            except (ArtifactCorrupt, IntegrityMismatch) as exc:
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                obs["result"] = "corrupt" if isinstance(exc, ArtifactCorrupt) else "mismatch"
                return None
            labels = np.asarray(arrays["labels"]).reshape(-1)
            if not np.issubdtype(labels.dtype, np.integer):
                self._quarantine(path, "labels-bad-dtype")
                if self.cache is not None:
                    self.cache.put_negative(
                        path, exc_type="IntegrityMismatch", reason="labels-bad-dtype"
                    )
                obs["result"] = "mismatch"
                return None
            out = labels.astype(np.int64)
            if self.cache is not None:
                out = self.cache.put(path, "labels", out)
            return out

    # -- manifests -------------------------------------------------------

    def _salvage_status(self, path: Path, kind: str) -> ArtifactStatus | None:
        """SALVAGED status when carving rescues what ``kind`` needs, else ``None``."""

        report = self._try_salvage(path)
        if report is None:
            return None
        try:
            if kind == "probs":
                if "probs" not in report.arrays:
                    return None
                check_probs(report.arrays["probs"], path=path)
            else:
                check_weights(dict(report.arrays), path=path)
        except IntegrityMismatch:
            return None
        self.salvaged[str(path)] = report
        return ArtifactStatus(
            SALVAGED,
            "salvaged",
            f"{report.n_recovered} member(s), {report.rows_recovered} rows recovered, {report.n_lost} lost",
        )

    def _status_of(self, path: Path, kind: str) -> ArtifactStatus:
        if self.is_salvaged(path):
            report = self.salvaged[str(path)]
            return ArtifactStatus(SALVAGED, "salvaged", f"{report.n_recovered} member(s) recovered")
        if self.is_quarantined(path):
            return ArtifactStatus(CORRUPT, self.quarantine[str(path)])
        if not path.is_file():
            return ArtifactStatus(MISSING, "not-found")
        # Cached verdicts make the per-trial roster scan O(stat): probs use
        # the full validated array (so the assemble that follows hits too),
        # weights need only the container-probe marker.  Negative verdicts
        # become CORRUPT statuses built from the remembered strings — no
        # exception is constructed, mirroring the probe path below.
        cache_kind = "probs" if kind == "probs" else "probe"
        if self.cache is not None:
            found = self.cache.lookup(path, cache_kind)
            if isinstance(found, NegativeEntry):
                self._quarantine(path, found.reason)
                return ArtifactStatus(CORRUPT, found.reason, found.detail)
            if found is not None:
                if found.salvage is not None:
                    self.salvaged[str(path)] = found.salvage
                    report = found.salvage
                    return ArtifactStatus(
                        SALVAGED, "salvaged", f"{report.n_recovered} member(s) recovered"
                    )
                return ArtifactStatus(VALID)
        report = probe_artifact(path)
        if not report.ok:
            status = self._salvage_status(path, kind)
            if status is not None:
                return status
            self._quarantine(path, report.reason)
            if self.cache is not None:
                self.cache.put_negative(
                    path, exc_type="ArtifactCorrupt", reason=report.reason, detail=report.detail
                )
            return ArtifactStatus(CORRUPT, report.reason, report.detail)
        # container is sound; run the cheap semantic check for probs
        if kind == "probs":
            try:
                arrays = load_npz_validated(path, expect_keys=("probs",), policy=self.retry_policy)
                checked = check_probs(arrays["probs"], path=path)
            except (ArtifactCorrupt, IntegrityMismatch) as exc:
                self._quarantine(path, exc.reason)
                self._cache_negative(path, exc)
                return ArtifactStatus(CORRUPT, exc.reason, exc.detail)
            if self.cache is not None:
                self.cache.put(path, "probs", checked)
        elif self.cache is not None:
            self.cache.put_probe(path)
        return ArtifactStatus(VALID)

    def scan_model(self, model: str) -> ModelManifest:
        """Build the available-vs-expected manifest for one model.

        Expected = the standard roster ∪ stems named by greedy files ∪ stems
        of files actually present, so both "file missing from roster" and
        "file present but corrupt" are visible.  Never raises on bad files.
        """

        mdir = self.model_dir(model)
        manifest = ModelManifest(model=model)
        present_stems: set[str] = set()
        known: set[str] = set()

        if mdir.is_dir():
            for f in sorted(p.name for p in mdir.iterdir() if p.is_file()):
                gm = _GREEDY_RE.match(f)
                if gm:
                    try:
                        manifest.greedy[f"greedy-{gm.group(1)}"] = resolve_greedy_file(mdir / f)
                    except (ArtifactCorrupt, ValueError):
                        self._quarantine(mdir / f, "bad-json")
                    continue
                am = _ARTIFACT_RE.match(f)
                if am:
                    present_stems.add(am.group("stem"))
                elif not f.startswith("labels."):
                    manifest.unexpected.append(f)

        expected_stems = set(standard_roster()) | present_stems
        for stems in manifest.greedy.values():
            expected_stems.update(stems)

        for stem in sorted(expected_stems):
            for kind, split, filename in expected_filenames(stem):
                path = mdir / filename
                key = filename
                if key in known:
                    continue
                known.add(key)
                manifest.records.append(
                    ArtifactRecord(
                        model=model,
                        stem=stem,
                        kind=kind,
                        split=split,
                        filename=filename,
                        status=self._status_of(path, kind),
                    )
                )
        return manifest

    def scan_all(self) -> CacheManifest:
        """Manifest for every model directory under the root; never raises."""

        cache = CacheManifest(root=str(self.root))
        for model in self.models():
            cache.models[model] = self.scan_model(model)
        return cache
