"""Validated, quarantining artifact store over a ``.repro_cache`` directory.

Layout it understands::

    <root>/<model>/ORG.{val,test}.probs.npz
    <root>/<model>/ORG.weights.npz
    <root>/<model>/pp-<Preproc>.{val,test}.probs.npz     # metamorphic submodels
    <root>/<model>/pp-<Preproc>.weights.npz
    <root>/<model>/replica-00N.{val,test}.probs.npz      # independent replicas
    <root>/<model>/replica-00N.weights.npz
    <root>/<model>/greedy-{4,6}.json                     # selected display names
    <root>/<model>/labels.{val,test}.npz                 # optional ground truth

The store never lets a bad file crash a scan: corrupt artifacts are
quarantined with a structured reason and simply drop out of the usable set.
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .errors import ArtifactCorrupt, ArtifactMissing, IntegrityMismatch, RetryPolicy, TransientIOError
from .integrity import check_probs, check_weights, load_npz_validated, probe_artifact
from .metrics import get_registry
from .manifest import (
    CORRUPT,
    MISSING,
    SALVAGED,
    VALID,
    ArtifactRecord,
    ArtifactStatus,
    CacheManifest,
    ModelManifest,
    expected_filenames,
)
from .naming import resolve_greedy_file, standard_roster
from .salvage import SalvageReport, salvage_npz

__all__ = ["ArtifactStore"]

_GREEDY_RE = re.compile(r"^greedy-(\d+)\.json$")
_ARTIFACT_RE = re.compile(r"^(?P<stem>ORG|pp-[^.]+|replica-\d{3})\.(?:(?P<split>val|test)\.probs|weights)\.npz$")


class ArtifactStore:
    """Read-only access to a cache root with validation and quarantine.

    Quarantine is cumulative per store instance: any artifact that fails
    container or semantic validation is recorded in :attr:`quarantine`
    (path → reason) and treated as absent from then on.

    With ``allow_salvaged=True``, an artifact whose *container* is corrupt
    gets one best-effort carving pass (:func:`polygraphmr.salvage.salvage_npz`)
    before quarantine: if the needed arrays survive the cut and pass the same
    semantic checks as a clean load, they are served and the path is recorded
    in :attr:`salvaged` (path → :class:`SalvageReport`) instead.  Semantic
    failures (wrong shape, off-simplex rows) are never salvaged — carving can
    rescue bytes, not meaning.

    **Fork-safety.**  The store keeps no open file handles — every load
    reads whole files into memory — but its quarantine/salvage registries
    are mutable per-instance state.  Multiprocess campaign workers must
    therefore build their *own* store after ``fork`` (see
    :class:`polygraphmr.campaign.TrialExecutor`, which constructs the store
    lazily, and :meth:`fresh` for an explicit re-open) rather than share a
    parent's instance across processes.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        retry_policy: RetryPolicy | None = None,
        allow_salvaged: bool = False,
    ):
        self.root = Path(root)
        self.retry_policy = retry_policy
        self.allow_salvaged = allow_salvaged
        self.quarantine: dict[str, str] = {}
        self.salvaged: dict[str, SalvageReport] = {}

    def fresh(self) -> ArtifactStore:
        """A new store over the same root with the same policy but empty
        quarantine/salvage state — the safe way to hand a store's
        configuration to a forked worker."""

        return ArtifactStore(
            self.root, retry_policy=self.retry_policy, allow_salvaged=self.allow_salvaged
        )

    # -- paths -----------------------------------------------------------

    def model_dir(self, model: str) -> Path:
        return self.root / model

    def models(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    def probs_path(self, model: str, stem: str, split: str) -> Path:
        return self.model_dir(model) / f"{stem}.{split}.probs.npz"

    def weights_path(self, model: str, stem: str) -> Path:
        return self.model_dir(model) / f"{stem}.weights.npz"

    # -- quarantine ------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine[str(path)] = reason

    def is_quarantined(self, path: str | Path) -> bool:
        return str(path) in self.quarantine

    def is_salvaged(self, path: str | Path) -> bool:
        return str(path) in self.salvaged

    # -- salvage ---------------------------------------------------------

    def _try_salvage(self, path: Path) -> SalvageReport | None:
        """One carving pass over a container-corrupt artifact, or ``None``."""

        if not self.allow_salvaged:
            return None
        try:
            report = salvage_npz(path)
        except ArtifactMissing:
            return None
        return report if report.ok else None

    # -- loading ---------------------------------------------------------

    @contextmanager
    def _observed_load(self, kind: str):
        """Meter one ``load_*`` call: result counter + latency histogram.

        The yielded mutable dict lets the body refine the success result
        (``hit`` vs ``salvaged``); failure results are classified from the
        exception type.  Strictly out-of-band — observing can never change
        what the load returns or raises.
        """

        obs = {"result": "hit"}
        start = time.perf_counter()
        try:
            yield obs
        except ArtifactMissing:
            obs["result"] = "missing"
            raise
        except TransientIOError:
            obs["result"] = "io-error"
            raise
        except IntegrityMismatch:
            obs["result"] = "mismatch"
            raise
        except ArtifactCorrupt as exc:
            obs["result"] = "quarantined-hit" if exc.detail == "previously quarantined" else "corrupt"
            raise
        finally:
            registry = get_registry()
            registry.counter("store_load_total", kind=kind, result=obs["result"]).inc()
            registry.histogram("store_load_seconds", kind=kind).observe(time.perf_counter() - start)

    def load_probs(self, model: str, stem: str, split: str, *, n_classes: int | None = None) -> np.ndarray:
        """Load and validate one probability matrix; raises on any problem."""

        path = self.probs_path(model, stem, split)
        with self._observed_load("probs") as obs:
            if self.is_quarantined(path):
                raise ArtifactCorrupt(path, self.quarantine[str(path)], "previously quarantined")
            try:
                arrays = load_npz_validated(path, expect_keys=("probs",), policy=self.retry_policy)
                return check_probs(arrays["probs"], path=path, n_classes=n_classes)
            except ArtifactCorrupt as exc:
                report = self._try_salvage(path)
                if report is not None and "probs" in report.arrays:
                    try:
                        out = check_probs(report.arrays["probs"], path=path, n_classes=n_classes)
                    except IntegrityMismatch:
                        pass
                    else:
                        self.salvaged[str(path)] = report
                        obs["result"] = "salvaged"
                        return out
                self._quarantine(path, exc.reason)
                raise
            except IntegrityMismatch as exc:
                self._quarantine(path, exc.reason)
                raise

    def load_weights(self, model: str, stem: str) -> dict[str, np.ndarray]:
        """Load and validate one weights bundle; raises on any problem."""

        path = self.weights_path(model, stem)
        with self._observed_load("weights") as obs:
            if self.is_quarantined(path):
                raise ArtifactCorrupt(path, self.quarantine[str(path)], "previously quarantined")
            try:
                arrays = load_npz_validated(path, policy=self.retry_policy)
                return check_weights(arrays, path=path)
            except ArtifactCorrupt as exc:
                report = self._try_salvage(path)
                if report is not None:
                    try:
                        out = check_weights(dict(report.arrays), path=path)
                    except IntegrityMismatch:
                        pass
                    else:
                        self.salvaged[str(path)] = report
                        obs["result"] = "salvaged"
                        return out
                self._quarantine(path, exc.reason)
                raise
            except IntegrityMismatch as exc:
                self._quarantine(path, exc.reason)
                raise

    def try_load_probs(
        self, model: str, stem: str, split: str, *, n_classes: int | None = None
    ) -> np.ndarray | None:
        """Like :meth:`load_probs` but returns ``None`` (after quarantining)
        instead of raising — the degraded-mode workhorse."""

        try:
            return self.load_probs(model, stem, split, n_classes=n_classes)
        except (ArtifactCorrupt, ArtifactMissing, IntegrityMismatch):
            return None

    def load_labels(self, model: str, split: str) -> np.ndarray | None:
        """Optional ground-truth labels (``labels.<split>.npz``, key ``labels``)."""

        path = self.model_dir(model) / f"labels.{split}.npz"
        with self._observed_load("labels") as obs:
            if not path.is_file() or self.is_quarantined(path):
                obs["result"] = "quarantined-hit" if self.is_quarantined(path) else "missing"
                return None
            try:
                arrays = load_npz_validated(path, expect_keys=("labels",), policy=self.retry_policy)
            except (ArtifactCorrupt, IntegrityMismatch) as exc:
                self._quarantine(path, exc.reason)
                obs["result"] = "corrupt" if isinstance(exc, ArtifactCorrupt) else "mismatch"
                return None
            labels = np.asarray(arrays["labels"]).reshape(-1)
            if not np.issubdtype(labels.dtype, np.integer):
                self._quarantine(path, "labels-bad-dtype")
                obs["result"] = "mismatch"
                return None
            return labels.astype(np.int64)

    # -- manifests -------------------------------------------------------

    def _salvage_status(self, path: Path, kind: str) -> ArtifactStatus | None:
        """SALVAGED status when carving rescues what ``kind`` needs, else ``None``."""

        report = self._try_salvage(path)
        if report is None:
            return None
        try:
            if kind == "probs":
                if "probs" not in report.arrays:
                    return None
                check_probs(report.arrays["probs"], path=path)
            else:
                check_weights(dict(report.arrays), path=path)
        except IntegrityMismatch:
            return None
        self.salvaged[str(path)] = report
        return ArtifactStatus(
            SALVAGED,
            "salvaged",
            f"{report.n_recovered} member(s), {report.rows_recovered} rows recovered, {report.n_lost} lost",
        )

    def _status_of(self, path: Path, kind: str) -> ArtifactStatus:
        if self.is_salvaged(path):
            report = self.salvaged[str(path)]
            return ArtifactStatus(SALVAGED, "salvaged", f"{report.n_recovered} member(s) recovered")
        if self.is_quarantined(path):
            return ArtifactStatus(CORRUPT, self.quarantine[str(path)])
        if not path.is_file():
            return ArtifactStatus(MISSING, "not-found")
        report = probe_artifact(path)
        if not report.ok:
            status = self._salvage_status(path, kind)
            if status is not None:
                return status
            self._quarantine(path, report.reason)
            return ArtifactStatus(CORRUPT, report.reason, report.detail)
        # container is sound; run the cheap semantic check for probs
        if kind == "probs":
            try:
                arrays = load_npz_validated(path, expect_keys=("probs",), policy=self.retry_policy)
                check_probs(arrays["probs"], path=path)
            except (ArtifactCorrupt, IntegrityMismatch) as exc:
                self._quarantine(path, exc.reason)
                return ArtifactStatus(CORRUPT, exc.reason, exc.detail)
        return ArtifactStatus(VALID)

    def scan_model(self, model: str) -> ModelManifest:
        """Build the available-vs-expected manifest for one model.

        Expected = the standard roster ∪ stems named by greedy files ∪ stems
        of files actually present, so both "file missing from roster" and
        "file present but corrupt" are visible.  Never raises on bad files.
        """

        mdir = self.model_dir(model)
        manifest = ModelManifest(model=model)
        present_stems: set[str] = set()
        known: set[str] = set()

        if mdir.is_dir():
            for f in sorted(p.name for p in mdir.iterdir() if p.is_file()):
                gm = _GREEDY_RE.match(f)
                if gm:
                    try:
                        manifest.greedy[f"greedy-{gm.group(1)}"] = resolve_greedy_file(mdir / f)
                    except (ArtifactCorrupt, ValueError):
                        self._quarantine(mdir / f, "bad-json")
                    continue
                am = _ARTIFACT_RE.match(f)
                if am:
                    present_stems.add(am.group("stem"))
                elif not f.startswith("labels."):
                    manifest.unexpected.append(f)

        expected_stems = set(standard_roster()) | present_stems
        for stems in manifest.greedy.values():
            expected_stems.update(stems)

        for stem in sorted(expected_stems):
            for kind, split, filename in expected_filenames(stem):
                path = mdir / filename
                key = filename
                if key in known:
                    continue
                known.add(key)
                manifest.records.append(
                    ArtifactRecord(
                        model=model,
                        stem=stem,
                        kind=kind,
                        split=split,
                        filename=filename,
                        status=self._status_of(path, kind),
                    )
                )
        return manifest

    def scan_all(self) -> CacheManifest:
        """Manifest for every model directory under the root; never raises."""

        cache = CacheManifest(root=str(self.root))
        for model in self.models():
            cache.models[model] = self.scan_model(model)
        return cache
