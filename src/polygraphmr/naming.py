"""Canonical name mapping between display names and artifact file stems.

The greedy-selection JSON files (``greedy-4.json`` / ``greedy-6.json``)
record submodels by *display name* — ``"ORG"``, ``"Hist"``, ``"Gamma(2)"``,
``"Gamma(1.5)"`` — while artifacts on disk use *stems*: ``ORG``,
``pp-Hist``, ``pp-Gamma_2``, ``pp-Gamma_1p5``.  The rules:

* ``ORG`` and ``replica-NNN`` map to themselves.
* A bare preprocessor name ``X`` maps to ``pp-X``.
* A parameterised preprocessor ``X(arg)`` maps to ``pp-X_<arg>`` where every
  ``.`` in the argument becomes ``p`` (so ``Gamma(1.5)`` → ``pp-Gamma_1p5``).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .errors import ArtifactCorrupt

__all__ = [
    "STANDARD_PREPROCESSORS",
    "N_REPLICAS",
    "display_to_stem",
    "stem_to_display",
    "standard_roster",
    "resolve_greedy_file",
]

# Roster observed across the seed cache: 8 metamorphic preprocessors plus the
# original model and 5 independently-trained replicas.
STANDARD_PREPROCESSORS: tuple[str, ...] = (
    "AdHist",
    "ConNorm",
    "FlipX",
    "FlipY",
    "Gamma(1.5)",
    "Gamma(2)",
    "Hist",
    "ImAdj",
)
N_REPLICAS = 5

_PARAM_RE = re.compile(r"^(?P<name>[A-Za-z][A-Za-z0-9]*)\((?P<arg>[^()]+)\)$")
_BARE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]*$")
_REPLICA_RE = re.compile(r"^replica-\d{3}$")
_STEM_PARAM_RE = re.compile(r"^pp-(?P<name>[A-Za-z][A-Za-z0-9]*)_(?P<arg>[A-Za-z0-9p]+)$")


def display_to_stem(display: str) -> str:
    """Map a greedy-JSON display name to its artifact file stem."""

    display = display.strip()
    if display == "ORG" or _REPLICA_RE.match(display):
        return display
    m = _PARAM_RE.match(display)
    if m:
        arg = m.group("arg").strip().replace(".", "p")
        return f"pp-{m.group('name')}_{arg}"
    if _BARE_RE.match(display):
        return f"pp-{display}"
    raise ValueError(f"unrecognised submodel display name: {display!r}")


def stem_to_display(stem: str) -> str:
    """Inverse of :func:`display_to_stem`.

    The dot restoration is heuristic but lossless for numeric arguments like
    ``1p5`` → ``1.5``; a ``p`` between two digits is a decimal point.
    """

    if stem == "ORG" or _REPLICA_RE.match(stem):
        return stem
    m = _STEM_PARAM_RE.match(stem)
    if m:
        arg = re.sub(r"(?<=\d)p(?=\d)", ".", m.group("arg"))
        return f"{m.group('name')}({arg})"
    if stem.startswith("pp-") and _BARE_RE.match(stem[3:]):
        return stem[3:]
    raise ValueError(f"unrecognised artifact stem: {stem!r}")


def standard_roster() -> list[str]:
    """Every stem a fully-populated model directory is expected to hold."""

    stems = ["ORG"]
    stems += [display_to_stem(p) for p in STANDARD_PREPROCESSORS]
    stems += [f"replica-{i:03d}" for i in range(1, N_REPLICAS + 1)]
    return stems


def resolve_greedy_file(path: str | Path) -> list[str]:
    """Parse a ``greedy-*.json`` and return the member stems, in order.

    Raises :class:`ArtifactCorrupt` (reason ``bad-json``) if the file is not
    a JSON list of strings, and :class:`ValueError` for unmappable names.
    """

    p = Path(path)
    try:
        entries = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactCorrupt(p, "bad-json", repr(exc)) from exc
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ArtifactCorrupt(p, "bad-json", f"expected a list of strings, got {type(entries).__name__}")
    return [display_to_stem(e) for e in entries]
