"""Artifact integrity validation.

The seed ``.repro_cache`` demonstrates why this layer exists: every ``.npz``
in it was truncated mid-file by the capture pipeline (zip local headers are
squashed and the end-of-central-directory record points past EOF), so a bare
``np.load`` raises ``BadZipFile``/``EOFError``/``zlib.error`` depending on
where the cut landed.  Validation here converts that zoo of failure modes
into a single :class:`~polygraphmr.errors.ArtifactCorrupt` with a structured
reason code, and layers semantic checks (simplex, finiteness, dtype) on top
as :class:`~polygraphmr.errors.IntegrityMismatch`.
"""

from __future__ import annotations

import io
import struct
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .errors import ArtifactCorrupt, ArtifactMissing, IntegrityMismatch, RetryPolicy, retry_with_backoff

__all__ = [
    "IntegrityReport",
    "EndOfCentralDirectory",
    "read_bytes",
    "find_eocd",
    "validate_zip_container",
    "load_npz_validated",
    "check_probs",
    "check_weights",
    "probe_artifact",
]

ZIP_MAGIC = b"PK\x03\x04"
CDH_MAGIC = b"PK\x01\x02"
EOCD_MAGIC = b"PK\x05\x06"
SIMPLEX_ATOL = 1e-3


@dataclass(frozen=True)
class EndOfCentralDirectory:
    """Parsed end-of-central-directory record of a zip container."""

    offset: int  # where the EOCD signature sits in the file
    n_total: int  # member count the archive claims
    cd_size: int
    cd_offset: int

    @property
    def consistent(self) -> bool:
        """Whether the claimed central directory fits before the EOCD —
        false for the mid-file truncation pattern in the seed cache."""

        return self.cd_offset + self.cd_size <= self.offset


def find_eocd(data: bytes) -> EndOfCentralDirectory | None:
    """Locate and parse the EOCD record, or ``None`` when absent/unparseable."""

    at = data.rfind(EOCD_MAGIC)
    if at < 0 or at + 22 > len(data):
        return None
    # EOCD layout: sig(4) disk(2) cd_disk(2) n_here(2) n_total(2) cd_size(4) cd_offset(4)
    n_total = struct.unpack_from("<H", data, at + 10)[0]
    cd_size, cd_offset = struct.unpack_from("<II", data, at + 12)
    return EndOfCentralDirectory(offset=at, n_total=n_total, cd_size=cd_size, cd_offset=cd_offset)


@dataclass
class IntegrityReport:
    """Outcome of probing a single artifact without loading it fully."""

    path: str
    ok: bool
    reason: str = "ok"
    detail: str = ""
    members: list[str] = field(default_factory=list)

    def raise_if_bad(self) -> None:
        if not self.ok:
            raise ArtifactCorrupt(self.path, self.reason, self.detail)


def read_bytes(path: str | Path, *, policy: RetryPolicy | None = None) -> bytes:
    """Read a file with bounded retry on transient IO errors.

    A missing file is *not* transient: it raises :class:`ArtifactMissing`
    immediately rather than burning retry attempts.
    """

    p = Path(path)
    if not p.is_file():
        raise ArtifactMissing(p)
    return retry_with_backoff(p.read_bytes, path=p, policy=policy)


def validate_zip_container(path: str | Path, *, data: bytes | None = None) -> IntegrityReport:
    """Structurally validate a zip container without decompressing members.

    Checks, in order: non-empty, zip magic, EOCD record present, EOCD's
    central-directory offset within the file, and that ``zipfile`` can parse
    the directory.  Each failure maps to a distinct reason code so the audit
    report can say *how* a file is broken, not just that it is.
    """

    p = Path(path)
    if data is None:
        data = read_bytes(p)
    if len(data) == 0:
        return IntegrityReport(str(p), False, "empty", "0-byte file")
    if not data.startswith(ZIP_MAGIC):
        return IntegrityReport(str(p), False, "bad-magic", f"header={data[:4].hex()}")
    eocd = find_eocd(data)
    if eocd is None:
        return IntegrityReport(str(p), False, "no-eocd", "end-of-central-directory record missing")
    if not eocd.consistent:
        return IntegrityReport(
            str(p),
            False,
            "truncated",
            f"central directory claims offset={eocd.cd_offset} size={eocd.cd_size} "
            f"but EOCD sits at {eocd.offset} (bytes cut from the middle)",
        )
    try:
        with zipfile.ZipFile(io.BytesIO(data)) as zf:
            members = zf.namelist()
            bad = zf.testzip()
            if bad is not None:
                return IntegrityReport(str(p), False, "bad-crc", f"member {bad!r} fails CRC")
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, ValueError) as exc:
        return IntegrityReport(str(p), False, "bad-zip", repr(exc))
    return IntegrityReport(str(p), True, members=members)


def load_npz_validated(
    path: str | Path,
    *,
    expect_keys: tuple[str, ...] | None = None,
    policy: RetryPolicy | None = None,
) -> dict[str, np.ndarray]:
    """Load an ``.npz`` defensively, returning plain ``{name: array}``.

    Raises :class:`ArtifactCorrupt` on any container/parse failure and
    :class:`IntegrityMismatch` when ``expect_keys`` are absent.  Arrays are
    fully materialised so the file handle never leaks into caller state.
    """

    p = Path(path)
    data = read_bytes(p, policy=policy)
    report = validate_zip_container(p, data=data)
    report.raise_if_bad()
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            arrays = {name: np.asarray(npz[name]) for name in npz.files}
    except (ValueError, OSError, zipfile.BadZipFile, zlib.error, EOFError, KeyError) as exc:
        raise ArtifactCorrupt(p, "bad-npy", repr(exc)) from exc
    if expect_keys is not None:
        missing = [k for k in expect_keys if k not in arrays]
        if missing:
            raise IntegrityMismatch(p, "missing-keys", f"absent: {missing}, present: {sorted(arrays)}")
    return arrays


def check_probs(
    arr: np.ndarray,
    *,
    path: str | Path = "<memory>",
    n_classes: int | None = None,
    atol: float = SIMPLEX_ATOL,
) -> np.ndarray:
    """Validate a probability matrix: 2-D float, finite, rows on the simplex.

    Returns the array as ``float64`` on success.
    """

    if arr.ndim != 2:
        raise IntegrityMismatch(path, "probs-bad-shape", f"expected 2-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.floating):
        raise IntegrityMismatch(path, "probs-bad-dtype", f"expected float, got {arr.dtype}")
    if n_classes is not None and arr.shape[1] != n_classes:
        raise IntegrityMismatch(
            path, "probs-bad-classes", f"expected {n_classes} classes, got {arr.shape[1]}"
        )
    out = arr.astype(np.float64, copy=False)
    if not np.isfinite(out).all():
        raise IntegrityMismatch(path, "probs-not-finite", "NaN or Inf present")
    if (out < -atol).any() or (out > 1 + atol).any():
        raise IntegrityMismatch(path, "probs-out-of-range", "entries outside [0, 1]")
    row_sums = out.sum(axis=1)
    worst = float(np.abs(row_sums - 1.0).max()) if len(row_sums) else 0.0
    if worst > atol:
        raise IntegrityMismatch(path, "probs-not-simplex", f"max |row_sum - 1| = {worst:.3g}")
    return out


def check_weights(arrays: dict[str, np.ndarray], *, path: str | Path = "<memory>") -> dict[str, np.ndarray]:
    """Validate a weights bundle: non-empty, every tensor float and finite."""

    if not arrays:
        raise IntegrityMismatch(path, "weights-empty", "no tensors in archive")
    for name, arr in arrays.items():
        if not np.issubdtype(arr.dtype, np.floating):
            raise IntegrityMismatch(path, "weights-bad-dtype", f"tensor {name!r} has dtype {arr.dtype}")
        if not np.isfinite(arr).all():
            raise IntegrityMismatch(path, "weights-not-finite", f"tensor {name!r} has NaN/Inf")
    return arrays


def probe_artifact(path: str | Path) -> IntegrityReport:
    """Best-effort probe that never raises: classify a file as ok/corrupt/missing."""

    p = Path(path)
    try:
        data = read_bytes(p)
    except ArtifactMissing:
        return IntegrityReport(str(p), False, "not-found", "file absent")
    except Exception as exc:  # transient IO exhausted, permissions, ...
        return IntegrityReport(str(p), False, "io-error", repr(exc))
    return validate_zip_container(p, data=data)
