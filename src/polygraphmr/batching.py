"""Batch planner + vectorized numpy trial kernel for campaigns.

The serial campaign loop pays full Python-interpreter overhead per trial:
spec derivation, ensemble assembly, decision-module fitting, fault
injection, and metric evaluation all run once per trial even though most
of that work is identical across every trial of the same model.  This
module turns contiguous runs of pending trials into **batches** that share
the expensive, fault-independent half (:func:`polygraphmr.faults.
prepare_degradation` — assemble + fit + clean metrics, done once per
batch) and run the fault-dependent half as stacked tensor ops
(:func:`~polygraphmr.faults.apply_fault_batch`,
:func:`~polygraphmr.faults.sanitize_probs_batch`,
:func:`~polygraphmr.decision.ensemble_features_batch`).

The contract is the repo's north star: **journal bytes must be identical
to the serial runner's.**  Three rules keep that true:

* **Windows preserve order.**  :func:`plan_windows` slices the ascending
  pending list into windows of ``batch_size × n_models`` contiguous
  indices.  A window's records are buffered and flushed to the journal in
  index order only when the whole window is done; on an early stop, only
  the maximal contiguous prefix is flushed and the rest is discarded for
  resume to re-run — so the canonical journal never holds an
  out-of-order or gapped record.
* **Breaker-bounded batching (probe then batch).**  Journalled breaker
  snapshots are per-trial state-machine history, so a batch is only legal
  while the board is *steady*.  The first trial of every per-model chunk
  runs through the exact serial :meth:`TrialExecutor.execute` path as a
  probe; the remainder is batched only if the probe's outcome was ``ok``
  and the board advanced by exactly one tick with no breaker activity
  (:func:`board_is_steady`).  Any trip, reopen, half-open probe, or
  non-ok outcome falls back to serial execution for the rest of the
  chunk — replaying exactly what the serial runner would have journalled.
* **Serial fallback on kernel trouble.**  The batch kernel runs under a
  watchdog budget of ``timeout_s × k``; if it fires or the kernel raises,
  the board is restored to its post-probe snapshot, the store and
  runtimes are rebuilt, and the chunk's remainder re-runs through the
  serial path (which journals per-trial timeouts/errors exactly as the
  serial runner would).

Custom ``trial_fn`` injections (test fakes) disable batching entirely —
the runner falls back to the per-trial loop, because a faked trial body
has no vectorized equivalent.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .breaker import CLOSED
from .decision import ensemble_features_batch, misprediction_targets
from .faults import degradation_payload, prepare_degradation, sanitize_probs_batch
from .metrics import BATCH_SIZE_BUCKETS, get_registry
from .tracing import get_tracer

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "PRISTINE_BREAKER",
    "plan_windows",
    "board_is_steady",
    "BatchTrialEngine",
]

DEFAULT_BATCH_SIZE = 16

# a breaker the probe trial minted but never exercised: the state every
# entry starts in, and the only kind of *new* entry a steady board may gain
PRISTINE_BREAKER = {
    "state": CLOSED,
    "consecutive_failures": 0,
    "opened_at_tick": None,
    "n_skipped": 0,
}


def plan_windows(pending: list[int], n_models: int, batch_size: int) -> list[list[int]]:
    """Slice the ascending pending-trial list into flush windows.

    Each window spans ``batch_size × n_models`` contiguous entries so every
    model collects up to ``batch_size`` trials per window; the caller
    journals a window's records in index order before starting the next,
    which is what keeps the canonical journal gap-free under batching.
    """

    span = max(1, int(batch_size)) * max(1, int(n_models))
    return [pending[i : i + span] for i in range(0, len(pending), span)]


def board_is_steady(pre: dict, post: dict) -> bool:
    """Did the probe trial leave the breaker board in replayable state?

    Steady means: exactly one tick elapsed, every pre-existing breaker
    entry is byte-for-byte unchanged, and any entry the probe minted is
    pristine-closed.  On a steady board, every subsequent ok trial of the
    same model produces a snapshot that differs from the probe's only in
    ``tick_count`` — which is precisely what the batch kernel emits.  Any
    failure, trip, cooldown expiry, or half-open probe breaks steadiness
    and forces the chunk remainder back onto the serial path.
    """

    if post.get("tick_count") != pre.get("tick_count", 0) + 1:
        return False
    pre_breakers = pre.get("breakers", {})
    post_breakers = post.get("breakers", {})
    for key, snap in post_breakers.items():
        if snap != pre_breakers.get(key, PRISTINE_BREAKER):
            return False
    return all(key in post_breakers for key in pre_breakers)


class BatchTrialEngine:
    """Window/chunk driver that wraps a :class:`~polygraphmr.campaign.
    TrialExecutor` with the probe-then-batch fast path.

    The engine owns no journal: :meth:`execute_window` returns finished
    records for the caller (serial runner or parallel worker) to flush
    through its own journal — which is how one engine serves both the
    canonical journal and per-worker shards.
    """

    def __init__(self, executor, *, batch_size: int = DEFAULT_BATCH_SIZE):
        self.executor = executor
        self.batch_size = max(1, int(batch_size))

    # -- window / group orchestration ------------------------------------

    def execute_window(self, indices: list[int], *, stop=None) -> tuple[list[dict], bool]:
        """Execute one window; returns ``(records, aborted)``.

        ``records`` is the maximal contiguous prefix of ``indices`` in
        index order — always safe to append to a journal whose invariant
        is ascending gap-free trial order.  ``aborted`` is True when a
        stop request cut the window short; any trials executed beyond the
        flushable prefix are discarded (their executor-side breaker ticks
        included), which is fine because an abort ends the run and resume
        re-executes them to the same bytes.
        """

        executor = self.executor
        groups: dict[str, list[int]] = {}
        for index in indices:
            model = executor.models[index % len(executor.models)]
            groups.setdefault(model, []).append(index)
        done: dict[int, dict] = {}
        aborted = False
        for idxs in groups.values():
            if stop is not None and stop.is_set():
                aborted = True
                break
            done.update(self._execute_group(idxs))
        records = []
        for index in indices:
            if index not in done:
                aborted = True
                break
            records.append(done[index])
        return records, aborted

    def _execute_group(self, idxs: list[int]) -> dict[int, dict]:
        records: dict[int, dict] = {}
        for start in range(0, len(idxs), self.batch_size):
            records.update(self._execute_chunk(idxs[start : start + self.batch_size]))
        return records

    def _execute_chunk(self, chunk: list[int]) -> dict[int, dict]:
        """Probe the first trial serially; batch the remainder if the board
        stayed steady, otherwise replay the remainder serially."""

        executor = self.executor
        registry = get_registry()
        model = executor.models[chunk[0] % len(executor.models)]
        pre = executor.board_for(model).snapshot()
        records = {chunk[0]: executor.execute(chunk[0])}
        rest = chunk[1:]
        if not rest:
            registry.histogram("campaign_batch_size", buckets=BATCH_SIZE_BUCKETS).observe(1.0)
            return records
        post = executor.board_for(model).snapshot()
        from .campaign import OUTCOME_OK

        if records[chunk[0]]["outcome"] != OUTCOME_OK or not board_is_steady(pre, post):
            registry.counter("campaign_batch_fallback_total", reason="breaker-activity").inc()
            for index in rest:
                records[index] = executor.execute(index)
            return records
        batched = self._run_guarded(model, rest, post)
        if batched is None:
            for index in rest:
                records[index] = executor.execute(index)
            return records
        records.update(batched)
        registry.histogram("campaign_batch_size", buckets=BATCH_SIZE_BUCKETS).observe(
            float(len(chunk))
        )
        return records

    def _run_guarded(self, model: str, indices: list[int], post_snapshot: dict):
        """Run the batch kernel under a ``timeout_s × k`` watchdog budget.

        Returns the records, or ``None`` after restoring the executor to
        its post-probe state — the caller then replays the trials through
        the serial path, which re-applies per-trial watchdog semantics.
        """

        executor = self.executor
        budget = executor.config.timeout_s * len(indices)
        box: dict = {}

        def target() -> None:
            try:
                box["value"] = self._run_batch(model, indices)
            except BaseException as exc:  # noqa: BLE001 - fallback, not crash
                box["error"] = exc

        if executor.config.timeout_s > 0:
            worker = threading.Thread(
                target=target, daemon=True, name=f"batch-{indices[0]}-{indices[-1]}"
            )
            worker.start()
            worker.join(budget)
            if worker.is_alive():
                get_registry().counter("campaign_batch_fallback_total", reason="timeout").inc()
                executor._rebuild_after_timeout(model, post_snapshot)
                return None
        else:
            target()
        if "error" in box:
            get_registry().counter("campaign_batch_fallback_total", reason="error").inc()
            # the kernel may have partially advanced the board before
            # raising; rebuild exactly as the serial timeout path does
            executor._rebuild_after_timeout(model, post_snapshot)
            return None
        return box["value"]

    # -- the numpy kernel -------------------------------------------------

    def _run_batch(self, model: str, indices: list[int]) -> dict[int, dict]:
        """Vectorized execution of ``indices`` (all one model, board known
        steady): one context prep, stacked fault injection, then per-trial
        record emission with the board ticked once per trial."""

        executor = self.executor
        config = executor.config
        registry = get_registry()
        from .campaign import OUTCOME_OK

        with get_tracer().span("campaign.batch", model=model, size=len(indices)) as span:
            start = time.perf_counter()
            if config.trial_sleep_s > 0:
                # the serial path sleeps per trial; the batch amortizes the
                # padding across the whole kernel run
                time.sleep(config.trial_sleep_s)
            specs = [executor.derive_spec(index) for index in indices]
            ctx = prepare_degradation(
                executor.store,
                model,
                seed=config.seed,
                runtime=executor.runtime_for(model),
                tick=False,
            )
            results: dict[int, dict] = {}
            grouped: dict[tuple, list] = {}
            for spec in specs:
                key = (spec.scenario, spec.scenario_sha256, spec.kind, spec.rate, spec.sigma)
                grouped.setdefault(key, []).append(spec)
            for group in grouped.values():
                results.update(self._run_fault_group(ctx, group))
            elapsed = time.perf_counter() - start
            span.set(outcome=OUTCOME_OK)

        board = executor.board_for(model)
        trial_hist = registry.histogram("campaign_trial_seconds")
        per_trial = elapsed / len(indices)
        records: dict[int, dict] = {}
        for spec in specs:
            board.tick()
            records[spec.index] = {
                "type": "trial",
                "index": spec.index,
                "spec": spec.to_dict(),
                "outcome": OUTCOME_OK,
                "breakers": board.snapshot(),
                "result": results[spec.index],
            }
            # per-trial accounting stays per-trial so histogram counts
            # reconcile with trial counts; the duration is amortized
            trial_hist.observe(per_trial)
            registry.counter("campaign_trials_total", outcome=OUTCOME_OK).inc()
            registry.counter("campaign_batched_trials_total").inc()
            if spec.scenario is not None:
                registry.counter(
                    "campaign_scenario_trials_total", scenario=spec.scenario, outcome=OUTCOME_OK
                ).inc()
        return records

    def _run_fault_group(self, ctx, specs: list) -> dict[int, dict]:
        """Evaluate one fault identity (same scenario or legacy kind/rate/
        sigma, distinct per-trial seeds) across the whole batch."""

        executor = self.executor
        faults = [executor.fault_for(spec) for spec in specs]
        module = ctx.module
        out: dict[int, dict] = {}

        if getattr(faults[0], "target", "probs") == "weights":
            # the faulted surface is the module's own weight vector — tiny,
            # so batching buys nothing; the fit is still amortized
            pristine = module.w
            try:
                for spec, fault in zip(specs, faults):
                    module.w = np.asarray(fault.apply(pristine), dtype=np.float64)
                    faulted_flags = module.predict(ctx.clean_features)
                    faulted = module.evaluate(ctx.clean_features, ctx.clean_targets)
                    out[spec.index] = degradation_payload(ctx, fault, faulted, faulted_flags)
            finally:
                module.w = pristine
            return out

        n_trials = len(specs)
        n_members = len(ctx.members)
        inner = ctx.test_stack.shape[1:]
        # tile the clean test stack across the batch: (B*M, N, C); every
        # member of trial b shares that trial's fault seed, exactly like the
        # serial per-member loop re-seeding the same Generator
        tiled = np.broadcast_to(
            ctx.test_stack[None], (n_trials,) + ctx.test_stack.shape
        ).reshape((n_trials * n_members,) + inner)
        seeds = np.repeat([spec.fault_seed for spec in specs], n_members)
        faulted = faults[0].apply_batch(tiled, seeds=seeds)
        faulted = sanitize_probs_batch(faulted).reshape((n_trials, n_members) + inner)
        features = ensemble_features_batch(faulted)
        for b, (spec, fault) in enumerate(zip(specs, faults)):
            faulted_targets = misprediction_targets(faulted[b, ctx.org_i], ctx.test_labels)
            faulted_flags = module.predict(features[b])
            metrics = module.evaluate(features[b], faulted_targets)
            out[spec.index] = degradation_payload(ctx, fault, metrics, faulted_flags)
        return out
