"""Tamper-evident, hash-chained campaign journal (format v3).

The journal is the campaign subsystem's write-ahead evidence trail, and
PolygraphMR's reliability claims rest on it — so the format must be
*verifiable by distrustful parties* (pvCNN), not merely trusted.  v2 sealed
each record with its own SHA-256, which catches bit rot but not a dropped,
reordered, or spliced record: nothing bound records to each other.  v3
closes that gap with a hash chain:

* **Sealed records.**  Every line is one JSON object whose ``sha256`` field
  is the SHA-256 of the canonical JSON of everything else in the record.
  Sealing is byte-stable: re-sealing a record read back from a journal
  reproduces the original line exactly — the property the shard merger's
  byte-identity guarantee relies on.
* **Chained records.**  Every record also carries ``prev``: the seal hash
  of the record before it.  The first record links to a *genesis hash*
  derived from the campaign config (:func:`chain_genesis`), so a journal is
  cryptographically rooted in the campaign that produced it.  Altering any
  committed record breaks its own seal; re-sealing it breaks the next
  record's ``prev``; re-linking the whole suffix changes the chain head,
  which every checkpoint seals (see :func:`polygraphmr.campaign.checkpoint_payload`).
* **Per-shard chains.**  A parallel worker's shard is its own chain rooted
  at ``chain_genesis(config_sha, shard=worker_id)`` — same config root,
  disjoint genesis per worker.  :func:`merge_journal` folds shards back
  into the canonical journal by re-linking every record in index order from
  the canonical genesis, which reproduces a serial run's bytes exactly.

Crash-tolerance is unchanged from v2: appends are single-write + fsync, so
a crash can only tear the *final* line, and reading forgives exactly that.
A well-sealed record with the wrong ``prev`` can never be produced by a
crash, so a broken link anywhere — even on the last line — is tampering
and raises.  :func:`walk_chain` is the stricter auditor's walk used by
``python -m polygraphmr.campaign verify``: it forgives nothing and reports
the exact first offending line.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from .errors import CampaignError

__all__ = [
    "JOURNAL_NAME",
    "CHECKPOINT_NAME",
    "JOURNAL_VERSION",
    "canonical_json",
    "sha256_hex",
    "config_chain_hash",
    "chain_genesis",
    "seal_record",
    "ChainIssue",
    "walk_chain",
    "CampaignJournal",
    "shard_name",
    "shard_journals",
    "CampaignState",
    "scan_campaign",
    "merge_journal",
    "write_checkpoint",
    "read_checkpoint",
    "load_checkpoint",
]

JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_VERSION = 3

_SHARD_RE = re.compile(r"^journal\.w(\d{2,})\.jsonl$")


def canonical_json(obj: dict) -> str:
    """The canonical serialisation every hash in the format is taken over."""

    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_chain_hash(config_dict: dict) -> str:
    """SHA-256 of the canonical JSON of a campaign config dict — the root
    every chain in that campaign's directory is derived from."""

    return sha256_hex(canonical_json(config_dict))


def chain_genesis(config_sha: str | None = None, *, shard: int | None = None) -> str:
    """The genesis hash a journal chain starts from.

    The canonical journal uses ``shard=None``; worker shard ``NN`` uses
    ``shard=NN`` — every chain in a campaign directory is rooted in the same
    config hash but no shard's chain can be passed off as another's.
    ``config_sha=None`` is the anonymous genesis for journals with no
    campaign identity (tests, ad-hoc logs).
    """

    return sha256_hex(
        canonical_json({"chain": JOURNAL_VERSION, "config_sha256": config_sha, "shard": shard})
    )


def seal_record(record: dict, prev: str) -> tuple[str, str]:
    """Chain-link and seal one record: returns ``(line, seal)``.

    Any stale ``prev``/``sha256`` on the input (e.g. a record read back for
    re-linking during a merge) is discarded; the seal is the SHA-256 of the
    canonical JSON of the record *including* its fresh ``prev``, so the seal
    hash doubles as the chain link the next record carries.  Sealing is
    byte-stable: sealing a read-back record with the same ``prev``
    reproduces the original line.
    """

    payload = {k: v for k, v in record.items() if k not in ("sha256", "prev")}
    payload["prev"] = prev
    seal = sha256_hex(canonical_json(payload))
    payload["sha256"] = seal
    return json.dumps(payload, sort_keys=True), seal


def _parse_sealed(line: bytes) -> tuple[dict | None, str | None, str | None]:
    """``(payload, seal, bad_reason)`` for one journal line.

    The returned payload keeps ``prev`` (it is part of the record's chained
    identity) but has the verified ``sha256`` stripped.
    """

    try:
        payload = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None, None, "journal-unparseable-line"
    if not isinstance(payload, dict):
        return None, None, "journal-bad-checksum"
    claimed = payload.pop("sha256", None)
    if claimed != sha256_hex(canonical_json(payload)):
        return None, None, "journal-bad-checksum"
    return payload, claimed, None


@dataclass(frozen=True)
class ChainIssue:
    """The exact first offending line found by :func:`walk_chain`."""

    path: str
    line: int  # 1-based line number in the file
    reason: str
    detail: str = ""


def walk_chain(
    path: str | Path, genesis: str | None = None
) -> tuple[list[dict], list[str], ChainIssue | None]:
    """Strict audit walk: ``(verified records, their seals, first issue)``.

    Unlike :meth:`CampaignJournal.scan`, nothing is forgiven: a torn or
    unterminated final line, a seal failure, a broken link, and (when
    ``genesis`` is given) a first record not rooted at the genesis hash all
    stop the walk with a :class:`ChainIssue` naming the exact first bad
    line.  The records and seals returned are the verified prefix before
    that line.
    """

    p = Path(path)
    records: list[dict] = []
    chain: list[str] = []
    if not p.is_file():
        return records, chain, None
    raw = p.read_bytes()
    if not raw:
        return records, chain, None
    lines = raw.split(b"\n")
    for i, line in enumerate(lines[:-1]):
        payload, seal, bad = _parse_sealed(line)
        detail = ""
        if bad is None:
            expected = chain[-1] if chain else genesis
            if expected is not None and payload.get("prev") != expected:
                bad = "journal-chain-broken"
                linked = str(payload.get("prev"))[:12]
                want = "the genesis hash" if not chain else "the previous record's seal"
                detail = f"prev {linked}… does not link to {want} {expected[:12]}…"
        if bad is not None:
            if not detail:
                detail = (
                    "line is not valid JSON"
                    if bad == "journal-unparseable-line"
                    else "record fails its sha256 seal"
                )
            return records, chain, ChainIssue(str(p), i + 1, bad, detail)
        records.append(payload)
        chain.append(seal)
    if lines[-1]:
        return records, chain, ChainIssue(
            str(p),
            len(lines),
            "journal-torn-tail",
            "unterminated final line (crash-torn write); resume or repair the campaign "
            "before auditing",
        )
    return records, chain, None


class CampaignJournal:
    """Append-only JSONL write-ahead journal of chained, sealed records.

    The same class backs the canonical ``journal.jsonl`` and the per-worker
    shards (``journal.wNN.jsonl``) of a parallel run — one chained-record
    format everywhere; only the ``genesis`` each chain is rooted at differs.
    """

    def __init__(self, path: str | Path, *, genesis: str | None = None):
        self.path = Path(path)
        self.genesis = genesis if genesis is not None else chain_genesis()
        self._head: str | None = None  # cached chain head; None = unknown

    @property
    def head(self) -> str:
        """The current chain head (the genesis hash for an empty journal)."""

        if self._head is None:
            _, chain = self.scan()
            if self._head is None:  # scan only caches when the file is clean
                return chain[-1] if chain else self.genesis
        return self._head

    def prime_head(self, head: str) -> None:
        """Install an externally computed head (e.g. after a shard merge
        rewrote the file) without re-reading the journal."""

        self._head = head

    def append(self, record: dict) -> None:
        """Durably append one chained record: single write, flush, fsync.

        The first append after opening an existing journal reads it to
        recover the chain head, repairing any crash-torn tail so the new
        record lands on a clean line; a journal whose committed history
        fails verification refuses the append (scan raises).
        """

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._head is None:
            _, chain = self.scan(repair=True)
            self._head = chain[-1] if chain else self.genesis
        line, seal = seal_record(record, self._head)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._head = seal

    def append_many(self, records: list[dict]) -> list[str]:
        """Durably append a run of chained records with one write + fsync.

        Byte-identical to calling :meth:`append` once per record — each
        record is sealed against the previous one's hash in order — but the
        batch runner's window flush pays the open/flush/fsync cost once per
        window instead of once per trial.  A crash mid-write tears at most
        the final line (appends are sequential), which :meth:`scan` already
        forgives.  An empty sequence is a no-op.

        Returns each record's seal in order (the chain segment just
        written), so a caller reporting per-record progress can name the
        chain head *as of that record* rather than the batch's final head.
        """

        records = list(records)
        if not records:
            return []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._head is None:
            _, chain = self.scan(repair=True)
            self._head = chain[-1] if chain else self.genesis
        head = self._head
        lines = []
        seals = []
        for record in records:
            line, head = seal_record(record, head)
            lines.append(line)
            seals.append(head)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._head = head
        return seals

    def scan(self, *, repair: bool = False) -> tuple[list[dict], list[str]]:
        """``(verified records, their seal hashes)``.

        A torn or corrupt *final* line is dropped — that is exactly the
        crash-mid-append this journal exists to survive.  Seal damage
        anywhere earlier means committed history was altered and raises
        :class:`CampaignError`; so does a broken chain link *anywhere*,
        including the final line, because no crash can produce a well-sealed
        record whose ``prev`` doesn't match its predecessor.  The first
        record's link to the genesis hash is deliberately not checked here
        (a scan doesn't know the campaign config); root checks belong to
        ``validate_resume`` and ``verify_campaign``.

        With ``repair=True`` a torn tail is also truncated off the file so
        the next append starts on a fresh line.
        """

        if not self.path.is_file():
            self._head = self.genesis
            return [], []
        records: list[dict] = []
        chain: list[str] = []
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        offset = 0
        for i, line in enumerate(lines):
            if i == len(lines) - 1:
                # ``line`` is whatever follows the last "\n" (b"" when the
                # file ends cleanly).  The trailing newline is what commits
                # an append, so even a checksum-valid tail here is a torn
                # write: drop it — counting it would leave the file without
                # a terminator and make the *next* append glue onto it.
                break
            payload, seal, bad = _parse_sealed(line)
            if bad is None and chain and payload.get("prev") != chain[-1]:
                bad = "journal-chain-broken"
            if bad is not None:
                if bad != "journal-chain-broken" and i >= len(lines) - 2:
                    break  # last line, torn (with or without the final \n)
                raise CampaignError(bad, f"{self.path} line {i + 1}")
            records.append(payload)
            chain.append(seal)
            offset += len(line) + 1
        if repair and offset < len(raw):
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        if repair or offset == len(raw):
            # only cache the head when the file ends exactly at the verified
            # prefix — appending after un-truncated torn bytes would glue
            self._head = chain[-1] if chain else self.genesis
        return records, chain

    def read(self) -> list[dict]:
        return self.scan()[0]

    def repair_tail(self) -> list[dict]:
        """Drop any torn final line *from the file itself* so the next append
        starts on a fresh line; returns the surviving records."""

        return self.scan(repair=True)[0]

    def trial_records(self) -> dict[int, dict]:
        return {r["index"]: r for r in self.read() if r.get("type") == "trial"}


# -- shards ----------------------------------------------------------------


def shard_name(worker: int) -> str:
    """Journal shard filename for one worker, e.g. ``journal.w03.jsonl``."""

    return f"journal.w{worker:02d}.jsonl"


def shard_journals(out_dir: str | Path) -> dict[int, CampaignJournal]:
    """Every journal shard in ``out_dir``, keyed by worker id."""

    out: dict[int, CampaignJournal] = {}
    d = Path(out_dir)
    if d.is_dir():
        for p in sorted(d.iterdir()):
            m = _SHARD_RE.match(p.name)
            if m:
                out[int(m.group(1))] = CampaignJournal(p)
    return out


@dataclass
class CampaignState:
    """Everything on disk about a campaign: the canonical journal plus any
    worker shards, deduplicated by trial index (canonical wins), with the
    verified chain seals of every file."""

    header: dict | None
    trials: dict[int, dict]
    canonical_records: int  # verified record count in journal.jsonl
    shard_counts: dict[int, int] = field(default_factory=dict)  # worker -> trial records
    canonical_chain: list[str] = field(default_factory=list)  # seal per canonical record
    shard_chains: dict[int, list[str]] = field(default_factory=dict)  # worker -> seals

    def complete(self, n_trials: int) -> bool:
        return all(i in self.trials for i in range(n_trials))


def scan_campaign(out_dir: str | Path, *, repair: bool = False) -> CampaignState:
    """Read the canonical journal *and* every shard; with ``repair=True``,
    torn tails are truncated in place (the resume path)."""

    canonical = CampaignJournal(Path(out_dir) / JOURNAL_NAME)
    records, chain = canonical.scan(repair=repair)
    header = records[0] if records and records[0].get("type") == "header" else None
    trials = {r["index"]: r for r in records if r.get("type") == "trial"}
    shard_counts: dict[int, int] = {}
    shard_chains: dict[int, list[str]] = {}
    for worker, shard in shard_journals(out_dir).items():
        shard_records, shard_chain = shard.scan(repair=repair)
        shard_trials = [r for r in shard_records if r.get("type") == "trial"]
        shard_counts[worker] = len(shard_trials)
        shard_chains[worker] = shard_chain
        for r in shard_trials:
            trials.setdefault(r["index"], r)
    return CampaignState(header, trials, len(records), shard_counts, chain, shard_chains)


def merge_journal(out_dir: str | Path, header: dict, trials: dict[int, dict]) -> tuple[Path, str]:
    """Fold shards into the canonical journal, **in index order**; returns
    ``(canonical path, final chain head)``.

    The canonical file is atomically *replaced* (tmp + fsync + ``os.replace``)
    with header + every trial record sorted by index, each record re-linked
    into one chain rooted at the canonical genesis derived from the header's
    config; only then are the shards deleted.  Until the replace lands, the
    shards remain the write-ahead source of truth, so a crash at any point
    loses nothing, and re-running the merge is idempotent.  Because sealing
    is byte-stable, re-linking is deterministic, and records carry no
    wall-clock data, the merged file is byte-identical to the journal a
    serial run writes.
    """

    out = Path(out_dir)
    path = out / JOURNAL_NAME
    cfg = header.get("config") if isinstance(header, dict) else None
    head = chain_genesis(config_chain_hash(cfg) if isinstance(cfg, dict) else None)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in (header, *(trials[i] for i in sorted(trials))):
            line, head = seal_record(record, head)
            fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    for shard in shard_journals(out).values():
        shard.path.unlink(missing_ok=True)
    return path, head


# -- checkpoints -----------------------------------------------------------


def write_checkpoint(path: str | Path, payload: dict) -> None:
    """Atomically replace the checkpoint: tmp file + fsync + ``os.replace``."""

    p = Path(path)
    body = dict(payload)
    body["sha256"] = sha256_hex(canonical_json(payload))
    tmp = p.with_name(p.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(body, fh, sort_keys=True, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, p)


def load_checkpoint(path: str | Path) -> tuple[dict | None, str | None]:
    """``(payload, problem)``: the checkpoint body, or why it is unusable.

    ``problem`` is ``None`` when the payload verified, ``"absent"`` when no
    file exists, and ``"checkpoint-invalid"`` when a file exists but is not
    a checksum-valid checkpoint — a distinction the auditor cares about
    (resume merely forfeits the cross-check; see :func:`read_checkpoint`).
    """

    p = Path(path)
    if not p.is_file():
        return None, "absent"
    try:
        body = json.loads(p.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError, UnicodeDecodeError):
        return None, "checkpoint-invalid"
    if not isinstance(body, dict):
        return None, "checkpoint-invalid"
    claimed = body.pop("sha256", None)
    if claimed != sha256_hex(canonical_json(body)):
        return None, "checkpoint-invalid"
    return body, None


def read_checkpoint(path: str | Path) -> dict | None:
    """The checkpoint payload, or ``None`` when absent or checksum-invalid.

    The journal is the source of truth; an unreadable checkpoint merely
    forfeits the fast consistency cross-check.
    """

    return load_checkpoint(path)[0]
