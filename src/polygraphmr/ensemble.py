"""Graceful-degradation ensemble runtime.

Assembles whatever submodel artifacts validated into a stacked probability
tensor, aggregates predictions, and runs the decision module end-to-end
(train on ``val``, evaluate on ``test``).  A model with quarantined or
missing members still produces a result — explicitly marked degraded and
naming the members that dropped out — and only when fewer than
``min_members`` survive does it raise :class:`DegradedEnsemble`.

A runtime instance (store + breaker board + decision caches) is mutable
state and must stay within one process: multiprocess campaign workers each
build their own runtime after ``fork`` via
:class:`polygraphmr.campaign.TrialExecutor` rather than inherit the
parent's.

The store the runtime drives may carry a verified-once
:class:`~polygraphmr.cache.ArtifactCache`: the probability arrays it serves
are then shared read-only across trials (and, via the shared-memory plane,
across worker processes).  That is safe here because ``assemble`` copies
members into its stacked tensor (``np.stack``) and never writes to a loaded
array in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .breaker import BreakerBoard
from .decision import DetectionMetrics, LogisticDecisionModule, ensemble_features, misprediction_targets
from .errors import DegradedEnsemble
from .metrics import get_registry
from .store import ArtifactStore
from .tracing import get_tracer

__all__ = ["EnsembleBatch", "EnsembleResult", "DegradedResult", "ModelSkipped", "EnsembleRuntime"]

FULL = "full"
DEGRADED = "degraded"


@dataclass
class EnsembleBatch:
    """Stacked, validated probability tensors for one model and split."""

    model: str
    split: str
    members: list[str]  # stems, ORG first when present
    stacked: np.ndarray  # (M, N, C)
    missing: list[str] = field(default_factory=list)
    quarantined: dict[str, str] = field(default_factory=dict)  # stem -> reason

    @property
    def degraded(self) -> bool:
        return bool(self.missing or self.quarantined)


@dataclass
class EnsembleResult:
    """End-to-end outcome: ensemble predictions + misprediction detection."""

    model: str
    status: str  # FULL
    members: list[str]
    predictions: np.ndarray  # ensemble top-1 per test sample
    flags: np.ndarray  # 1 where the decision module predicts ORG is wrong
    metrics: DetectionMetrics | None  # None when no labels are available
    missing: list[str] = field(default_factory=list)
    quarantined: dict[str, str] = field(default_factory=dict)
    breakers: dict[str, str] = field(default_factory=dict)  # stem -> non-closed state


@dataclass
class DegradedResult(EnsembleResult):
    """Same payload as :class:`EnsembleResult`, but explicitly degraded:
    ``missing`` / ``quarantined`` name the members that did not make it."""

    def __post_init__(self) -> None:
        self.status = DEGRADED


@dataclass(frozen=True)
class ModelSkipped:
    """A model for which no ensemble could run at all, with the reason."""

    model: str
    reason: str
    detail: str = ""


class EnsembleRuntime:
    """Drives assemble → aggregate → decide over an :class:`ArtifactStore`."""

    def __init__(
        self,
        store: ArtifactStore,
        *,
        min_members: int = 2,
        decision_factory=LogisticDecisionModule,
        seed: int = 0,
        breakers: BreakerBoard | None = None,
    ):
        self.store = store
        self.min_members = min_members
        self.decision_factory = decision_factory
        self.seed = seed
        self.breakers = breakers

    # -- assembly --------------------------------------------------------

    def member_plan(self, model: str, *, greedy: str | None = None) -> list[str]:
        """Which stems to attempt: a greedy selection if requested and
        parseable, otherwise every stem with artifacts on disk.

        Deliberately *not* restricted to already-valid artifacts: a stem
        whose files exist but are corrupt stays in the plan so the run can
        report it quarantined in a :class:`DegradedResult` instead of
        silently pretending the ensemble was never bigger."""

        manifest = self.store.scan_model(model)
        if greedy is not None and greedy in manifest.greedy:
            plan = manifest.greedy[greedy]
        else:
            plan = manifest.present_stems()
        if "ORG" in plan:  # keep ORG first: feature layout and targets rely on it
            plan = ["ORG"] + [s for s in plan if s != "ORG"]
        elif "ORG" not in plan:
            plan = ["ORG"] + plan
        return plan

    def assemble(self, model: str, split: str, *, members: list[str] | None = None) -> EnsembleBatch:
        """Load every planned member's probs for ``split``; quarantine, don't crash.

        Raises :class:`DegradedEnsemble` only when fewer than ``min_members``
        members survive validation (ORG included).

        When a :class:`~polygraphmr.breaker.BreakerBoard` is attached, a
        member whose breaker is open is skipped without touching the disk
        (reported quarantined as ``"circuit-open"``), and every corrupt load
        feeds the breaker.  Missing files do not trip breakers — a ``stat``
        is cheap; the breaker exists to avoid re-reading corrupt bytes.
        """

        registry = get_registry()
        plan = members if members is not None else self.member_plan(model, greedy=None)
        loaded: dict[str, np.ndarray] = {}
        missing: list[str] = []
        quarantined: dict[str, str] = {}
        n_shape: tuple[int, ...] | None = None
        for stem in plan:
            if self.breakers is not None and not self.breakers.allow(model, stem):
                quarantined[stem] = "circuit-open"
                registry.counter("ensemble_member_skips_total", reason="circuit-open").inc()
                continue
            path = self.store.probs_path(model, stem, split)
            if not path.is_file():
                missing.append(stem)
                registry.counter("ensemble_member_skips_total", reason="missing").inc()
                continue
            probs = self.store.try_load_probs(model, stem, split)
            if probs is None:
                quarantined[stem] = self.store.quarantine.get(str(path), "unknown")
                registry.counter("ensemble_member_skips_total", reason="quarantined").inc()
                if self.breakers is not None:
                    self.breakers.record_failure(model, stem)
                continue
            if n_shape is not None and probs.shape != n_shape:
                quarantined[stem] = "probs-shape-disagrees"
                self.store.quarantine[str(path)] = "probs-shape-disagrees"
                registry.counter("ensemble_member_skips_total", reason="shape-disagrees").inc()
                if self.breakers is not None:
                    self.breakers.record_failure(model, stem)
                continue
            n_shape = probs.shape if n_shape is None else n_shape
            loaded[stem] = probs
            if self.breakers is not None:
                self.breakers.record_success(model, stem)
        survivors = [s for s in plan if s in loaded]
        registry.counter(
            "ensemble_assemble_total", degraded="true" if (missing or quarantined) else "false"
        ).inc()
        if len(survivors) < self.min_members:
            raise DegradedEnsemble(model, survivors, self.min_members)
        stacked = np.stack([loaded[s] for s in survivors], axis=0)
        return EnsembleBatch(
            model=model,
            split=split,
            members=survivors,
            stacked=stacked,
            missing=missing,
            quarantined=quarantined,
        )

    # -- aggregation -----------------------------------------------------

    @staticmethod
    def aggregate(batch: EnsembleBatch, *, method: str = "mean") -> np.ndarray:
        """Ensemble top-1 prediction per sample: ``mean`` probs or majority ``vote``."""

        if method == "mean":
            return batch.stacked.mean(axis=0).argmax(axis=1)
        if method == "vote":
            votes = batch.stacked.argmax(axis=2)  # (M, N)
            c = batch.stacked.shape[2]
            return np.apply_along_axis(lambda col: np.bincount(col, minlength=c).argmax(), 0, votes)
        raise ValueError(f"unknown aggregation method: {method!r}")

    # -- end to end ------------------------------------------------------

    def run_model(self, model: str, *, members: list[str] | None = None, greedy: str | None = None) -> EnsembleResult:
        """Train the decision module on val, evaluate on test, for one model.

        Members are the intersection of the survivors on both splits so the
        feature layout is identical at train and eval time.  Returns
        :class:`DegradedResult` whenever any planned member dropped out.

        Each call advances the breaker board's trial clock by one tick, so
        open-breaker cool-downs are counted in trials, not wall-clock.
        """

        registry = get_registry()
        with get_tracer().span(
            "ensemble.run_model", model=model, observe=registry.histogram("ensemble_run_seconds")
        ) as span:
            result = self._run_model_inner(model, members=members, greedy=greedy)
            span.set(status=result.status)
            registry.counter("ensemble_runs_total", status=result.status).inc()
            return result

    def _run_model_inner(
        self, model: str, *, members: list[str] | None = None, greedy: str | None = None
    ) -> EnsembleResult:
        if self.breakers is not None:
            self.breakers.tick()
        plan = members if members is not None else self.member_plan(model, greedy=greedy)
        val = self.assemble(model, "val", members=plan)
        test = self.assemble(model, "test", members=plan)

        common = [s for s in val.members if s in set(test.members)]
        if len(common) < self.min_members:
            raise DegradedEnsemble(model, common, self.min_members)
        val_stack = np.stack([val.stacked[val.members.index(s)] for s in common], axis=0)
        test_stack = np.stack([test.stacked[test.members.index(s)] for s in common], axis=0)

        quarantined = {**val.quarantined, **test.quarantined}
        missing = sorted(s for s in plan if s not in common and s not in quarantined)

        metrics = None
        flags = np.zeros(test_stack.shape[1], dtype=np.int64)
        val_labels = self.store.load_labels(model, "val")
        test_labels = self.store.load_labels(model, "test")
        if val_labels is not None and "ORG" in common and len(val_labels) == val_stack.shape[1]:
            module = self.decision_factory(seed=self.seed)
            org_val = val_stack[common.index("ORG")]
            module.fit(ensemble_features(val_stack), misprediction_targets(org_val, val_labels))
            test_features = ensemble_features(test_stack)
            flags = module.predict(test_features)
            if test_labels is not None and len(test_labels) == test_stack.shape[1]:
                org_test = test_stack[common.index("ORG")]
                metrics = module.evaluate(test_features, misprediction_targets(org_test, test_labels))

        batch = EnsembleBatch(model=model, split="test", members=common, stacked=test_stack)
        predictions = self.aggregate(batch)
        breaker_states = self.breakers.states_for(model) if self.breakers is not None else {}
        cls = DegradedResult if (missing or quarantined) else EnsembleResult
        return cls(
            model=model,
            status=FULL,
            members=common,
            predictions=predictions,
            flags=flags,
            metrics=metrics,
            missing=missing,
            quarantined=quarantined,
            breakers=breaker_states,
        )

    def run_cache(self) -> dict[str, EnsembleResult | ModelSkipped]:
        """Run every model in the cache; skips (never raises) per-model failures."""

        outcomes: dict[str, EnsembleResult | ModelSkipped] = {}
        for model in self.store.models():
            try:
                outcomes[model] = self.run_model(model)
            except DegradedEnsemble as exc:
                outcomes[model] = ModelSkipped(model, "degraded-below-minimum", str(exc))
            except Exception as exc:  # noqa: BLE001 - the contract is "never crash the sweep"
                outcomes[model] = ModelSkipped(model, "error", repr(exc))
        return outcomes
