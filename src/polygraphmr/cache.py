"""Verified-once artifact cache and zero-copy shared-memory plane.

Fault-injection campaigns evaluate the same submodel probability artifacts
thousands of times.  Without caching, every trial re-reads each npz from
disk and re-runs full container + semantic validation, and every forked
worker redoes all of it after ``fork``.  This module removes that redundant
work in two layers:

:class:`ArtifactCache`
    An in-process bounded LRU keyed by ``(path, kind)`` that memoizes
    *validated* values — a hit skips disk I/O, CRC, and simplex checks
    entirely.  Each entry carries the file's ``(size, mtime_ns)`` stat
    signature; a signature change invalidates the entry and forces a
    re-validation.  Paths that failed validation are *negative-cached* so a
    corrupt cache member costs one ``stat`` per trial instead of a full
    failed parse.

:class:`SharedMemoryPlane`
    A read-only, zero-copy publication of a parallel campaign's working
    set.  The parent loads and validates every artifact once, copies the
    arrays into a single ``multiprocessing.shared_memory`` segment, and
    immediately unlinks it; forked workers inherit the mapping and serve
    ``writeable=False`` views out of it — amortized O(1) store loads per
    trial regardless of worker count.  When shared memory is unavailable,
    ``publish`` returns ``None`` and campaigns fall back to per-worker
    loading, which is always correct.

Both layers are strictly transparent: they change *when* bytes are read
and checked, never what a trial observes.  Journal and checkpoint bytes
are identical with the cache on or off (see ``tests/test_cache.py``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from pathlib import Path

import numpy as np

from .errors import ArtifactCorrupt, ArtifactMissing, IntegrityMismatch, TransientIOError
from .integrity import probe_artifact
from .metrics import get_registry
from .tracing import get_tracer

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "PLANE_PREFIX",
    "ArtifactCache",
    "CacheEntry",
    "NegativeEntry",
    "SharedMemoryPlane",
    "stat_signature",
]

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
PLANE_PREFIX = "pgmr-"

# Shared-memory offsets are aligned so views start on cache-line boundaries.
_ALIGN = 64
# Marker value for "container probed sound"; its accounting cost is nominal.
PROBE_OK = "probe-ok"
_PROBE_NBYTES = 64

_plane_seq = count()


def stat_signature(path: str | Path) -> tuple[int, int] | None:
    """``(st_size, st_mtime_ns)`` for ``path``, or ``None`` if unstattable.

    The signature is the cache's notion of file identity: same signature,
    same verdict.  ``None`` always reads as a miss so the store's own
    missing-file handling stays authoritative.
    """

    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_size, st.st_mtime_ns)


@dataclass
class CacheEntry:
    """A validated value plus the stat signature it was validated against."""

    kind: str
    sig: tuple[int, int]
    value: object
    nbytes: int
    source: str = "memory"
    # the SalvageReport that produced the value, when it was carved rather
    # than cleanly loaded — lets a cached store restore its salvage registry
    salvage: object | None = None


@dataclass(frozen=True)
class NegativeEntry:
    """A remembered validation failure for a path (any kind)."""

    sig: tuple[int, int]
    exc_type: str
    reason: str
    detail: str = ""


def _freeze(value: object) -> tuple[object, int]:
    """Make ``value`` safe to share and return it with its accounted bytes.

    Arrays are shared, never copied — the cleared write flag is what makes
    sharing safe.  Dicts of arrays (weights bundles) freeze each member.
    """

    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value, int(value.nbytes)
    if isinstance(value, dict):
        total = 0
        for member in value.values():
            if isinstance(member, np.ndarray):
                member.setflags(write=False)
                total += int(member.nbytes)
        return value, total
    return value, _PROBE_NBYTES


class ArtifactCache:
    """Bounded LRU of validated artifacts with negative caching.

    Positive entries are keyed ``(path, kind)`` — ``kind`` is one of
    ``probs``/``weights``/``labels``/``probe`` — because one file can back
    several views of different cost.  Negative entries are keyed by path
    alone: a corrupt container is corrupt for every kind.

    Thread-safe: the campaign watchdog can abandon a trial thread that
    still holds the executor's store, so a successor thread may race it
    here.  Entries are pure functions of the file bytes, so a racing
    double-insert is harmless; the lock only protects the LRU bookkeeping.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_CACHE_BYTES,
        *,
        plane: SharedMemoryPlane | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.plane = plane
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], CacheEntry] = OrderedDict()
        self._negative: dict[str, NegativeEntry] = {}
        self._bytes = 0

    # ------------------------------------------------------------------
    # lookups

    def lookup(self, path: str | Path, kind: str) -> CacheEntry | NegativeEntry | None:
        """The cached verdict for ``path``, or ``None`` (load from disk).

        A :class:`CacheEntry` holds the validated value; a
        :class:`NegativeEntry` means the same bytes already failed
        validation.  A stat-signature mismatch drops the stale verdict and
        reads as a miss, which forces re-validation.
        """

        spath = str(path)
        sig = stat_signature(spath)
        registry = get_registry()
        if sig is None:
            registry.counter("artifact_cache_misses_total", kind=kind).inc()
            return None
        with self._lock:
            neg = self._negative.get(spath)
            if neg is not None:
                if neg.sig == sig:
                    registry.counter("artifact_cache_negative_hits_total", kind=kind).inc()
                    return neg
                del self._negative[spath]
                registry.counter("artifact_cache_invalidations_total", kind=kind).inc()
            entry = self._entries.get((spath, kind))
            if entry is not None:
                if entry.sig == sig:
                    self._entries.move_to_end((spath, kind))
                    registry.counter(
                        "artifact_cache_hits_total", kind=kind, source=entry.source
                    ).inc()
                    return entry
                self._drop(spath, kind)
                registry.counter("artifact_cache_invalidations_total", kind=kind).inc()
        if self.plane is not None:
            shared = self.plane.lookup(spath, kind, sig)
            if isinstance(shared, NegativeEntry):
                with self._lock:
                    self._negative[spath] = shared
                registry.counter("artifact_cache_negative_hits_total", kind=kind).inc()
                return shared
            if shared is not None:
                # Promote into the LRU so repeat lookups skip the plane
                # index; plane entries are zero-copy (nbytes == 0) and never
                # pressure the byte budget.
                with self._lock:
                    self._entries[(spath, kind)] = shared
                registry.counter("artifact_cache_hits_total", kind=kind, source="plane").inc()
                return shared
        registry.counter("artifact_cache_misses_total", kind=kind).inc()
        return None

    # ------------------------------------------------------------------
    # insertions

    def put(
        self,
        path: str | Path,
        kind: str,
        value: object,
        *,
        salvage: object | None = None,
    ) -> object:
        """Insert a *validated* value; returns the (read-only) cached value.

        Values larger than the whole budget are frozen but not cached.  Any
        negative verdict for ``path`` is dropped — the bytes evidently
        validate now.
        """

        spath = str(path)
        sig = stat_signature(spath)
        frozen, nbytes = _freeze(value)
        if sig is None or nbytes > self.max_bytes:
            return frozen
        entry = CacheEntry(kind=kind, sig=sig, value=frozen, nbytes=nbytes, salvage=salvage)
        registry = get_registry()
        evicted = 0
        with self._lock:
            self._negative.pop(spath, None)
            self._drop(spath, kind)
            self._entries[(spath, kind)] = entry
            self._bytes += nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                evicted += 1
            held = self._bytes
        if evicted:
            registry.counter("artifact_cache_evictions_total").inc(evicted)
        registry.gauge("artifact_cache_bytes").set(float(held))
        return frozen

    def put_probe(self, path: str | Path) -> None:
        """Record that ``path``'s container probed sound (CRC-complete).

        Enough for roster scans to accept the file without re-reading it;
        full loads still validate content on first use.
        """

        self.put(path, "probe", PROBE_OK)

    def put_negative(
        self,
        path: str | Path,
        *,
        exc_type: str,
        reason: str,
        detail: str = "",
    ) -> None:
        """Remember a validation failure so future trials pay one ``stat``
        instead of a full parse-and-fail.  Drops any positive entries for
        the path (every kind — the container itself is bad)."""

        spath = str(path)
        sig = stat_signature(spath)
        if sig is None:
            return
        with self._lock:
            for key in [k for k in self._entries if k[0] == spath]:
                self._drop(*key)
            self._negative[spath] = NegativeEntry(
                sig=sig, exc_type=exc_type, reason=reason, detail=detail
            )
            held = self._bytes
        get_registry().gauge("artifact_cache_bytes").set(float(held))

    # ------------------------------------------------------------------
    # bookkeeping

    def _drop(self, spath: str, kind: str) -> None:
        """Remove one positive entry and release its bytes (lock held)."""

        old = self._entries.pop((spath, kind), None)
        if old is not None:
            self._bytes -= old.nbytes

    def stats(self) -> dict:
        """A point-in-time snapshot for logs and bench output."""

        with self._lock:
            return {
                "entries": len(self._entries),
                "negative_entries": len(self._negative),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "plane": self.plane is not None,
            }


@dataclass(frozen=True)
class PlaneRecord:
    """One published artifact in a :class:`SharedMemoryPlane` index."""

    kind: str  # "probs" | "labels" | "probe" | "negative"
    sig: tuple[int, int]
    dtype: str = ""
    shape: tuple[int, ...] = ()
    offset: int = 0
    exc_type: str = ""
    reason: str = ""
    detail: str = ""


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedMemoryPlane:
    """Read-only, zero-copy publication of a campaign's validated working set.

    Lifecycle (fork inheritance — never attach-by-name):

    1. The parent calls :meth:`publish` *before forking*: it loads and
       validates every artifact once, copies the arrays into a single
       shared-memory segment, and immediately **unlinks** the segment.  The
       mapping stays valid for this process and every child forked from it,
       but no ``/dev/shm`` entry outlives the copy — SIGKILL at any point
       leaks nothing.
    2. Forked workers inherit the plane object through ``Process`` args
       (the ``fork`` start method passes it by reference, not pickling) and
       serve ``writeable=False`` numpy views out of the mapping.
    3. Everyone calls :meth:`close` best-effort; process exit reclaims the
       mapping regardless.

    :meth:`publish` returns ``None`` whenever shared memory is unavailable
    or nothing is publishable; callers then fall back to per-worker
    loading, which is always correct — the plane is an accelerator, never
    a dependency.
    """

    def __init__(self, shm: object | None, index: dict[str, PlaneRecord], nbytes: int) -> None:
        self._shm = shm
        self.index = index
        self.nbytes = nbytes
        self._views: dict[str, np.ndarray] = {}
        self.sealed = shm is None

    # ------------------------------------------------------------------
    # publication (parent side)

    @classmethod
    def publish(
        cls,
        store,
        models: list[str],
        *,
        max_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> SharedMemoryPlane | None:
        """Load, validate, and share the working set for ``models``.

        ``store`` should be a throwaway :class:`~polygraphmr.store.ArtifactStore`
        with the campaign's ``allow_salvaged`` policy and no cache — every
        load here is the one verification the whole campaign amortizes.
        Salvaged arrays are *not* published (workers re-carve locally so
        their stores record the salvage); weights bundles publish only a
        probe verdict (they are small and model-fit wants private copies).
        """

        registry = get_registry()
        with get_tracer().span("cache.plane.publish", models=len(models)) as span:
            if shared_memory is None:
                span.set(outcome="unavailable")
                return None
            try:
                index, arrays, total, skipped = cls._collect(store, models, max_bytes)
            except Exception as exc:  # pragma: no cover - defensive fallback
                span.set(outcome="collect-failed", error=type(exc).__name__)
                return None
            if not index:
                span.set(outcome="empty")
                return None
            shm = None
            if total:
                shm = cls._create_segment(total)
                if shm is None:
                    span.set(outcome="no-segment")
                    return None
                for spath, arr in arrays:
                    rec = index[spath]
                    dst = np.ndarray(
                        rec.shape, dtype=np.dtype(rec.dtype), buffer=shm.buf, offset=rec.offset
                    )
                    dst[:] = arr
                    del dst
            plane = cls(shm, index, total)
            # Unlink before any fork: children inherit the mapping, the
            # name never has to survive, and a SIGKILL leaks nothing.
            plane.seal()
            for rec in index.values():
                registry.counter("artifact_cache_plane_published_total", kind=rec.kind).inc()
            if skipped:
                registry.counter(
                    "artifact_cache_plane_skipped_total", reason="budget-or-salvage"
                ).inc(skipped)
            registry.gauge("artifact_cache_plane_bytes").set(float(total))
            span.set(outcome="published", records=len(index), bytes=total, skipped=skipped)
            return plane

    @classmethod
    def _collect(
        cls, store, models: list[str], max_bytes: int
    ) -> tuple[dict[str, PlaneRecord], list[tuple[str, np.ndarray]], int, int]:
        """Walk the models' artifact files and build the publication plan."""

        from .store import _ARTIFACT_RE

        index: dict[str, PlaneRecord] = {}
        arrays: list[tuple[str, np.ndarray]] = []
        offset = 0
        skipped = 0

        def add_array(spath: str, kind: str, sig: tuple[int, int], arr: np.ndarray) -> bool:
            nonlocal offset, skipped
            if offset + arr.nbytes > max_bytes:
                skipped += 1
                return False
            index[spath] = PlaneRecord(
                kind=kind,
                sig=sig,
                dtype=arr.dtype.str,
                shape=tuple(arr.shape),
                offset=offset,
            )
            arrays.append((spath, arr))
            offset = _aligned(offset + arr.nbytes)
            return True

        for model in sorted(set(models)):
            model_dir = store.model_dir(model)
            if not model_dir.is_dir():
                continue
            for name in sorted(p.name for p in model_dir.iterdir() if p.is_file()):
                path = model_dir / name
                spath = str(path)
                sig = stat_signature(path)
                if sig is None:
                    continue
                match = _ARTIFACT_RE.match(name)
                if match and match.group("split"):
                    stem, split = match.group("stem"), match.group("split")
                    try:
                        arr = store.load_probs(model, stem, split)
                    except (ArtifactCorrupt, IntegrityMismatch) as exc:
                        index[spath] = PlaneRecord(
                            kind="negative",
                            sig=sig,
                            exc_type=type(exc).__name__,
                            reason=exc.reason,
                            detail=exc.detail,
                        )
                        continue
                    except (ArtifactMissing, TransientIOError):
                        continue
                    if store.is_salvaged(path):
                        # Workers must re-carve so their own stores record
                        # the salvage; publishing would hide the damage.
                        skipped += 1
                        continue
                    add_array(spath, "probs", sig, arr)
                elif match:
                    report = probe_artifact(path)
                    if report.ok:
                        index[spath] = PlaneRecord(kind="probe", sig=sig)
                elif name.startswith("labels.") and name.endswith(".npz"):
                    split = name.split(".")[1]
                    arr = store.load_labels(model, split)
                    if arr is not None:
                        add_array(spath, "labels", sig, arr)
        return index, arrays, offset, skipped

    @staticmethod
    def _create_segment(total: int):
        """A fresh anonymous-ish segment, or ``None`` if /dev/shm refuses."""

        for _ in range(8):
            name = f"{PLANE_PREFIX}{os.getpid()}-{next(_plane_seq)}"
            try:
                return shared_memory.SharedMemory(create=True, size=total, name=name)
            except FileExistsError:
                continue
            except OSError:
                return None
        return None

    # ------------------------------------------------------------------
    # consumption (any process post-fork)

    def lookup(
        self, path: str | Path, kind: str, sig: tuple[int, int]
    ) -> CacheEntry | NegativeEntry | None:
        """A zero-copy entry for ``path`` if published with a matching
        signature, else ``None``.  Negative records match every kind."""

        rec = self.index.get(str(path))
        if rec is None or rec.sig != sig:
            return None
        if rec.kind == "negative":
            return NegativeEntry(
                sig=rec.sig, exc_type=rec.exc_type, reason=rec.reason, detail=rec.detail
            )
        if rec.kind == "probe":
            if kind != "probe":
                return None
            return CacheEntry(kind=kind, sig=sig, value=PROBE_OK, nbytes=0, source="plane")
        if rec.kind != kind:
            return None
        view = self._view(str(path), rec)
        if view is None:
            return None
        return CacheEntry(kind=kind, sig=sig, value=view, nbytes=0, source="plane")

    def _view(self, spath: str, rec: PlaneRecord) -> np.ndarray | None:
        if self._shm is None:
            return None
        view = self._views.get(spath)
        if view is None:
            view = np.ndarray(
                rec.shape, dtype=np.dtype(rec.dtype), buffer=self._shm.buf, offset=rec.offset
            )
            view.setflags(write=False)
            self._views[spath] = view
        return view

    def describe(self) -> dict:
        """JSON-safe summary of the published working set.

        The serving gateway prints this on its ready line so operators can
        see at a glance what the forked evaluator pool inherited (record
        and byte totals, per-kind counts, and whether the segment name is
        already unlinked).
        """

        kinds: dict[str, int] = {}
        for rec in self.index.values():
            kinds[rec.kind] = kinds.get(rec.kind, 0) + 1
        return {
            "records": len(self.index),
            "bytes": self.nbytes,
            "kinds": dict(sorted(kinds.items())),
            "sealed": self.sealed,
        }

    # ------------------------------------------------------------------
    # lifecycle

    def seal(self) -> None:
        """Unlink the segment name.  Existing mappings — this process and
        every child forked from it — stay valid.  Idempotent."""

        if self.sealed:
            return
        self.sealed = True
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Best-effort release of this process's mapping.

        With numpy views outstanding the underlying mmap cannot be released
        early (``BufferError``); that is fine — process exit reclaims it,
        and the name is already unlinked.
        """

        self._views.clear()
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:  # views still referenced somewhere
            pass
