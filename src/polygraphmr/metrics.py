"""Dependency-free metrics: counters, gauges, and mergeable histograms.

PolygraphMR's value claim is a reliability/overhead *trade-off*, which makes
the instrumentation itself part of the reproduction: without counters and
latency histograms on the hot paths there is no way to say what the
polygraph ensemble costs.  This module is the registry those hot paths
(artifact store, ensemble runtime, decision module, breakers, campaign
executors) record into.

Three metric kinds, chosen for **exact mergeable state**:

* **Counter** — a monotonically increasing integer.  Merge = addition.
* **Gauge** — a point-in-time float.  Merge = ``max`` (commutative and
  associative, unlike last-write-wins).
* **Histogram** — fixed, finite bucket upper bounds with integer per-bucket
  counts plus an observation count and value sum.  Merge = bucket-wise
  integer addition; quantile estimates come from the cumulative bucket
  counts (Prometheus-style upper-bound estimates).

Bucket counts and counters are integers, so shard merges are *exact* and
order-independent; only the histogram ``sum`` is a float, folded with
:func:`math.fsum` so an n-ary merge is permutation-invariant.

**Strictly out-of-band.**  Nothing in this module may ever feed campaign
journal or checkpoint bytes: the journal stays a pure function of the
campaign config (see :mod:`polygraphmr.campaign`), and metrics live in
separate files — ``metrics.json`` per campaign directory, with per-worker
shards ``metrics.wNN.json`` merged deterministically at completion, the
same shape as the journal-shard merge.

A process-global default registry (:func:`get_registry`) keeps the wiring
zero-cost for callers; multiprocess campaign workers reset it after
``fork`` so their shards hold only their own deltas.

Campaign counters of note: ``campaign_trials_total{outcome}`` for every
trial, plus ``campaign_scenario_trials_total{scenario, outcome}`` when the
campaign sweeps declarative scenarios (:mod:`polygraphmr.scenarios`) — the
out-of-band mirror of the per-scenario rows ``python -m
polygraphmr.campaign report`` derives from the journal.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from pathlib import Path

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "merge_registries",
    "metrics_shard_name",
    "metrics_shards",
    "load_registry",
]

EXPORT_VERSION = 1

# Prometheus-style latency buckets (seconds), wide enough for sub-ms npz
# loads and multi-second sleep-padded benchmark trials alike.  The
# 50 ms–1 s band is deliberately dense: benchmark trials land there, and
# quantiles resolve to the smallest bucket bound >= the true value, so
# coarse edges would round every sub-second p50/p95/p99 up to the same
# number (the old 0.25/0.5 gap reported p50 = p95 = p99 = 0.5 s).
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.075,
    0.1,
    0.15,
    0.2,
    0.25,
    0.3,
    0.35,
    0.4,
    0.5,
    0.75,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

# Power-of-two sizing buckets for the campaign batch-size histogram: a batch
# is at most --batch-size trials, and splits (breaker activity, window
# tails) land in the lower buckets, so the distribution shows how often the
# planner actually got to batch.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got {n}")
        with self._lock:
            self.value += int(n)


class Gauge:
    """Point-in-time float value; merge semantics are ``max``."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)


class Histogram:
    """Fixed-bucket histogram with exact (integer) mergeable bucket state.

    ``bounds`` are strictly increasing, finite upper bounds; an implicit
    overflow (+Inf) bucket catches everything above the last bound.
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...], lock: threading.Lock):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite: {bounds}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self._lock = lock
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        v = float(v)
        i = bisect_left(self.bounds, v)  # first bound >= v
        with self._lock:
            self.bucket_counts[i] += 1
            self.count += 1
            self.sum = math.fsum((self.sum, v))

    def quantile(self, q: float) -> float | None:
        """Upper-bound quantile estimate from the cumulative bucket counts.

        Returns the smallest bucket bound whose cumulative count reaches
        ``q * count`` (the Prometheus ``histogram_quantile`` convention);
        observations in the overflow bucket report the largest finite bound.
        ``None`` when the histogram is empty.
        """

        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            if cumulative >= target:
                return bound
        return self.bounds[-1]

    def merge_from(self, other: Histogram) -> None:
        if self.bounds != other.bounds:
            raise ValueError(f"cannot merge histograms with different buckets: {self.bounds} != {other.bounds}")
        with self._lock:
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n
            self.count += other.count
            self.sum = math.fsum((self.sum, other.sum))


class MetricsRegistry:
    """Named, labelled metrics for one process (or one merged campaign).

    Metrics are keyed by ``(name, sorted label items)``; the first use of a
    name fixes its kind (and, for histograms, its buckets) — a conflicting
    re-registration raises :class:`ValueError` instead of silently forking
    the series.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- registration ----------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ValueError(f"metric {name!r} already registered as a {seen}, not a {kind}")

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "counter")
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter(self._lock)
        return c

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "gauge")
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge(self._lock)
        return g

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS, **labels: object
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            self._claim(name, "histogram")
            bounds = self._buckets.setdefault(name, tuple(float(b) for b in buckets))
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram(bounds, self._lock)
        return h

    def reset(self) -> None:
        """Drop every metric — used by forked campaign workers so their
        shards carry only their own deltas, and by test isolation."""

        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._kinds.clear()
            self._buckets.clear()

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int:
        c = self._counters.get((name, _label_key(labels)))
        return c.value if c is not None else 0

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label set."""

        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: object) -> float:
        g = self._gauges.get((name, _label_key(labels)))
        return g.value if g is not None else 0.0

    def histogram_for(self, name: str, **labels: object) -> Histogram | None:
        return self._histograms.get((name, _label_key(labels)))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot, deterministically ordered."""

        def rows(table, render):
            return [
                {"name": name, "labels": dict(labels), **render(metric)}
                for (name, labels), metric in sorted(table.items())
            ]

        return {
            "version": EXPORT_VERSION,
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(
                self._histograms,
                lambda h: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "sum": h.sum,
                },
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> MetricsRegistry:
        if payload.get("version") != EXPORT_VERSION:
            raise ValueError(f"unsupported metrics export version: {payload.get('version')!r}")
        reg = cls()
        for row in payload.get("counters", []):
            c = reg.counter(row["name"], **row.get("labels", {}))
            c.inc(int(row["value"]))
        for row in payload.get("gauges", []):
            reg.gauge(row["name"], **row.get("labels", {})).set(float(row["value"]))
        for row in payload.get("histograms", []):
            h = reg.histogram(row["name"], buckets=tuple(row["bounds"]), **row.get("labels", {}))
            counts = [int(n) for n in row["bucket_counts"]]
            if len(counts) != len(h.bucket_counts):
                raise ValueError(f"histogram {row['name']!r}: bucket count mismatch")
            for i, n in enumerate(counts):
                h.bucket_counts[i] += n
            h.count += int(row["count"])
            h.sum = math.fsum((h.sum, float(row["sum"])))
        return reg

    def merge_dict(self, payload: dict) -> MetricsRegistry:
        """Fold a :meth:`to_dict` export into this registry.

        The pipe-transported twin of the campaign's file-shard merge: serve
        pool workers ship their registry export over the control pipe on
        drain instead of writing ``metrics.wNN.json``, and the parent folds
        each shard with the same counter-add / gauge-max / bucket-add
        semantics.  Returns ``self``.
        """

        return self.merge_from(MetricsRegistry.from_dict(payload))

    def merge_from(self, other: MetricsRegistry) -> MetricsRegistry:
        """Fold ``other`` into this registry: counters add, gauges take the
        max, histograms add bucket-wise.  Returns ``self``."""

        for (name, labels), c in sorted(other._counters.items()):
            self.counter(name, **dict(labels)).inc(c.value)
        for (name, labels), g in sorted(other._gauges.items()):
            mine = self.gauge(name, **dict(labels))
            mine.set(max(mine.value, g.value))
        for (name, labels), h in sorted(other._histograms.items()):
            self.histogram(name, buckets=h.bounds, **dict(labels)).merge_from(h)
        return self

    # -- exports ---------------------------------------------------------

    def write_json(self, path: str | Path, *, extra: dict | None = None) -> Path:
        """Write the registry (plus optional out-of-band extras, e.g. tracing
        spans) as deterministic JSON."""

        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_dict()
        if extra:
            payload.update(extra)
        p.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8")
        return p

    def to_prometheus(self) -> str:
        """Prometheus text exposition (0.0.4) of every metric."""

        def esc(v: str) -> str:
            return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

        def labelstr(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
            items = [*labels, *extra]
            if not items:
                return ""
            return "{" + ",".join(f'{k}="{esc(v)}"' for k, v in items) + "}"

        def fmt(v: float) -> str:
            return repr(int(v)) if float(v).is_integer() else repr(float(v))

        lines: list[str] = []
        typed: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), c in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{name}{labelstr(labels)} {c.value}")
        for (name, labels), g in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{name}{labelstr(labels)} {fmt(g.value)}")
        for (name, labels), h in sorted(self._histograms.items()):
            type_line(name, "histogram")
            cumulative = 0
            for bound, n in zip(h.bounds, h.bucket_counts):
                cumulative += n
                lines.append(f"{name}_bucket{labelstr(labels, (('le', fmt(bound)),))} {cumulative}")
            lines.append(f"{name}_bucket{labelstr(labels, (('le', '+Inf'),))} {h.count}")
            lines.append(f"{name}_sum{labelstr(labels)} {fmt(h.sum)}")
            lines.append(f"{name}_count{labelstr(labels)} {h.count}")
        return "\n".join(lines) + "\n"


def merge_registries(registries) -> MetricsRegistry:
    """Fold any number of registries into a fresh one.

    The merge is deterministic and order-independent: counters and histogram
    buckets are integer additions, gauges fold with ``max``, and histogram
    sums fold with :func:`math.fsum` over every component at once, so any
    permutation of shards produces the identical merged registry.
    """

    registries = list(registries)
    out = MetricsRegistry()
    for reg in registries:
        for (name, labels), c in sorted(reg._counters.items()):
            out.counter(name, **dict(labels)).inc(c.value)
        for (name, labels), g in sorted(reg._gauges.items()):
            mine = out.gauge(name, **dict(labels))
            mine.set(max(mine.value, g.value))
    # histograms: collect per-key components first so sums fsum exactly once
    hist_parts: dict[tuple[str, LabelKey], list[Histogram]] = {}
    for reg in registries:
        for key, h in sorted(reg._histograms.items()):
            hist_parts.setdefault(key, []).append(h)
    for (name, labels), parts in sorted(hist_parts.items()):
        h = out.histogram(name, buckets=parts[0].bounds, **dict(labels))
        for part in parts:
            if part.bounds != h.bounds:
                raise ValueError(f"histogram {name!r}: shards disagree on buckets")
            for i, n in enumerate(part.bucket_counts):
                h.bucket_counts[i] += n
            h.count += part.count
        h.sum = math.fsum(part.sum for part in parts)
    return out


# -- campaign metrics shards ------------------------------------------------

METRICS_NAME = "metrics.json"
_SHARD_PREFIX = "metrics.w"


def metrics_shard_name(worker: int) -> str:
    """Metrics shard filename for one campaign worker, e.g. ``metrics.w03.json``."""

    return f"metrics.w{worker:02d}.json"


def metrics_shards(out_dir: str | Path) -> dict[int, Path]:
    """Every metrics shard in ``out_dir``, keyed by worker id."""

    out: dict[int, Path] = {}
    d = Path(out_dir)
    if d.is_dir():
        for p in sorted(d.iterdir()):
            name = p.name
            if name.startswith(_SHARD_PREFIX) and name.endswith(".json"):
                digits = name[len(_SHARD_PREFIX) : -len(".json")]
                if digits.isdigit() and len(digits) >= 2:
                    out[int(digits)] = p
    return out


def load_registry(path: str | Path) -> MetricsRegistry | None:
    """Read a registry export; ``None`` when absent or unparseable (metrics
    are best-effort observability, never a reason to fail a campaign)."""

    p = Path(path)
    if not p.is_file():
        return None
    try:
        return MetricsRegistry.from_dict(json.loads(p.read_text(encoding="utf-8")))
    except (json.JSONDecodeError, ValueError, KeyError, TypeError):
        return None


# -- process-global default registry ----------------------------------------

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the library's hot paths record into."""

    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (returns the previous one)."""

    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
