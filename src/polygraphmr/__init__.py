"""PolygraphMR: fault-tolerant misprediction detection for CNN ensembles.

Layers (see ``docs/ARCHITECTURE.md``):

1. Artifact store — validated, quarantining access to ``.repro_cache``
   (:mod:`polygraphmr.store`, :mod:`polygraphmr.integrity`,
   :mod:`polygraphmr.manifest`, :mod:`polygraphmr.naming`), with opt-in
   carving of damaged archives (:mod:`polygraphmr.salvage`) and a
   verified-once artifact cache with a zero-copy shared-memory plane for
   parallel campaigns (:mod:`polygraphmr.cache`).
2. Ensemble runtime — graceful-degradation assembly + decision module
   (:mod:`polygraphmr.ensemble`, :mod:`polygraphmr.decision`), guarded by
   per-submodel circuit breakers (:mod:`polygraphmr.breaker`).
3. Fault-injection harness (:mod:`polygraphmr.faults`) with declarative
   multi-resolution scenarios (:mod:`polygraphmr.scenarios`) and the
   crash-safe, resumable campaign runner over it
   (:mod:`polygraphmr.campaign`).
4. Error taxonomy + bounded retry (:mod:`polygraphmr.errors`).
5. Observability — out-of-band metrics registry and tracing spans
   (:mod:`polygraphmr.metrics`, :mod:`polygraphmr.tracing`).
"""

from .breaker import BreakerBoard, BreakerPolicy, CircuitBreaker
from .cache import ArtifactCache, SharedMemoryPlane
from .decision import DetectionMetrics, LogisticDecisionModule
from .ensemble import DegradedResult, EnsembleResult, EnsembleRuntime, ModelSkipped
from .errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactMissing,
    CampaignError,
    ConfigError,
    DegradedEnsemble,
    IntegrityMismatch,
    PolygraphError,
    RetryPolicy,
    ServeError,
    TransientIOError,
    retry_with_backoff,
)
from .manifest import CacheManifest, ModelManifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    load_registry,
    merge_registries,
    set_registry,
)
from .naming import display_to_stem, resolve_greedy_file, stem_to_display
from .salvage import SalvageReport, salvage_npz
from .store import ArtifactStore
from .tracing import Span, SpanRecord, Tracer, get_tracer, set_tracer

__version__ = "0.1.0"

_FAULT_EXPORTS = (
    "FaultSpec",
    "apply_fault",
    "inject_bitflips",
    "inject_bitflips_channel",
    "inject_bitflips_element",
    "inject_gaussian",
    "inject_quantize",
    "inject_stuck_at",
    "measure_degradation",
)
_CAMPAIGN_EXPORTS = (
    "CampaignConfig",
    "CampaignJournal",
    "CampaignRunner",
    "TrialExecutor",
    "TrialSpec",
    "report_campaign",
    "verify_campaign",
)
_PARALLEL_EXPORTS = ("ParallelCampaignRunner",)
_SCENARIO_EXPORTS = ("Scenario", "ScenarioFault", "builtin_scenarios", "resolve_scenarios")
_SERVE_EXPORTS = (
    "FrameAssembler",
    "ModelSession",
    "PolygraphService",
    "ServeConfig",
    "ServeGateway",
    "ServeRequest",
    "parse_request",
    "request_frame",
    "response_frame",
)


def __getattr__(name: str):
    # Lazy so that `python -m polygraphmr.faults` / `python -m
    # polygraphmr.campaign` don't import those modules twice (package import
    # + runpy __main__ execution).
    if name in _FAULT_EXPORTS:
        from . import faults

        return getattr(faults, name)
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    if name in _SCENARIO_EXPORTS:
        from . import scenarios

        return getattr(scenarios, name)
    if name in _SERVE_EXPORTS:
        from . import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArtifactCache",
    "ArtifactCorrupt",
    "ArtifactError",
    "ArtifactMissing",
    "ArtifactStore",
    "BreakerBoard",
    "BreakerPolicy",
    "CacheManifest",
    "CampaignConfig",
    "CampaignError",
    "CampaignJournal",
    "CampaignRunner",
    "CircuitBreaker",
    "ConfigError",
    "Counter",
    "DegradedEnsemble",
    "DegradedResult",
    "DetectionMetrics",
    "EnsembleResult",
    "EnsembleRuntime",
    "FaultSpec",
    "FrameAssembler",
    "Gauge",
    "Histogram",
    "IntegrityMismatch",
    "LogisticDecisionModule",
    "MetricsRegistry",
    "ModelManifest",
    "ModelSession",
    "ModelSkipped",
    "ParallelCampaignRunner",
    "PolygraphError",
    "PolygraphService",
    "RetryPolicy",
    "SalvageReport",
    "Scenario",
    "ScenarioFault",
    "ServeConfig",
    "ServeError",
    "ServeGateway",
    "ServeRequest",
    "SharedMemoryPlane",
    "Span",
    "SpanRecord",
    "Tracer",
    "TransientIOError",
    "TrialExecutor",
    "TrialSpec",
    "apply_fault",
    "builtin_scenarios",
    "display_to_stem",
    "get_registry",
    "get_tracer",
    "inject_bitflips",
    "inject_bitflips_channel",
    "inject_bitflips_element",
    "inject_gaussian",
    "inject_quantize",
    "inject_stuck_at",
    "load_registry",
    "measure_degradation",
    "merge_registries",
    "parse_request",
    "report_campaign",
    "request_frame",
    "response_frame",
    "resolve_greedy_file",
    "resolve_scenarios",
    "retry_with_backoff",
    "salvage_npz",
    "set_registry",
    "set_tracer",
    "stem_to_display",
    "verify_campaign",
    "__version__",
]
