"""PolygraphMR: fault-tolerant misprediction detection for CNN ensembles.

Four layers (see ``docs/ARCHITECTURE.md``):

1. Artifact store — validated, quarantining access to ``.repro_cache``
   (:mod:`polygraphmr.store`, :mod:`polygraphmr.integrity`,
   :mod:`polygraphmr.manifest`, :mod:`polygraphmr.naming`).
2. Ensemble runtime — graceful-degradation assembly + decision module
   (:mod:`polygraphmr.ensemble`, :mod:`polygraphmr.decision`).
3. Fault-injection harness (:mod:`polygraphmr.faults`).
4. Error taxonomy + bounded retry (:mod:`polygraphmr.errors`).
"""

from .decision import DetectionMetrics, LogisticDecisionModule
from .ensemble import DegradedResult, EnsembleResult, EnsembleRuntime, ModelSkipped
from .errors import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactMissing,
    DegradedEnsemble,
    IntegrityMismatch,
    PolygraphError,
    RetryPolicy,
    TransientIOError,
    retry_with_backoff,
)
from .manifest import CacheManifest, ModelManifest
from .naming import display_to_stem, resolve_greedy_file, stem_to_display
from .store import ArtifactStore

__version__ = "0.1.0"

_FAULT_EXPORTS = ("FaultSpec", "inject_bitflips", "inject_gaussian", "measure_degradation")


def __getattr__(name: str):
    # Lazy so that `python -m polygraphmr.faults` doesn't import the module
    # twice (package import + runpy __main__ execution).
    if name in _FAULT_EXPORTS:
        from . import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArtifactCorrupt",
    "ArtifactError",
    "ArtifactMissing",
    "ArtifactStore",
    "CacheManifest",
    "DegradedEnsemble",
    "DegradedResult",
    "DetectionMetrics",
    "EnsembleResult",
    "EnsembleRuntime",
    "FaultSpec",
    "IntegrityMismatch",
    "LogisticDecisionModule",
    "ModelManifest",
    "ModelSkipped",
    "PolygraphError",
    "RetryPolicy",
    "TransientIOError",
    "display_to_stem",
    "inject_bitflips",
    "inject_gaussian",
    "measure_degradation",
    "resolve_greedy_file",
    "retry_with_backoff",
    "stem_to_display",
    "__version__",
]
