"""Multiprocess campaign executor with a deterministic journal merge.

Fault-injection campaigns are embarrassingly parallel across trials
(MRFI-style sweeps), but parallelism must not weaken the campaign
subsystem's crash-safety or reproducibility guarantees.  The design here
keeps both:

* **Model-partitioned fan-out.**  Trial ``i`` belongs to
  ``models[i % n_models]`` and every trial of a model is owned by one
  worker (``trial_owner``), which executes its indices in increasing
  order.  Since :class:`~polygraphmr.campaign.TrialExecutor` keeps breaker
  boards *per model*, each worker replays exactly the per-model trial
  sub-sequences a serial run would — so every journal record it writes is
  byte-identical to the serial run's.  Scenario sweeps
  (``--scenarios``, :mod:`polygraphmr.scenarios`) inherit all of this for
  free: a trial's scenario is drawn inside
  :func:`~polygraphmr.campaign.derive_trial_spec` from ``(seed, index)``
  alone, and the scenario list is part of the journalled config (and the
  chain genesis), never of worker state.
* **Per-worker journal shards.**  Each worker appends to its own
  ``journal.wNN.jsonl`` (same sealed, hash-chained format as the canonical
  journal, rooted at a per-shard genesis derived from the campaign config
  hash + worker id) — no cross-process file locking, and each shard
  inherits the torn-tail-repair and chain guarantees of
  :class:`~polygraphmr.campaign.CampaignJournal`.
* **Atomic completion merge.**  Shards stay the write-ahead source of
  truth until every trial is journalled; only then does
  :func:`~polygraphmr.campaign.merge_journal` atomically rewrite the
  canonical journal in index order — re-linking the unified hash chain
  from the campaign's canonical genesis — and delete the shards.  A crash
  at any point — including between the replace and the shard cleanup —
  loses nothing: resume re-scans canonical + shards and deduplicates by
  index (duplicate records are byte-identical because trials are
  deterministic).  The re-linked journal is byte-identical to a serial
  run's, chain and all.
* **SIGTERM draining.**  The parent forwards SIGTERM to every worker;
  each worker finishes its in-flight trial, journals it, and exits
  cleanly.  The parent then checkpoints per-worker high-water marks and
  returns an incomplete summary (CLI exit 3), resumable with ``--resume``
  under *any* worker count.

Worker state is never shared across ``fork``: each worker constructs its
own :class:`~polygraphmr.store.ArtifactStore` and ensemble runtimes after
the fork, inside its own :class:`TrialExecutor`.  The one deliberate
exception is the read-only **shared-memory plane**
(:class:`~polygraphmr.cache.SharedMemoryPlane`): before forking, the
parent loads and validates the campaign's artifact working set once,
copies it into a shared-memory segment, and unlinks the segment name —
workers inherit the mapping and serve zero-copy ``writeable=False`` views
out of it, so store loads are amortized O(1) per trial regardless of
worker count.  If the plane cannot be published (no shared memory, empty
working set), workers silently fall back to loading from disk into their
private caches.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import signal
import sys
import threading
from pathlib import Path

from .batching import DEFAULT_BATCH_SIZE
from .cache import DEFAULT_CACHE_BYTES, SharedMemoryPlane
from .campaign import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    JOURNAL_VERSION,
    CampaignConfig,
    CampaignJournal,
    TrialExecutor,
    chain_genesis,
    checkpoint_payload,
    config_chain_hash,
    config_genesis,
    discover_models,
    header_record,
    merge_journal,
    read_checkpoint,
    scan_campaign,
    shard_journals,
    shard_name,
    summarize_trials,
    validate_resume,
    write_checkpoint,
)
from .errors import CampaignError
from .store import ArtifactStore
from .metrics import (
    METRICS_NAME,
    MetricsRegistry,
    get_registry,
    load_registry,
    merge_registries,
    metrics_shard_name,
    metrics_shards,
    set_registry,
)
from .tracing import get_tracer

__all__ = ["trial_owner", "worker_assignments", "ParallelCampaignRunner"]


def trial_owner(index: int, n_models: int, workers: int) -> int:
    """Which worker owns trial ``index``.

    Ownership is partitioned **by model** (``index % n_models`` names the
    model, which is then striped over workers), so all trials of one model
    land on one worker, in order — the assignment rule that makes each
    journal record independent of the worker count.
    """

    return (index % n_models) % workers


def worker_assignments(
    n_trials: int, n_models: int, workers: int, done: set[int] | frozenset[int] = frozenset()
) -> dict[int, list[int]]:
    """Pending trial indices per worker, each list in increasing order."""

    out: dict[int, list[int]] = {w: [] for w in range(workers)}
    for index in range(n_trials):
        if index not in done:
            out[trial_owner(index, n_models, workers)].append(index)
    return out


def _worker_main(
    worker_id: int,
    config: CampaignConfig,
    out_dir: str,
    models: list[str],
    assignment: list[int],
    done_trials: dict[int, dict],
    trial_fn,
    progress,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    use_cache: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    use_batch: bool = True,
    plane: SharedMemoryPlane | None = None,
) -> None:
    """One worker process: drain ``assignment`` through a private
    :class:`TrialExecutor` into a private journal shard.

    SIGTERM/SIGINT set a stop flag checked *between* trials, so the
    in-flight trial always finishes and is journalled before exit — the
    same draining contract as the serial runner.

    ``plane`` is the parent's pre-published shared-memory working set,
    inherited through ``fork`` (never re-attached by name — the parent
    unlinked the segment before forking, so the mapping is the only handle).
    """

    stop = threading.Event()

    def handle_stop(_signum, _frame):
        stop.set()

    # replace whatever handlers the parent installed (they reference the
    # parent's runner, which fork duplicated into this process)
    signal.signal(signal.SIGTERM, handle_stop)
    signal.signal(signal.SIGINT, handle_stop)

    # fork duplicated the parent's metric and tracing state into this
    # process; start fresh so the shard carries only this worker's deltas
    set_registry(MetricsRegistry())
    get_tracer().reset()

    def write_metrics_shard() -> None:
        try:
            get_registry().write_json(Path(out_dir) / metrics_shard_name(worker_id))
        except OSError:
            pass  # metrics are best-effort observability, never worth a worker

    try:
        shard = CampaignJournal(
            Path(out_dir) / shard_name(worker_id),
            genesis=chain_genesis(config_chain_hash(config.to_dict()), shard=worker_id),
        )
        shard.repair_tail()
        executor = TrialExecutor(
            config,
            models,
            trial_fn=trial_fn,
            cache_bytes=cache_bytes,
            use_cache=use_cache,
            plane=plane,
        )
        executor.restore_boards(done_trials)
        if use_batch and executor.batchable:
            # batched execution inside this worker's partition: window over
            # the models this worker owns, flush whole windows through the
            # shard with one fsync, then report per-record progress — each
            # event carries the chain head *as of that record* so a parent
            # checkpoint taken mid-window stays position-consistent with
            # the shard chain on resume
            from .batching import BatchTrialEngine, plan_windows

            engine = BatchTrialEngine(executor, batch_size=batch_size)
            n_owned = len({index % len(models) for index in assignment}) or 1
            for window in plan_windows(assignment, n_owned, batch_size):
                if stop.is_set():
                    break
                records, aborted = engine.execute_window(window, stop=stop)
                seals = shard.append_many(records)
                for record, seal in zip(records, seals):
                    progress.put((worker_id, record["index"], record["outcome"], seal))
                if aborted:
                    break
        else:
            for index in assignment:
                if stop.is_set():
                    break
                record = executor.execute(index)
                shard.append(record)
                progress.put((worker_id, index, record["outcome"], shard.head))
    except BaseException as exc:  # noqa: BLE001 - worker failure is an outcome
        print(f"worker {worker_id:02d} failed: {exc!r}", file=sys.stderr)
        write_metrics_shard()
        progress.close()
        progress.join_thread()
        raise SystemExit(1) from exc
    write_metrics_shard()
    progress.close()
    progress.join_thread()  # flush the queue feeder before exiting


class ParallelCampaignRunner:
    """Runs a campaign across ``workers`` forked processes.

    API-compatible with :class:`~polygraphmr.campaign.CampaignRunner`
    (``run(resume=...)`` returning the same summary shape, plus
    ``workers``/``failed_workers`` fields), and artifact-compatible: once a
    parallel campaign completes, its merged ``journal.jsonl`` and final
    ``checkpoint.json`` payload are byte-identical to a serial run's.
    """

    def __init__(
        self,
        config: CampaignConfig,
        out_dir: str | Path,
        *,
        workers: int = 2,
        trial_fn=None,
        audit: dict | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        use_cache: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        use_batch: bool = True,
    ):
        if workers < 1:
            raise CampaignError("bad-workers", f"workers must be >= 1, got {workers}")
        self.config = config
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.trial_fn = trial_fn
        self.audit = audit
        self.cache_bytes = cache_bytes
        self.use_cache = use_cache
        # like the cache knobs, batch settings shape execution only — they
        # never enter the journalled config, so journal bytes are invariant
        # under any (workers, batch_size, use_batch) combination
        self.batch_size = max(1, int(batch_size))
        self.use_batch = bool(use_batch)
        self.journal = CampaignJournal(self.out_dir / JOURNAL_NAME, genesis=config_genesis(config))
        self.checkpoint_path = self.out_dir / CHECKPOINT_NAME
        self._stop = threading.Event()
        self.models = discover_models(config)
        # trial_fn closures don't survive pickling; fork keeps them intact
        # (and is what lets workers inherit the parent's loaded modules)
        self._ctx = mp.get_context("fork")

    def request_stop(self) -> None:
        """Forward a graceful stop: every worker finishes its in-flight
        trial, journals it, and exits; the parent checkpoints and returns."""

        self._stop.set()

    def _checkpoint(
        self,
        done: set[int],
        canonical_records: int,
        canonical_head: str,
        marks: dict[int, int],
        heads: dict[int, str],
    ) -> None:
        next_index = next((i for i in range(self.config.n_trials) if i not in done), self.config.n_trials)
        workers = {}
        for w, n in sorted(marks.items()):
            mark = {"journalled": n}
            if w in heads:
                mark["chain_head"] = heads[w]
            workers[f"{w:02d}"] = mark
        payload = {
            "version": JOURNAL_VERSION,
            "n_trials": self.config.n_trials,
            "completed": len(done),
            "next_index": next_index,
            "journal_records": canonical_records,
            "chain_head": canonical_head,
            "workers": workers,
        }
        write_checkpoint(self.checkpoint_path, payload)

    def run(self, *, resume: bool = False) -> dict:
        # per-run metrics: see CampaignRunner.run — metrics.json must
        # describe this run only, not every run this process ever made
        get_registry().reset()
        get_tracer().reset()
        state = scan_campaign(self.out_dir, repair=True)
        if resume and (state.canonical_records or state.trials):
            header = validate_resume(state, self.config, read_checkpoint(self.checkpoint_path))
            self.models = list(header.get("models", self.models))
            done_trials = dict(state.trials)
            canonical_records = state.canonical_records
            canonical_head = (
                state.canonical_chain[-1] if state.canonical_chain else self.journal.genesis
            )
            heads = {w: c[-1] for w, c in state.shard_chains.items() if c}
        else:
            if state.canonical_records or state.trials:
                raise CampaignError(
                    "journal-exists",
                    f"{self.journal.path} (or a shard) already holds records; "
                    "pass resume=True / --resume",
                )
            header = header_record(self.config, self.models, self.audit)
            self.journal.append(header)
            done_trials = {}
            canonical_records = 1
            canonical_head = self.journal.head
            heads = {}
        # metric shards are per-run scratch; a shard from a dead run would
        # double-count if folded into this run's totals
        for stale in metrics_shards(self.out_dir).values():
            stale.unlink()

        # Publish the working set once, pre-fork: every artifact is loaded
        # and validated here exactly one time, then served zero-copy to all
        # workers.  The throwaway store carries the campaign's salvage
        # policy and no cache — these loads ARE the verification everyone
        # else amortizes.  `publish` unlinks the segment before returning,
        # so no /dev/shm entry can outlive this process, however it dies.
        plane = None
        if self.use_cache and self.trial_fn is None and self.models:
            plane = SharedMemoryPlane.publish(
                ArtifactStore(self.config.cache, allow_salvaged=self.config.allow_salvaged),
                self.models,
                max_bytes=self.cache_bytes,
            )

        n_workers = min(self.workers, max(1, len(self.models)))
        assignments = worker_assignments(
            self.config.n_trials, len(self.models), n_workers, set(done_trials)
        )
        marks = dict(state.shard_counts)
        progress = self._ctx.Queue()
        procs: dict[int, mp.process.BaseProcess] = {}
        for worker_id, assignment in assignments.items():
            if not assignment:
                continue
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    self.config,
                    str(self.out_dir),
                    self.models,
                    assignment,
                    done_trials,
                    self.trial_fn,
                    progress,
                    self.cache_bytes,
                    self.use_cache,
                    self.batch_size,
                    self.use_batch,
                    plane,
                ),
                name=f"campaign-w{worker_id:02d}",
            )
            proc.start()
            procs[worker_id] = proc

        done = set(done_trials)
        new_trials = 0
        forwarded_stop = False
        while True:
            if self._stop.is_set() and not forwarded_stop:
                for proc in procs.values():
                    proc.terminate()  # SIGTERM -> worker drains in-flight trial
                forwarded_stop = True
            try:
                worker_id, index, _outcome, shard_head = progress.get(timeout=0.2)
            except queue_mod.Empty:
                if all(not p.is_alive() for p in procs.values()):
                    break
                continue
            done.add(index)
            new_trials += 1
            marks[worker_id] = marks.get(worker_id, 0) + 1
            heads[worker_id] = shard_head
            self._checkpoint(done, canonical_records, canonical_head, marks, heads)
        for proc in procs.values():
            proc.join()
        progress.close()
        if plane is not None:
            # best-effort: the segment name is long unlinked; this just
            # releases the parent's mapping early instead of at process exit
            plane.close()

        failed_workers = sorted(w for w, p in procs.items() if p.exitcode != 0)
        # the shards are authoritative — a worker may have journalled a trial
        # and died before its progress event was consumed
        state = scan_campaign(self.out_dir, repair=True)
        done_trials = dict(state.trials)
        complete = state.complete(self.config.n_trials)
        if complete:
            _, chain_head = merge_journal(self.out_dir, header, done_trials)
            self.journal.prime_head(chain_head)
            canonical_records = 1 + len(done_trials)
            write_checkpoint(
                self.checkpoint_path,
                checkpoint_payload(self.config, done_trials, canonical_records, chain_head),
            )
        else:
            self._checkpoint(
                set(done_trials),
                canonical_records,
                canonical_head,
                state.shard_counts,
                {w: c[-1] for w, c in state.shard_chains.items() if c},
            )

        # fold worker metric shards (sorted by worker id) with the parent's
        # own registry into metrics.json — deterministic and out-of-band,
        # mirroring the journal-shard merge without touching journal bytes
        registry = get_registry()
        registry.gauge("campaign_workers").set(float(n_workers))
        registry.gauge("campaign_trials_completed").set(float(len(done_trials)))
        shards = [load_registry(p) for _, p in sorted(metrics_shards(self.out_dir).items())]
        merged = merge_registries([registry, *[s for s in shards if s is not None]])
        merged.write_json(self.out_dir / METRICS_NAME)
        for path in metrics_shards(self.out_dir).values():
            path.unlink()
        self.merged_registry = merged

        summary = summarize_trials(self.config, done_trials)
        summary.update(
            {
                "new_trials": new_trials,
                "stopped_early": not complete,
                "workers": n_workers,
                "failed_workers": failed_workers,
                "journal": str(self.journal.path),
                "checkpoint": str(self.checkpoint_path),
                "metrics": str(self.out_dir / METRICS_NAME),
            }
        )
        return summary
